"""Command-line administration tools for TDB databases.

Subcommands over a file-backed database directory (the layout
``Database.create`` produces):

* ``inspect`` — open the database (which already validates the master
  record, the residual log, and the replay counter) and print a summary:
  store statistics, segment table, named objects, backups in the archive.
* ``verify``  — full integrity audit: walk the location map and read
  every chunk, forcing every Merkle path and payload digest to be
  checked; then validate every backup stream in the archive.  Exits
  non-zero if anything fails.
* ``scrub``   — Merkle-walk the whole store and print a structured
  damage report instead of stopping at the first bad byte; with
  ``--salvage`` the store is opened read-only so a damaged image can be
  diagnosed without touching it.
* ``repair``  — heal a damaged store from the backup chain in its
  archive (selective re-materialization when the damage is local, full
  restore when it is not).
* ``salvage-export`` — open the store read-only in salvage mode and
  dump every chunk that still Merkle-verifies to files in an output
  directory, with a manifest.
* ``serve`` — open the database and serve it over the TCP wire
  protocol (:mod:`repro.server`) until interrupted; group-commit and
  backpressure tuning via ``--max-batch`` / ``--max-delay`` /
  ``--max-pending`` / ``--no-quorum-seal`` / ``--max-results``.
  ``--shards N`` serves a *sharded* layout instead: N worker processes
  behind one asyncio front door (:mod:`repro.server.sharded`), created
  on first use and reopened with the recorded shard count after that.
  ``--tenants`` turns either frontend into a multi-tenant hub
  (:mod:`repro.tenancy`): sessions must authenticate as a
  ``(tenant, principal)`` pair and data verbs are policy-gated and
  metered per tenant.
* ``tenant`` — administer a multi-tenant hub root offline:
  ``create`` / ``list`` / ``grant`` / ``revoke`` / ``meter``.
* ``replicate`` — run a read replica of a serving primary: sync once
  (``--once``), keep following, and optionally serve read-only clients
  (``--serve-port``); ``--seed`` bootstraps the image from the backup
  chain first.
* ``promote`` — bind a replica image to a fresh local one-way counter
  and open it writable (the primary is gone; this node takes over).
* ``stats`` — open read-only and print store statistics plus the
  current signed commit head (generation, seqno, root digest, head-log
  length) from the transparency log.
* ``heads`` — print the full signed head log (:mod:`repro.proofs`):
  one line per head, oldest first; loading already verifies every
  signature and chain link.
* ``audit`` — verify the local head log end to end (signatures, hash
  chain, tip-vs-master binding) and, with ``--primary``, fetch the
  remote server's chain through a verifying client and cross-check it
  for forks and rollbacks.  Exits non-zero if anything fails.

Usage::

    python -m repro.tools inspect /path/to/dbdir
    python -m repro.tools verify  /path/to/dbdir [--secure/--insecure]
    python -m repro.tools scrub   /path/to/dbdir [--salvage]
    python -m repro.tools repair  /path/to/dbdir
    python -m repro.tools salvage-export /path/to/dbdir /path/to/outdir
    python -m repro.tools serve   /path/to/dbdir [--host H] [--port P]
    python -m repro.tools serve   /path/to/sharddir --shards 4
    python -m repro.tools serve   /path/to/hubroot --tenants [--shards 4]
    python -m repro.tools tenant  create /path/to/hubroot NAME [--admin P]
    python -m repro.tools tenant  list   /path/to/hubroot
    python -m repro.tools tenant  grant  /path/to/hubroot NAME P SCOPE RIGHT
    python -m repro.tools tenant  revoke /path/to/hubroot NAME P SCOPE RIGHT
    python -m repro.tools tenant  meter  /path/to/hubroot NAME
    python -m repro.tools replicate /path/to/replicadir --primary H:P \\
        [--once] [--serve-port P] [--poll SECONDS] [--seed NAME ...]
    python -m repro.tools promote /path/to/replicadir
    python -m repro.tools stats   /path/to/dbdir
    python -m repro.tools heads   /path/to/dbdir
    python -m repro.tools audit   /path/to/dbdir [--primary H:P]

``inspect``, ``verify``, ``scrub --salvage``, ``salvage-export``,
``replicate``, ``stats``, ``heads`` and ``audit`` are read-only on
their database; ``repair`` rewrites the untrusted store and
``promote`` rewrites the replica's control files.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from typing import List, Optional

from repro.backupstore import BackupStore
from repro.chunkstore import ChunkStore
from repro.collectionstore.collection import Collection
from repro.collectionstore.store import register_collection_classes
from repro.config import ChunkStoreConfig, SecurityProfile
from repro.errors import TDBError
from repro.objectstore import ClassRegistry, ObjectStore
from repro.platform import (
    FileArchivalStore,
    FileOneWayCounter,
    FileSecretStore,
    FileUntrustedStore,
)
from repro.repair import RepairEngine

__all__ = [
    "main",
    "open_readonly_stack",
    "verify_database",
    "serve_database",
    "serve_sharded_database",
    "replicate_database",
    "promote_database",
    "stats_database",
    "heads_database",
    "audit_database",
]


def _platform_parts(directory: str):
    untrusted = FileUntrustedStore(os.path.join(directory, "data"))
    secret = FileSecretStore(os.path.join(directory, "secret.key"))
    counter = FileOneWayCounter(os.path.join(directory, "counter"))
    archival = FileArchivalStore(os.path.join(directory, "archive"))
    return untrusted, secret, counter, archival


def open_readonly_stack(directory: str, config: Optional[ChunkStoreConfig] = None):
    """Open the chunk store of a database directory (validating open)."""
    untrusted, secret, counter, archival = _platform_parts(directory)
    chunk_store = ChunkStore.open(untrusted, secret, counter, config)
    return chunk_store, archival, secret


def inspect_database(directory: str, config: Optional[ChunkStoreConfig]) -> int:
    chunk_store, archival, secret = open_readonly_stack(directory, config)
    stats = chunk_store.stats()
    print(f"database: {directory}")
    print(f"  security        : {'on' if chunk_store.secure else 'off'}")
    print(f"  chunks          : {len(chunk_store.chunk_ids())}")
    print(f"  live bytes      : {stats.live_bytes}")
    print(f"  capacity        : {stats.capacity_bytes}")
    print(f"  utilization     : {stats.utilization:.3f}")
    print(f"  on-disk bytes   : {stats.db_file_bytes}")
    print(f"  segments        : {stats.segment_count} ({stats.free_slots} free)")
    print(f"  commit seqno    : {stats.commit_seqno}")
    print(f"  counter value   : {stats.counter_value}")
    print(f"  checkpoints     : {stats.checkpoints_total}")
    log = getattr(chunk_store, "transparency", None)
    if log is not None and log.tip() is not None:
        print(f"  signed head     : {log.tip().describe()} "
              f"({len(log)} in log, scheme {log.scheme})")
    if stats.possible_lost_commit:
        print("  NOTE: last session may have lost its final in-flight commit")

    # Named objects via the object-store catalog, if present.
    registry = ClassRegistry()
    register_collection_classes(registry)
    try:
        object_store = ObjectStore.attach(chunk_store, registry=registry)
        with object_store.transaction() as txn:
            catalog = txn.open_readonly(object_store.catalog_oid).deref()
            print(f"  root object     : {catalog.root_oid}")
            if catalog.names:
                print("  named objects:")
                for name, oid in sorted(catalog.names.items()):
                    detail = ""
                    try:
                        obj = txn.open_readonly(oid).deref()
                        if isinstance(obj, Collection):
                            indexes = ", ".join(d.name for d in obj.indexes)
                            detail = (
                                f" [collection of {obj.count} "
                                f"{obj.schema_class_id}; indexes: {indexes}]"
                            )
                    except TDBError:
                        detail = " [not decodable without application classes]"
                    print(f"    {name} -> object {oid}{detail}")
            txn.abort()
    except TDBError as exc:
        print(f"  (no object-store catalog: {exc})")

    streams = archival.list_streams()
    print(f"  backups         : {len(streams)}")
    backups = BackupStore(archival, secret)
    for name in streams:
        try:
            info = backups.inspect(name)
            kind = "full" if info.is_full else "incremental"
            print(
                f"    {name}: {kind}, seq {info.sequence}, "
                f"{info.entry_count} entries, {info.stream_bytes} bytes"
            )
        except TDBError as exc:
            print(f"    {name}: INVALID ({exc})")
    chunk_store.close()
    return 0


def verify_database(directory: str, config: Optional[ChunkStoreConfig]) -> int:
    """Audit every chunk and backup; return a process exit code."""
    failures = 0
    try:
        chunk_store, archival, secret = open_readonly_stack(directory, config)
    except TDBError as exc:
        print(f"FAIL open: {type(exc).__name__}: {exc}")
        return 1
    print("master record, residual log, and counter: OK (validated at open)")

    chunk_ids = chunk_store.chunk_ids()
    checked = 0
    for chunk_id in chunk_ids:
        try:
            chunk_store.read(chunk_id)
            checked += 1
        except TDBError as exc:
            failures += 1
            print(f"FAIL chunk {chunk_id}: {type(exc).__name__}: {exc}")
    print(f"chunks: {checked}/{len(chunk_ids)} validated")

    backups = BackupStore(archival, secret)
    streams = archival.list_streams()
    valid_streams = 0
    for name in streams:
        try:
            backups.inspect(name)
            valid_streams += 1
        except TDBError as exc:
            failures += 1
            print(f"FAIL backup {name}: {type(exc).__name__}: {exc}")
    print(f"backups: {valid_streams}/{len(streams)} validated")
    chunk_store.close()
    if failures:
        print(f"VERIFY FAILED: {failures} problem(s)")
        return 1
    print("VERIFY OK")
    return 0


def _print_report(report) -> None:
    print(f"scrub: {report.summary()}")
    for chunk in report.damaged_chunks:
        print(
            f"  damaged chunk {chunk.chunk_id} "
            f"(segment {chunk.segment} @ {chunk.offset}+{chunk.length}): "
            f"{chunk.error}"
        )
    for node in report.damaged_nodes:
        print(
            f"  damaged map node L{node.level}#{node.index} "
            f"covering ids [{node.id_lo}, {node.id_hi}): {node.error}"
        )
    if report.root_lost:
        print("  map root unreadable: the whole tree is unreachable")


def scrub_database(
    directory: str, config: Optional[ChunkStoreConfig], salvage: bool
) -> int:
    """Merkle-walk the store; exit 0 only if every byte verifies.

    A degraded salvage open (counter skew, discarded residual commits)
    is damage even when every surviving chunk verifies — the exit code
    reflects it so scripted health checks cannot mistake a rolled-back
    or truncated store for a healthy one.
    """
    untrusted, secret, counter, _ = _platform_parts(directory)
    opener = ChunkStore.open_salvage if salvage else ChunkStore.open
    store = opener(untrusted, secret, counter, config)
    info = store.salvage_info
    degraded = info is not None and info.degraded
    if degraded:
        if info.counter_skew:
            print(
                f"salvage: counter skew {info.counter_skew} "
                f"(expected {info.counter_expected}, found {info.counter_actual})"
                + (" — replay suspected" if info.replay_suspected else "")
            )
        if info.commits_discarded:
            print(
                f"salvage: discarded {info.commits_discarded} residual "
                f"commit(s): {info.scan_stop_reason or info.apply_stop_reason}"
            )
    report = store.scrub()
    _print_report(report)
    store.close()
    return 0 if report.clean and not degraded else 1


def _chain_names(backups: BackupStore, archival: FileArchivalStore) -> List[str]:
    """Valid backup streams in chain order (by sequence number)."""
    ordered = []
    for name in archival.list_streams():
        try:
            info = backups.inspect(name)
        except TDBError as exc:
            print(f"skipping invalid backup {name}: {exc}")
            continue
        ordered.append((info.sequence, name))
    return [name for _, name in sorted(ordered)]


def repair_database(directory: str, config: Optional[ChunkStoreConfig]) -> int:
    """Heal the store from its archive's backup chain."""
    untrusted, secret, counter, archival = _platform_parts(directory)
    backups = BackupStore(archival, secret)
    names = _chain_names(backups, archival)
    if not names:
        print("no usable backups in the archive; cannot repair")
        return 2
    print(f"backup chain: {', '.join(names)}")
    engine = RepairEngine(backups, names)
    result = engine.heal(untrusted, secret, counter, config)
    if result.open_error:
        print(f"store did not open: {result.open_error}")
    if result.replay_detected:
        print("NOTE: replay detected — the image had been rolled back")
    print(f"repair action: {result.action}")
    if result.repaired_chunks:
        print(f"  repaired chunks : {result.repaired_chunks}")
    if result.lost_chunks:
        print(f"  lost chunks     : {result.lost_chunks} (newer than any backup)")
    if result.pruned_ranges:
        print(f"  pruned id ranges: {result.pruned_ranges}")
    _print_report(result.report_after)
    result.store.close()
    return 0 if result.healthy else 1


def salvage_export(
    directory: str, out_dir: str, config: Optional[ChunkStoreConfig]
) -> int:
    """Dump every surviving chunk of a damaged store to ``out_dir``."""
    untrusted, secret, counter, _ = _platform_parts(directory)
    store = ChunkStore.open_salvage(untrusted, secret, counter, config)
    report, payloads = store.export_surviving()
    os.makedirs(out_dir, exist_ok=True)
    manifest_lines = []
    for chunk_id in sorted(payloads):
        data = payloads[chunk_id]
        name = f"chunk-{chunk_id:08d}.bin"
        with open(os.path.join(out_dir, name), "wb") as fh:
            fh.write(data)
        manifest_lines.append(f"{chunk_id}\t{name}\t{len(data)}\n")
    with open(os.path.join(out_dir, "MANIFEST.tsv"), "w") as fh:
        fh.writelines(manifest_lines)
    _print_report(report)
    print(f"exported {len(payloads)} chunk(s) to {out_dir}")
    store.close()
    return 0 if report.clean else 1


def serve_database(
    directory: str,
    host: str,
    port: int,
    config: Optional[ChunkStoreConfig] = None,
    max_sessions: int = 64,
    idle_timeout: float = 30.0,
    resume_grace: float = 2.0,
    max_batch: int = 32,
    max_delay: float = 0.005,
    max_pending: int = 256,
    quorum_seal: bool = True,
    max_results: int = 1000,
    tenants: bool = False,
    ready_callback=None,
    stop_event=None,
) -> int:
    """Serve a file-backed database over the wire protocol.

    Opens (and crash-recovers) the database, starts a
    :class:`~repro.server.server.TdbServer`, and blocks until
    ``stop_event`` is set (tests) or the process is interrupted.
    ``ready_callback``, when given, receives the bound ``(host, port)``
    once the listener is up — with ``port=0`` that is the only way to
    learn the ephemeral port.

    With ``tenants`` the directory is a multi-tenant hub root instead
    of a single database: per-tenant databases live under
    ``<directory>/tenants/`` and every session authenticates before
    touching data (see :mod:`repro.tenancy`).
    """
    import threading

    from repro.db import Database
    from repro.server import BackpressureConfig, TdbServer

    db = None
    hub = None
    backpressure = BackpressureConfig(
        max_sessions=max_sessions,
        idle_timeout=idle_timeout,
        resume_grace=resume_grace,
        max_pending_commits=max_pending,
    )
    if tenants:
        from repro.tenancy import TenancyHub

        hub = TenancyHub(directory, chunk_config=config)
        server = TdbServer(
            None,
            host=host,
            port=port,
            backpressure=backpressure,
            max_batch=max_batch,
            max_delay=max_delay,
            quorum_seal=quorum_seal,
            max_results=max_results,
            tenancy=hub,
        )
    else:
        db = Database.open_existing(directory, chunk_config=config)
        server = TdbServer(
            db,
            host=host,
            port=port,
            backpressure=backpressure,
            max_batch=max_batch,
            max_delay=max_delay,
            quorum_seal=quorum_seal,
            max_results=max_results,
        )
    server.start()
    bound_host, bound_port = server.address
    label = "tenant hub " if tenants else ""
    print(f"serving {label}{directory} on {bound_host}:{bound_port}")
    if ready_callback is not None:
        ready_callback(bound_host, bound_port)
    if stop_event is None:
        stop_event = threading.Event()
    try:
        stop_event.wait()
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    finally:
        server.stop()
        if hub is not None:
            hub.close()
        if db is not None:
            db.close()
    return 0


def serve_sharded_database(
    directory: str,
    host: str,
    port: int,
    shards: int,
    config: Optional[ChunkStoreConfig] = None,
    max_sessions: int = 64,
    idle_timeout: float = 30.0,
    resume_grace: float = 2.0,
    max_batch: int = 32,
    max_delay: float = 0.005,
    max_pending: int = 256,
    quorum_seal: bool = True,
    max_results: int = 1000,
    tenants: bool = False,
    ready_callback=None,
    stop_event=None,
) -> int:
    """Serve a sharded layout: N worker processes, one asyncio front door.

    ``directory`` must be either empty (the layout is created with
    ``shards`` partitions) or an existing shard layout created with the
    same count — the partition function is a function of N, so the count
    is pinned in ``sharding.json``.

    With ``tenants`` the front door also runs the multi-tenant hub:
    tenant control planes live under ``<directory>/tenants/`` while
    tenant data shares the shard workers under per-tenant namespaces.
    """
    import threading

    from repro.server.backpressure import BackpressureConfig
    from repro.server.sharded import ShardedTdbServer

    hub = None
    if tenants:
        from repro.tenancy import TenancyHub

        hub = TenancyHub(directory, chunk_config=config)
    backpressure = BackpressureConfig(
        max_sessions=max_sessions,
        idle_timeout=idle_timeout,
        resume_grace=resume_grace,
        max_pending_commits=max_pending,
    )
    server = ShardedTdbServer(
        directory,
        shards=shards,
        host=host,
        port=port,
        backpressure=backpressure,
        max_batch=max_batch,
        max_delay=max_delay,
        max_results=max_results,
        quorum_seal=quorum_seal,
        chunk_config=config,
        tenancy=hub,
    )
    try:
        server.start()
    except BaseException:
        if hub is not None:
            hub.close()
        raise
    bound_host, bound_port = server.address
    label = "tenant hub " if tenants else ""
    print(
        f"serving {label}{directory} on {bound_host}:{bound_port} "
        f"({server.layout.shards} shard workers)"
    )
    if ready_callback is not None:
        ready_callback(bound_host, bound_port)
    if stop_event is None:
        stop_event = threading.Event()
    try:
        stop_event.wait()
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    finally:
        server.stop()
        if hub is not None:
            hub.close()
    return 0


def replicate_database(
    directory: str,
    primary: str,
    once: bool = False,
    serve_host: str = "127.0.0.1",
    serve_port: Optional[int] = None,
    poll: float = 1.0,
    max_backoff: float = 0.0,
    seed: Optional[List[str]] = None,
    config: Optional[ChunkStoreConfig] = None,
    ready_callback=None,
    stop_event=None,
) -> int:
    """Run a verifying read replica against ``primary`` (``host:port``).

    With ``--once`` a single shipment is synced and the process exits
    (0 = installed or already current, 1 = shipment rejected).  Otherwise
    the applier polls every ``poll`` seconds until interrupted and, when
    ``serve_port`` is given, serves read-only clients from the last
    verified image the whole time.  ``seed`` restores the named backup
    chain into the replica first, so a cold replica can serve stale reads
    before its first contact with the primary.
    """
    import threading

    from repro.replication import ReplicaApplier, seed_replica

    host, _, port_text = primary.rpartition(":")
    if not host or not port_text.isdigit():
        print(f"--primary must be host:port, got {primary!r}", file=sys.stderr)
        return 2
    if seed:
        state = seed_replica(directory, seed, chunk_config=config)
        print(
            f"seeded from {len(seed)} backup(s): generation "
            f"{state.generation}, commit seqno {state.commit_seqno}"
        )
    retry_policy = None
    if max_backoff > 0:
        from repro.platform.resilient import RetryPolicy

        retry_policy = RetryPolicy(
            max_attempts=6,
            base_delay=max(poll, 0.01),
            multiplier=2.0,
            max_delay=max_backoff,
            jitter=0.25,
        )
    applier = ReplicaApplier(
        directory,
        host,
        int(port_text),
        chunk_config=config,
        poll_interval=poll,
        retry_policy=retry_policy,
    )
    try:
        if once:
            try:
                installed = applier.sync_once()
            except TDBError as exc:
                print(f"shipment rejected: {type(exc).__name__}: {exc}")
                return 1
            print("installed new image" if installed else "already up to date")
            stats = applier.stats_snapshot()
            print(
                f"  applied seqno {stats['applied_seqno']}, "
                f"fetched {stats['bytes_fetched']} bytes, "
                f"reused {stats['segments_reused']} segment(s)"
            )
            return 0
        bound = None
        if serve_port is not None:
            # Serving needs an installed image: sync one shipment up
            # front (a rejected shipment is tolerable if a previously
            # verified image is already on disk).
            try:
                applier.sync_once()
            except TDBError as exc:
                print(f"initial sync failed: {type(exc).__name__}: {exc}")
            try:
                server = applier.serve(serve_host, serve_port)
            except TDBError as exc:
                print(f"cannot serve: {type(exc).__name__}: {exc}",
                      file=sys.stderr)
                return 1
            bound = server.address
            print(f"replica serving read-only on {bound[0]}:{bound[1]}")
        applier.start()
        print(f"following {primary} (poll every {poll:.3g}s)")
        if ready_callback is not None:
            ready_callback(*(bound or (None, None)))
        if stop_event is None:
            stop_event = threading.Event()
        try:
            stop_event.wait()
        except KeyboardInterrupt:
            print("interrupted; shutting down")
        return 0
    finally:
        applier.close()


def promote_database(
    directory: str, config: Optional[ChunkStoreConfig] = None
) -> int:
    """Promote a replica image to a writable primary."""
    from repro.replication import promote_replica

    db = promote_replica(directory, config)
    try:
        stats = db.stats()
        print(
            f"promoted {directory}: commit seqno {stats.commit_seqno}, "
            f"counter {stats.counter_value}"
        )
        print("the replica sidecar is retired; serve this directory normally")
    finally:
        db.close()
    return 0


def _open_store_readonly(directory: str, config: Optional[ChunkStoreConfig]):
    """Open just the chunk store of a database directory, read-only.

    Unlike :func:`open_readonly_stack` this passes ``read_only=True``,
    so the open performs no media writes at all — in particular it does
    not create or catch up the head log, which keeps ``stats``,
    ``heads`` and ``audit`` safe to run against a primary's live
    directory.
    """
    untrusted, secret, counter, _ = _platform_parts(directory)
    store = ChunkStore.open(untrusted, secret, counter, config, read_only=True)
    return store, secret


def stats_database(directory: str, config: Optional[ChunkStoreConfig]) -> int:
    """Print store statistics and the current signed commit head."""
    store, _ = _open_store_readonly(directory, config)
    stats = store.stats()
    print(f"database: {directory}")
    print(f"  security        : {'on' if store.secure else 'off'}")
    print(f"  generation      : {store.generation}")
    print(f"  commit seqno    : {stats.commit_seqno}")
    print(f"  counter value   : {stats.counter_value}")
    print(f"  chunks          : {len(store.chunk_ids())}")
    print(f"  live bytes      : {stats.live_bytes}")
    print(f"  on-disk bytes   : {stats.db_file_bytes}")
    print(f"  segments        : {stats.segment_count} ({stats.free_slots} free)")
    print(f"  checkpoints     : {stats.checkpoints_total}")
    log = getattr(store, "transparency", None)
    if log is None or log.tip() is None:
        print("  signed head     : none "
              "(insecure profile or pre-upgrade image)")
    else:
        tip = log.tip()
        print(f"  head log length : {len(log)} (scheme {log.scheme})")
        print(f"  head generation : {tip.generation}")
        print(f"  head seqno      : {tip.seqno}")
        print(f"  head root       : {tip.root_digest.hex() or '-'}")
    store.close()
    return 0


def heads_database(directory: str, config: Optional[ChunkStoreConfig]) -> int:
    """List every signed head in the transparency log, oldest first."""
    store, _ = _open_store_readonly(directory, config)
    try:
        log = getattr(store, "transparency", None)
        if log is None:
            print("no head log (insecure profile or pre-upgrade image)")
            return 1
        print(f"head log: {len(log)} signed head(s), scheme {log.scheme}")
        for head in log.heads():
            print(f"  {head.describe()}")
        return 0
    finally:
        store.close()


def audit_database(
    directory: str,
    primary: Optional[str] = None,
    config: Optional[ChunkStoreConfig] = None,
) -> int:
    """Audit the head log locally and, optionally, against a primary.

    The read-only open already verifies every signature and chain link
    in the local log (loading raises on anything that fails); the audit
    then binds the tip to the master record, and with ``--primary``
    fetches the remote chain through a :class:`VerifyingClient` and
    cross-checks the two histories for forks and rollbacks.
    """
    failures = 0
    try:
        store, secret = _open_store_readonly(directory, config)
    except TDBError as exc:
        print(f"FAIL open: {type(exc).__name__}: {exc}")
        return 1
    try:
        log = getattr(store, "transparency", None)
        if log is None:
            print("no head log to audit (insecure profile or "
                  "pre-upgrade image)")
            return 1
        print(f"head log: {len(log)} signed head(s) verified "
              f"(scheme {log.scheme})")
        tip = log.tip()
        if tip is None:
            print("FAIL binding: head log has no entries but the store "
                  f"is at generation {store.generation}")
            failures += 1
        elif tip.generation > store.generation:
            print(f"FAIL binding: head log tip is generation "
                  f"{tip.generation} but the master record is generation "
                  f"{store.generation}: the image was rolled back")
            failures += 1
        elif tip.generation == store.generation:
            root = store.location_map.root_locator
            expected = (
                root.hash_value if root is not None
                else bytes(len(tip.root_digest))
            )
            if (tip.seqno != store.commit_seqno
                    or tip.root_digest != expected
                    or tip.empty_root != (root is None)):
                print("FAIL binding: the tip head does not match the "
                      "master record it claims to sign")
                failures += 1
            else:
                print(f"tip binding: OK ({tip.describe()})")
        elif tip.generation == store.generation - 1:
            print(f"tip binding: log lags the master by one checkpoint "
                  f"(crash window; a writable open will catch it up)")
        else:
            print(f"FAIL binding: head log tip is generation "
                  f"{tip.generation}, master is {store.generation}: "
                  "the log was truncated")
            failures += 1

        if primary:
            host, _, port_text = primary.rpartition(":")
            if not host or not port_text.isdigit():
                print(f"--primary must be host:port, got {primary!r}",
                      file=sys.stderr)
                return 2
            from repro.proofs.client import VerifyingClient

            client = VerifyingClient(
                host, int(port_text), secret, config=config
            )
            try:
                remote = client.fetch_log()
                if client.db_uuid != store.db_uuid:
                    print("FAIL remote: the primary serves a different "
                          "database identity")
                    failures += 1
                else:
                    print(f"remote log: {len(remote)} signed head(s) "
                          "verified")
                    fork = VerifyingClient.compare_logs(log.heads(), remote)
                    if fork is not None:
                        print(f"FAIL remote: histories diverge at head "
                              f"#{fork}: the signer equivocated (fork)")
                        failures += 1
                    elif len(remote) < len(log):
                        print(f"FAIL remote: primary's log has "
                              f"{len(remote)} head(s), local mirror has "
                              f"{len(log)}: the primary rolled back")
                        failures += 1
                    else:
                        print("cross-check: OK (local log is a prefix of "
                              "the primary's)")
            except TDBError as exc:
                print(f"FAIL remote: {type(exc).__name__}: {exc}")
                failures += 1
            finally:
                client.close()
    finally:
        store.close()
    if failures:
        print(f"AUDIT FAILED: {failures} problem(s)")
        return 1
    print("AUDIT OK")
    return 0


def tenant_admin(args) -> int:
    """The ``tenant`` subcommand: offline hub-root administration.

    Operates directly on the hub root (no server round trip), so there
    is no admin gate — possession of the directory is the credential.
    Every mutation still lands in the tenant's ``_audit`` trail with
    ``via: cli``.
    """
    import json

    from repro.tenancy import TenancyHub, TenantQuotas

    hub = TenancyHub(args.root)
    try:
        if args.tenant_command == "create":
            quotas = None
            overrides = {
                "max_sessions": args.max_sessions,
                "max_pending_commits": args.max_pending,
                "max_bytes": args.max_bytes,
                "txn_rate": args.txn_rate,
                "burst": args.burst,
            }
            overrides = {k: v for k, v in overrides.items() if v is not None}
            if overrides:
                from dataclasses import replace as _dc_replace

                quotas = _dc_replace(TenantQuotas(), **overrides)
            result = hub.create_tenant(
                args.name, quotas, admin=args.admin or None
            )
            print(f"tenant {result['tenant']} created")
            if "secret" in result:
                print(f"  admin principal : {result['admin']}")
                print(f"  admin secret    : {result['secret']}")
                print("  (the secret is shown exactly once; store it now)")
            return 0
        if args.tenant_command == "list":
            for name in hub.list_tenants():
                print(name)
            return 0
        if args.tenant_command == "grant":
            result = hub.grant_offline(
                args.name, args.principal, args.scope, args.right
            )
            print(
                f"granted {args.right} on {args.scope!r} to "
                f"{args.principal} in tenant {args.name}"
            )
            if result.get("secret"):
                print(f"  new principal secret: {result['secret']}")
                print("  (shown exactly once; store it now)")
            return 0
        if args.tenant_command == "revoke":
            result = hub.revoke_offline(
                args.name, args.principal, args.scope, args.right
            )
            print(
                f"revoked {result.get('removed', 0)} grant(s) of "
                f"{args.right} on {args.scope!r} from {args.principal} "
                f"in tenant {args.name}"
            )
            return 0
        # meter
        print(json.dumps(hub.meter(args.name), indent=2, sort_keys=True))
        return 0
    finally:
        hub.close()


def _config_from_args(args) -> Optional[ChunkStoreConfig]:
    if (
        args.segment_kb is None
        and args.fanout is None
        and args.secure is None
        and args.engine is None
        and args.digest_workers is None
    ):
        return None
    base = ChunkStoreConfig()
    if args.secure is False:
        security = SecurityProfile.insecure()
    else:
        security = SecurityProfile()
    security = replace(
        security,
        kernel=args.engine if args.engine is not None else security.kernel,
        pool_workers=(
            args.digest_workers
            if args.digest_workers is not None
            else security.pool_workers
        ),
    )
    return ChunkStoreConfig(
        segment_size=(args.segment_kb or base.segment_size // 1024) * 1024,
        map_fanout=args.fanout or base.map_fanout,
        security=security,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in (
        "inspect",
        "verify",
        "scrub",
        "repair",
        "salvage-export",
        "serve",
        "replicate",
        "promote",
        "stats",
        "heads",
        "audit",
    ):
        cmd = sub.add_parser(name)
        cmd.add_argument("directory")
        if name == "audit":
            cmd.add_argument("--primary", default=None,
                             help="also cross-check the head log against "
                                  "this primary server (host:port)")
        if name == "scrub":
            cmd.add_argument("--salvage", action="store_true", default=False,
                             help="open read-only; works on damaged stores")
        if name == "salvage-export":
            cmd.add_argument("out_dir")
        if name == "serve":
            cmd.add_argument("--host", default="127.0.0.1")
            cmd.add_argument("--port", type=int, default=7807,
                             help="TCP port (0 picks an ephemeral port)")
            cmd.add_argument("--max-sessions", type=int, default=64)
            cmd.add_argument("--idle-timeout", type=float, default=30.0,
                             help="seconds before an idle session is dropped")
            cmd.add_argument("--resume-grace", type=float, default=2.0,
                             help="seconds a dropped session stays resumable "
                                  "(0 disables session parking)")
            cmd.add_argument("--max-batch", type=int, default=32,
                             help="group-commit batch-size cap")
            cmd.add_argument("--max-delay", type=float, default=0.005,
                             help="group-commit batching window in seconds")
            cmd.add_argument("--max-pending", type=int, default=256,
                             help="pending-commit admission limit")
            cmd.add_argument("--no-quorum-seal", dest="quorum_seal",
                             action="store_false", default=True,
                             help="acknowledge batches before the seal sync")
            cmd.add_argument("--max-results", type=int, default=1000,
                             help="cap on rows returned per query verb")
            cmd.add_argument("--shards", type=int, default=None,
                             help="serve a sharded layout with this many "
                                  "worker processes (creates the layout on "
                                  "an empty directory; must match the "
                                  "recorded count afterwards)")
            cmd.add_argument("--tenants", action="store_true", default=False,
                             help="serve the directory as a multi-tenant "
                                  "hub root: sessions authenticate as "
                                  "(tenant, principal) and data verbs are "
                                  "policy-gated and metered per tenant")
        if name == "replicate":
            cmd.add_argument("--primary", required=True,
                             help="primary server as host:port")
            cmd.add_argument("--once", action="store_true", default=False,
                             help="sync a single shipment and exit")
            cmd.add_argument("--serve-host", default="127.0.0.1")
            cmd.add_argument("--serve-port", type=int, default=None,
                             help="serve read-only clients on this port "
                                  "(0 picks an ephemeral port)")
            cmd.add_argument("--poll", type=float, default=1.0,
                             help="seconds between catch-up polls")
            cmd.add_argument("--max-backoff", type=float, default=0.0,
                             help="cap on the link-failure backoff in "
                                  "seconds (0 uses the default cap)")
            cmd.add_argument("--seed", nargs="+", default=None,
                             metavar="BACKUP",
                             help="seed the image from this backup chain "
                                  "(names in chain order) before syncing")
        cmd.add_argument("--segment-kb", type=int, default=None,
                         help="segment size in KB if non-default")
        cmd.add_argument("--fanout", type=int, default=None,
                         help="map fanout if non-default")
        cmd.add_argument("--engine", default=None,
                         choices=["auto", "native", "fast", "reference"],
                         help="crypto engine behind the secure profile")
        cmd.add_argument("--digest-workers", type=int, default=None,
                         help="digest-pool worker processes "
                              "(1 = serial, 0 = one per CPU)")
        secure_group = cmd.add_mutually_exclusive_group()
        secure_group.add_argument("--secure", dest="secure",
                                  action="store_true", default=None)
        secure_group.add_argument("--insecure", dest="secure",
                                  action="store_false")

    tenant = sub.add_parser(
        "tenant", help="administer a multi-tenant hub root"
    )
    tsub = tenant.add_subparsers(dest="tenant_command", required=True)
    t_create = tsub.add_parser("create")
    t_create.add_argument("root")
    t_create.add_argument("name")
    t_create.add_argument("--admin", default="admin",
                          help="bootstrap admin principal (empty string "
                               "skips creating one)")
    t_create.add_argument("--max-sessions", type=int, default=None)
    t_create.add_argument("--max-pending", type=int, default=None)
    t_create.add_argument("--max-bytes", type=int, default=None)
    t_create.add_argument("--txn-rate", type=float, default=None,
                          help="transactions per second (0 = unlimited)")
    t_create.add_argument("--burst", type=int, default=None,
                          help="token-bucket burst size")
    t_list = tsub.add_parser("list")
    t_list.add_argument("root")
    for vname in ("grant", "revoke"):
        t_cmd = tsub.add_parser(vname)
        t_cmd.add_argument("root")
        t_cmd.add_argument("name")
        t_cmd.add_argument("principal")
        t_cmd.add_argument("scope")
        t_cmd.add_argument("right", choices=["read", "write", "admin"])
    t_meter = tsub.add_parser("meter")
    t_meter.add_argument("root")
    t_meter.add_argument("name")

    args = parser.parse_args(argv)
    if args.command == "tenant":
        try:
            return tenant_admin(args)
        except TDBError as exc:
            print(f"{type(exc).__name__}: {exc}", file=sys.stderr)
            return 2
    config = _config_from_args(args)
    try:
        if args.command == "inspect":
            return inspect_database(args.directory, config)
        if args.command == "scrub":
            return scrub_database(args.directory, config, args.salvage)
        if args.command == "repair":
            return repair_database(args.directory, config)
        if args.command == "salvage-export":
            return salvage_export(args.directory, args.out_dir, config)
        if args.command == "serve":
            if args.shards is not None:
                return serve_sharded_database(
                    args.directory,
                    args.host,
                    args.port,
                    args.shards,
                    config,
                    max_sessions=args.max_sessions,
                    idle_timeout=args.idle_timeout,
                    resume_grace=args.resume_grace,
                    max_batch=args.max_batch,
                    max_delay=args.max_delay,
                    max_pending=args.max_pending,
                    quorum_seal=args.quorum_seal,
                    max_results=args.max_results,
                    tenants=args.tenants,
                )
            return serve_database(
                args.directory,
                args.host,
                args.port,
                config,
                max_sessions=args.max_sessions,
                idle_timeout=args.idle_timeout,
                resume_grace=args.resume_grace,
                max_batch=args.max_batch,
                max_delay=args.max_delay,
                max_pending=args.max_pending,
                quorum_seal=args.quorum_seal,
                max_results=args.max_results,
                tenants=args.tenants,
            )
        if args.command == "replicate":
            return replicate_database(
                args.directory,
                args.primary,
                once=args.once,
                serve_host=args.serve_host,
                serve_port=args.serve_port,
                poll=args.poll,
                max_backoff=args.max_backoff,
                seed=args.seed,
                config=config,
            )
        if args.command == "promote":
            return promote_database(args.directory, config)
        if args.command == "stats":
            return stats_database(args.directory, config)
        if args.command == "heads":
            return heads_database(args.directory, config)
        if args.command == "audit":
            return audit_database(args.directory, args.primary, config)
        return verify_database(args.directory, config)
    except TDBError as exc:
        print(f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
