"""A shared LRU cache with pinning and byte-charged entries.

The paper shares one LRU list between the object cache and the chunk
store's cache of location-map entries, "allow[ing] dynamic apportioning of
total cache space to different caches based on need" (section 4.2.2).
This module is that shared list: each layer inserts entries under its own
key namespace with a byte charge; eviction walks from the cold end,
skipping pinned entries (dirty objects under the no-steal policy, dirty
map nodes before a checkpoint, objects referenced by live Refs).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Tuple

__all__ = ["SharedLruCache", "CacheStats"]


@dataclass
class CacheStats:
    """Observability counters for a :class:`SharedLruCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    charged_bytes: int = 0
    entries: int = 0


class _Entry:
    __slots__ = ("value", "charge", "pins", "on_evict")

    def __init__(self, value: Any, charge: int, on_evict: Optional[Callable]) -> None:
        self.value = value
        self.charge = charge
        self.pins = 0
        self.on_evict = on_evict


class SharedLruCache:
    """LRU cache of ``(namespace, key)`` entries bounded by a byte budget.

    * ``put`` inserts or replaces an entry with an explicit byte ``charge``
      (the unpickled object size estimate, a map node size, ...).
    * ``get`` returns the value and moves the entry to the hot end.
    * ``pin``/``unpin`` protect an entry from eviction (reference-counted,
      like the Ref counts of section 4.2.2).
    * Eviction runs inside ``put`` whenever the budget is exceeded and may
      call the entry's ``on_evict`` callback (used by write-back caches).
    """

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes <= 0:
            raise ValueError("cache budget must be positive")
        self.budget_bytes = budget_bytes
        self._entries: "OrderedDict[Tuple[str, Any], _Entry]" = OrderedDict()
        self.stats = CacheStats()

    # -- core operations -----------------------------------------------------

    def put(
        self,
        namespace: str,
        key: Any,
        value: Any,
        charge: int,
        on_evict: Optional[Callable[[Any, Any], None]] = None,
    ) -> None:
        """Insert or replace ``(namespace, key)``; may trigger evictions."""
        if charge < 0:
            raise ValueError("charge must be non-negative")
        full_key = (namespace, key)
        existing = self._entries.pop(full_key, None)
        if existing is not None:
            self.stats.charged_bytes -= existing.charge
        entry = _Entry(value, charge, on_evict)
        if existing is not None:
            entry.pins = existing.pins
        self._entries[full_key] = entry
        self.stats.charged_bytes += charge
        self.stats.entries = len(self._entries)
        # The entry being inserted is never its own eviction victim: the
        # caller must get a chance to use (or pin) it first.
        self._evict_to_budget(protect=full_key)

    def get(self, namespace: str, key: Any) -> Any:
        """Return the cached value or ``None``; touches the entry."""
        full_key = (namespace, key)
        entry = self._entries.get(full_key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(full_key)
        self.stats.hits += 1
        return entry.value

    def peek(self, namespace: str, key: Any) -> Any:
        """Return the cached value or ``None`` without touching LRU order."""
        entry = self._entries.get((namespace, key))
        return None if entry is None else entry.value

    def contains(self, namespace: str, key: Any) -> bool:
        return (namespace, key) in self._entries

    def remove(self, namespace: str, key: Any) -> None:
        """Drop an entry if present (no eviction callback)."""
        entry = self._entries.pop((namespace, key), None)
        if entry is not None:
            self.stats.charged_bytes -= entry.charge
            self.stats.entries = len(self._entries)

    # -- pinning ---------------------------------------------------------------

    def pin(self, namespace: str, key: Any) -> None:
        """Protect an entry from eviction (reference counted)."""
        entry = self._entries.get((namespace, key))
        if entry is None:
            raise KeyError(f"cannot pin absent cache entry {namespace}:{key!r}")
        entry.pins += 1

    def unpin(self, namespace: str, key: Any) -> None:
        """Release one pin; entries become evictable at zero pins.

        A cache pushed over budget by pinned entries (the no-steal policy
        allows that) shrinks back as the pins drain.
        """
        entry = self._entries.get((namespace, key))
        if entry is None:
            raise KeyError(f"cannot unpin absent cache entry {namespace}:{key!r}")
        if entry.pins <= 0:
            raise ValueError(f"unbalanced unpin for {namespace}:{key!r}")
        entry.pins -= 1
        if entry.pins == 0:
            self._evict_to_budget()

    def pin_count(self, namespace: str, key: Any) -> int:
        entry = self._entries.get((namespace, key))
        return 0 if entry is None else entry.pins

    # -- maintenance -------------------------------------------------------------

    def update_charge(self, namespace: str, key: Any, charge: int) -> None:
        """Re-price an entry (e.g. an object grew while dirty)."""
        entry = self._entries.get((namespace, key))
        if entry is None:
            raise KeyError(f"cannot re-charge absent entry {namespace}:{key!r}")
        self.stats.charged_bytes += charge - entry.charge
        entry.charge = charge
        self._evict_to_budget()

    def items(self, namespace: str) -> Iterator[Tuple[Any, Any]]:
        """Iterate ``(key, value)`` pairs of one namespace (cold to hot)."""
        for (ns, key), entry in list(self._entries.items()):
            if ns == namespace:
                yield key, entry.value

    def clear_namespace(self, namespace: str) -> None:
        """Drop every entry of one namespace (no eviction callbacks)."""
        for full_key in [fk for fk in self._entries if fk[0] == namespace]:
            entry = self._entries.pop(full_key)
            self.stats.charged_bytes -= entry.charge
        self.stats.entries = len(self._entries)

    def _evict_to_budget(self, protect: Optional[Tuple[str, Any]] = None) -> None:
        if self.stats.charged_bytes <= self.budget_bytes:
            return
        # Walk from the cold end; pinned entries are skipped, so a cache
        # full of pinned entries may legitimately exceed its budget (the
        # no-steal policy forbids dropping dirty objects mid-transaction).
        for full_key in list(self._entries):
            if self.stats.charged_bytes <= self.budget_bytes:
                break
            entry = self._entries[full_key]
            if entry.pins > 0 or full_key == protect:
                continue
            del self._entries[full_key]
            self.stats.charged_bytes -= entry.charge
            self.stats.evictions += 1
            if entry.on_evict is not None:
                entry.on_evict(full_key[1], entry.value)
        self.stats.entries = len(self._entries)
