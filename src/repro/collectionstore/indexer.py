"""Indexers: functional index definitions (paper section 5.1.2).

An :class:`Indexer` is the runtime identity of one index on a collection:
the collection schema class, a **pure extractor function** computing the
key from an object, a uniqueness flag, and the index implementation kind.
Because extractor functions cannot be persisted, each indexer carries a
stable ``name``; the persistent side of the index is an
:class:`IndexDescriptor` stored inside the collection object and matched
to indexers by that name.

The paper's C++ encodes all of this in a template instantiation
(``Indexer<Schema, Key, extractor>``); the Python equivalent is this
explicit object, with the same role: it is the only schema-aware piece of
the collection store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Type

from repro.errors import SchemaError
from repro.objectstore.encoding import BufferReader, BufferWriter
from repro.objectstore.persistent import Persistent

__all__ = ["Indexer", "IndexDescriptor", "INDEX_KINDS"]

INDEX_KINDS = ("btree", "hash", "list")


@dataclass(frozen=True)
class Indexer:
    """Runtime definition of one functional index.

    ``extractor`` must be *pure*: its output may depend only on its input
    object (the paper's requirement — the collection store compares key
    snapshots computed at different times and relies on them being
    reproducible).
    """

    name: str
    schema_class: Type[Persistent]
    extractor: Callable[[Persistent], object]
    unique: bool = False
    kind: str = "btree"

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("indexer needs a non-empty name")
        if self.kind not in INDEX_KINDS:
            raise SchemaError(
                f"unknown index kind {self.kind!r}; choose from {INDEX_KINDS}"
            )
        if not (
            isinstance(self.schema_class, type)
            and issubclass(self.schema_class, Persistent)
        ):
            raise SchemaError("indexer schema class must subclass Persistent")
        if not callable(self.extractor):
            raise SchemaError("indexer extractor must be callable")

    def extract(self, obj: Persistent) -> object:
        """Apply the extractor with a type check on the input."""
        if not isinstance(obj, self.schema_class):
            raise SchemaError(
                f"extractor for index {self.name!r} expects "
                f"{self.schema_class.__name__}, got {type(obj).__name__}"
            )
        return self.extractor(obj)


@dataclass
class IndexDescriptor:
    """Persistent metadata of one index (lives inside the collection)."""

    name: str
    kind: str
    unique: bool
    root_oid: int

    def write_to(self, writer: BufferWriter) -> None:
        writer.write_str(self.name)
        writer.write_str(self.kind)
        writer.write_bool(self.unique)
        writer.write_uint(self.root_oid)

    @classmethod
    def read_from(cls, reader: BufferReader) -> "IndexDescriptor":
        return cls(
            name=reader.read_str(),
            kind=reader.read_str(),
            unique=reader.read_bool(),
            root_oid=reader.read_uint(),
        )

    def matches(self, indexer: Indexer) -> None:
        """Raise :class:`SchemaError` when an indexer mis-describes us."""
        if indexer.kind != self.kind:
            raise SchemaError(
                f"index {self.name!r} is a {self.kind} index but the "
                f"indexer says {indexer.kind}"
            )
        if indexer.unique != self.unique:
            raise SchemaError(
                f"index {self.name!r} uniqueness mismatch: stored "
                f"{self.unique}, indexer {indexer.unique}"
            )
