"""Collections and the handles used to operate on them.

A :class:`Collection` is itself a persistent object (as in the paper,
where ``Collection`` subclasses ``Object``): it stores the schema class
id, the member count, and one :class:`IndexDescriptor` per index.  All
behaviour lives in :class:`CollectionHandle`, which binds a collection to
a :class:`CTransaction` — the handle checks writability, resolves
descriptors to registered indexers (the extractor functions), and builds
the right index implementation for each query or update.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.collectionstore.btree import BTreeIndex
from repro.collectionstore.hashtable import HashIndex
from repro.collectionstore.indexer import IndexDescriptor, Indexer
from repro.collectionstore.keys import compare_keys
from repro.collectionstore.listindex import ListIndex
from repro.errors import (
    CollectionStoreError,
    DuplicateKeyError,
    SchemaError,
)
from repro.objectstore.encoding import BufferReader, BufferWriter
from repro.objectstore.persistent import Persistent

__all__ = ["Collection", "CollectionHandle"]


class Collection(Persistent):
    """Persistent state of one collection."""

    class_id = "tdb.collection"

    def __init__(self, schema_class_id: str = "") -> None:
        self.schema_class_id = schema_class_id
        self.count = 0
        self.indexes: List[IndexDescriptor] = []

    def pickle(self) -> bytes:
        writer = BufferWriter()
        writer.write_str(self.schema_class_id)
        writer.write_uint(self.count)
        writer.write_list(self.indexes, lambda w, d: d.write_to(w))
        return writer.getvalue()

    @classmethod
    def unpickle(cls, data: bytes) -> "Collection":
        reader = BufferReader(data)
        collection = cls(reader.read_str())
        collection.count = reader.read_uint()
        collection.indexes = reader.read_list(IndexDescriptor.read_from)
        reader.expect_end()
        return collection

    def descriptor(self, name: str) -> Optional[IndexDescriptor]:
        for descriptor in self.indexes:
            if descriptor.name == name:
                return descriptor
        return None


class CollectionHandle:
    """A collection bound to a transaction, read-only or writable."""

    def __init__(self, ctransaction, name: str, oid: int, writable: bool) -> None:
        self.ct = ctransaction
        self.name = name
        self.oid = oid
        self.writable = writable
        txn = ctransaction._txn
        if writable:
            self._ref = txn.open_writable(oid, Collection)
        else:
            self._ref = txn.open_readonly(oid, Collection)

    # -- plumbing ----------------------------------------------------------------

    @property
    def collection(self) -> Collection:
        return self._ref.deref()

    @property
    def count(self) -> int:
        """Number of objects currently in the collection."""
        return self.collection.count

    @property
    def schema_class(self):
        return self.ct.store.object_store.registry.lookup(
            self.collection.schema_class_id
        )

    def index_names(self) -> List[str]:
        return [descriptor.name for descriptor in self.collection.indexes]

    def _require_writable(self) -> None:
        if not self.writable:
            raise CollectionStoreError(
                f"collection {self.name!r} was opened read-only"
            )

    def _descriptor_for(self, indexer: Indexer) -> IndexDescriptor:
        descriptor = self.collection.descriptor(indexer.name)
        if descriptor is None:
            raise SchemaError(
                f"collection {self.name!r} has no index {indexer.name!r}"
            )
        descriptor.matches(indexer)
        return descriptor

    def _indexer_for(self, descriptor: IndexDescriptor) -> Indexer:
        return self.ct.store.indexer(descriptor.name)

    def _impl(self, descriptor: IndexDescriptor):
        config = self.ct.store.config
        txn = self.ct._txn
        if descriptor.kind == "btree":
            return BTreeIndex(txn, descriptor.root_oid, config.btree_order)
        if descriptor.kind == "hash":
            return HashIndex(
                txn,
                descriptor.root_oid,
                initial_buckets=config.hash_initial_buckets,
                max_load=config.hash_max_load,
            )
        return ListIndex(txn, descriptor.root_oid, config.list_node_capacity)

    def _create_root(self, indexer: Indexer) -> int:
        txn = self.ct._txn
        config = self.ct.store.config
        if indexer.kind == "btree":
            return BTreeIndex.create(txn, config.btree_order)
        if indexer.kind == "hash":
            return HashIndex.create(txn, config.hash_initial_buckets)
        return ListIndex.create(txn)

    def _check_schema(self, obj: Persistent) -> None:
        schema_class = self.schema_class
        if not isinstance(obj, schema_class):
            raise SchemaError(
                f"collection {self.name!r} stores {schema_class.__name__} "
                f"objects (or subclasses), got {type(obj).__name__}"
            )

    # -- membership ----------------------------------------------------------------

    def insert(self, obj: Persistent) -> int:
        """Add ``obj`` to the collection, updating every index.

        Raises :class:`DuplicateKeyError` (and inserts nothing) when the
        object would create a duplicate in a unique index.
        """
        self._require_writable()
        self._check_schema(obj)
        pairs = []
        for descriptor in self.collection.indexes:
            indexer = self._indexer_for(descriptor)
            key = indexer.extract(obj)
            pairs.append((descriptor, key))
        # Check all unique indexes before touching anything.
        for descriptor, key in pairs:
            if descriptor.unique and self._impl(descriptor).lookup(key):
                raise DuplicateKeyError(
                    f"insert into {self.name!r} would duplicate key {key!r} "
                    f"in unique index {descriptor.name!r}",
                    key=key,
                )
        oid = self.ct._txn.insert(obj)
        for descriptor, key in pairs:
            self._impl(descriptor).insert(key, oid, unique=False)
        self.collection.count += 1
        return oid

    # -- index management ------------------------------------------------------------

    def create_index(self, indexer: Indexer) -> None:
        """Add an index, populating it from the current members.

        Raises :class:`DuplicateKeyError` when a new unique index would
        cover duplicate keys (paper section 5.1.2); abort the transaction
        to undo the partial build.
        """
        self._require_writable()
        if self.collection.descriptor(indexer.name) is not None:
            raise SchemaError(
                f"collection {self.name!r} already has index {indexer.name!r}"
            )
        if indexer.schema_class.class_id != self.collection.schema_class_id:
            raise SchemaError(
                f"index {indexer.name!r} is defined over "
                f"{indexer.schema_class.__name__}, not this collection's schema"
            )
        self.ct.store.register_indexer(indexer)
        root_oid = self._create_root(indexer)
        descriptor = IndexDescriptor(
            name=indexer.name,
            kind=indexer.kind,
            unique=indexer.unique,
            root_oid=root_oid,
        )
        implementation = self._impl(descriptor)
        for oid in self._member_oids():
            obj = self.ct._txn.open_readonly(oid).deref()
            implementation.insert(indexer.extract(obj), oid, indexer.unique)
        self.collection.indexes.append(descriptor)

    def remove_index(self, indexer: Indexer) -> None:
        """Drop an index; a collection must keep at least one."""
        self._require_writable()
        descriptor = self._descriptor_for(indexer)
        if len(self.collection.indexes) <= 1:
            raise CollectionStoreError(
                f"cannot remove the only index of collection {self.name!r}"
            )
        self._impl(descriptor).destroy()
        self.collection.indexes.remove(descriptor)

    def _member_oids(self) -> List[int]:
        """Object ids of all members (via the first index)."""
        if not self.collection.indexes:
            return []
        implementation = self._impl(self.collection.indexes[0])
        return [oid for _key, oid in implementation.scan()]

    # -- queries ------------------------------------------------------------------------

    def query(self, indexer: Indexer):
        """Scan query: every object, in the index's natural order."""
        descriptor = self._descriptor_for(indexer)
        oids = [oid for _key, oid in self._impl(descriptor).scan()]
        return self.ct._open_iterator(self, oids)

    def query_match(self, indexer: Indexer, key: object):
        """Exact-match query."""
        descriptor = self._descriptor_for(indexer)
        oids = self._impl(descriptor).lookup(key)
        return self.ct._open_iterator(self, oids)

    def query_range(self, indexer: Indexer, low: object, high: object):
        """Inclusive range query (B+tree indexes only)."""
        descriptor = self._descriptor_for(indexer)
        if descriptor.kind != "btree":
            raise CollectionStoreError(
                f"index {indexer.name!r} is a {descriptor.kind} index; "
                "range queries need a btree index"
            )
        oids = [oid for _key, oid in self._impl(descriptor).range(low, high)]
        return self.ct._open_iterator(self, oids)

    # -- iterator support (key snapshots, deferred maintenance) ---------------------------

    def _key_snapshot(self, obj: Persistent) -> Dict[str, object]:
        """Current key of ``obj`` under every index (paper section 5.2.3)."""
        snapshot = {}
        for descriptor in self.collection.indexes:
            indexer = self._indexer_for(descriptor)
            snapshot[descriptor.name] = indexer.extract(obj)
        return snapshot

    def _apply_deferred(self, written, deleted) -> List[int]:
        """Apply an iterator's deferred updates; return violator oids.

        ``written``: oid -> pre-update key snapshot.
        ``deleted``: oid -> pre-delete key snapshot.
        """
        txn = self.ct._txn
        for oid in sorted(deleted):
            pre_keys = deleted[oid]
            for descriptor in self.collection.indexes:
                self._impl(descriptor).remove(pre_keys[descriptor.name], oid)
            txn.remove(oid)
            self.collection.count -= 1

        # Updates run in two phases over the whole write set so that
        # objects exchanging unique keys through one iterator do not trip
        # a spurious violation: first every stale entry leaves the
        # indexes, then the new entries go in with uniqueness checks.
        plans = []
        for oid in sorted(written):
            pre_keys = written[oid]
            obj = txn.open_readonly(oid).deref()
            post_keys = self._key_snapshot(obj)
            changed = [
                descriptor
                for descriptor in self.collection.indexes
                if compare_keys(
                    post_keys[descriptor.name], pre_keys[descriptor.name]
                )
                != 0
            ]
            for descriptor in changed:
                self._impl(descriptor).remove(pre_keys[descriptor.name], oid)
            plans.append((oid, post_keys, changed))

        violators: List[int] = []
        for oid, post_keys, changed in plans:
            inserted: List[IndexDescriptor] = []
            violation = False
            for descriptor in changed:
                implementation = self._impl(descriptor)
                key = post_keys[descriptor.name]
                if descriptor.unique and implementation.lookup(key):
                    violation = True
                    break
                implementation.insert(key, oid, unique=False)
                inserted.append(descriptor)
            if violation:
                # Remove the object from the collection entirely: undo the
                # keys inserted so far, then drop it from the untouched
                # indexes (their key did not change).
                for descriptor in inserted:
                    self._impl(descriptor).remove(post_keys[descriptor.name], oid)
                for descriptor in self.collection.indexes:
                    if descriptor not in changed:
                        self._impl(descriptor).remove(
                            post_keys[descriptor.name], oid
                        )
                self.collection.count -= 1
                violators.append(oid)
        return violators
