"""The :class:`CollectionStore` facade.

Binds the collection layer to an object store and owns the runtime
indexer registry — the piece that cannot be persisted (extractor
functions) and must be re-registered by the application after restart,
mirroring the paper's requirement that applications construct their
``Indexer`` objects and hand them to the collection store.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.collectionstore.btree import BTreeNode
from repro.collectionstore.collection import Collection
from repro.collectionstore.ctransaction import CTransaction
from repro.collectionstore.hashtable import HashBucket, HashDirectory
from repro.collectionstore.indexer import Indexer
from repro.collectionstore.listindex import ListNode, ListRoot
from repro.config import CollectionStoreConfig
from repro.errors import SchemaError
from repro.objectstore.persistent import ClassRegistry
from repro.objectstore.store import ObjectStore

__all__ = ["CollectionStore", "register_collection_classes"]


def register_collection_classes(registry: ClassRegistry) -> None:
    """Register the collection store's persistent meta-object classes."""
    for cls in (Collection, BTreeNode, HashDirectory, HashBucket, ListRoot, ListNode):
        registry.register(cls)


class CollectionStore:
    """Keyed access to collections of objects over an object store."""

    def __init__(
        self,
        object_store: ObjectStore,
        config: Optional[CollectionStoreConfig] = None,
    ) -> None:
        self.object_store = object_store
        self.config = config or CollectionStoreConfig()
        self._indexers: Dict[str, Indexer] = {}
        register_collection_classes(object_store.registry)

    # ------------------------------------------------------------------
    # Indexer registry
    # ------------------------------------------------------------------

    def register_indexer(self, indexer: Indexer) -> Indexer:
        """Associate an indexer (with its extractor) under its name.

        Must be called after restart for every index that will be used —
        extractor functions cannot be persisted.  Registering a different
        indexer under an existing name is rejected.
        """
        existing = self._indexers.get(indexer.name)
        if existing is not None and (
            existing.schema_class is not indexer.schema_class
            or existing.unique != indexer.unique
            or existing.kind != indexer.kind
        ):
            # Extractor identity is deliberately not compared: after a
            # restart the application re-creates its extractor functions.
            raise SchemaError(
                f"an indexer named {indexer.name!r} is already registered "
                "with a different definition"
            )
        self._indexers[indexer.name] = indexer
        return indexer

    def indexer(self, name: str) -> Indexer:
        indexer = self._indexers.get(name)
        if indexer is None:
            raise SchemaError(
                f"no indexer registered under {name!r}; register the "
                "application's Indexer objects after opening the database"
            )
        return indexer

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def transaction(self) -> CTransaction:
        """Begin a collection-store transaction (Figure 5 interface)."""
        return CTransaction(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the whole stack beneath this store."""
        self.object_store.close()

    def __enter__(self) -> "CollectionStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
