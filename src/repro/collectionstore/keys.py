"""Index key encoding, decoding, hashing and comparison.

Extractor functions return Python values; indexes persist them inside
their node objects, so keys need a stable, architecture-independent
encoding.  Supported key types: ``int``, ``float``, ``str``, ``bytes``,
``bool``, and flat tuples of those (composite keys from multiple
fields).

Comparison is defined between keys of the same type only — one index
holds one key type, and mixing types raises :class:`SchemaError` rather
than producing an arbitrary order.  Hashing (for the dynamic hash table)
is computed over the encoded bytes with FNV-1a, which is stable across
processes, unlike Python's randomized ``hash()``.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.errors import SchemaError
from repro.objectstore.encoding import BufferReader, BufferWriter

__all__ = ["encode_key", "decode_key", "compare_keys", "hash_key", "key_type_tag"]

_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_STR = 3
_TAG_BYTES = 4
_TAG_BOOL = 5
_TAG_TUPLE = 6

_TAG_NAMES = {
    _TAG_INT: "int",
    _TAG_FLOAT: "float",
    _TAG_STR: "str",
    _TAG_BYTES: "bytes",
    _TAG_BOOL: "bool",
    _TAG_TUPLE: "tuple",
}


def key_type_tag(key: Any) -> int:
    """Return the type tag for ``key``; reject unsupported types."""
    # bool before int: bool is an int subclass but must not mix orders.
    if isinstance(key, bool):
        return _TAG_BOOL
    if isinstance(key, int):
        return _TAG_INT
    if isinstance(key, float):
        return _TAG_FLOAT
    if isinstance(key, str):
        return _TAG_STR
    if isinstance(key, (bytes, bytearray)):
        return _TAG_BYTES
    if isinstance(key, tuple):
        return _TAG_TUPLE
    raise SchemaError(
        f"unsupported index key type {type(key).__name__}; supported: "
        "int, float, str, bytes, bool, and flat tuples of those"
    )


def encode_key(key: Any) -> bytes:
    """Encode a key value to stable bytes."""
    writer = BufferWriter()
    _encode_into(writer, key, top_level=True)
    return writer.getvalue()


def _encode_into(writer: BufferWriter, key: Any, top_level: bool) -> None:
    tag = key_type_tag(key)
    writer.write_raw(bytes([tag]))
    if tag == _TAG_INT:
        writer.write_int(key)
    elif tag == _TAG_FLOAT:
        writer.write_float(key)
    elif tag == _TAG_STR:
        writer.write_str(key)
    elif tag == _TAG_BYTES:
        writer.write_bytes(bytes(key))
    elif tag == _TAG_BOOL:
        writer.write_bool(key)
    else:  # tuple
        if not top_level:
            raise SchemaError("nested tuples are not supported as index keys")
        writer.write_raw(struct.pack(">H", len(key)))
        for item in key:
            _encode_into(writer, item, top_level=False)


def decode_key(data: bytes) -> Any:
    """Invert :func:`encode_key`."""
    reader = BufferReader(data)
    key = _decode_from(reader, top_level=True)
    reader.expect_end()
    return key


def _decode_from(reader: BufferReader, top_level: bool) -> Any:
    tag = reader._take(1)[0]
    if tag == _TAG_INT:
        return reader.read_int()
    if tag == _TAG_FLOAT:
        return reader.read_float()
    if tag == _TAG_STR:
        return reader.read_str()
    if tag == _TAG_BYTES:
        return reader.read_bytes()
    if tag == _TAG_BOOL:
        return reader.read_bool()
    if tag == _TAG_TUPLE:
        if not top_level:
            raise SchemaError("nested tuple inside encoded key")
        (count,) = struct.unpack(">H", reader._take(2))
        return tuple(_decode_from(reader, top_level=False) for _ in range(count))
    raise SchemaError(f"unknown key type tag {tag}")


def compare_keys(a: Any, b: Any) -> int:
    """Three-way comparison of two keys of the same type.

    Returns -1, 0, or 1.  Raises :class:`SchemaError` on a type mismatch
    (one index must hold keys of one type).
    """
    tag_a, tag_b = key_type_tag(a), key_type_tag(b)
    if tag_a != tag_b:
        raise SchemaError(
            f"cannot compare {_TAG_NAMES[tag_a]} key with "
            f"{_TAG_NAMES[tag_b]} key in the same index"
        )
    if tag_a == _TAG_TUPLE:
        if len(a) != len(b):
            raise SchemaError(
                f"composite keys differ in arity: {len(a)} vs {len(b)}"
            )
        for item_a, item_b in zip(a, b):
            result = compare_keys(item_a, item_b)
            if result:
                return result
        return 0
    if tag_a == _TAG_BYTES:
        a, b = bytes(a), bytes(b)
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


def hash_key(key: Any) -> int:
    """Stable 64-bit FNV-1a hash of the encoded key."""
    data = encode_key(key)
    value = 0xCBF29CE484222325
    for byte in data:
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value
