"""The collection store: keyed access to collections of objects.

Python adaptation of the paper's section 5:

* a **collection** is a set of persistent objects sharing a schema class
  and one or more indexes,
* **functional indexes**: keys are produced by applying a pure extractor
  function to each object, so variable-sized and derived keys work and no
  separate data-definition language is needed,
* index kinds: **B+tree** (scan, exact-match, range), **dynamic hash
  table** (Larson linear hashing; scan, exact-match) and **list** (scan),
* indexes are **maintained automatically**: inserts update them
  immediately; updates and deletes made through iterators are applied at
  iterator close,
* iterators are **insensitive** (section 5.2.2): a query materializes its
  result set, updates are deferred until close, only one iterator may
  hand out writable references at a time, and iteration is
  unidirectional — together these rule out the Halloween syndrome,
* deferred uniqueness violations remove the violating objects from the
  collection and raise :class:`~repro.errors.IndexIntegrityError`
  carrying their ids so the application can re-integrate them
  (section 5.2.3).
"""

from repro.collectionstore.keys import encode_key, decode_key, compare_keys
from repro.collectionstore.indexer import Indexer, IndexDescriptor
from repro.collectionstore.collection import Collection, CollectionHandle
from repro.collectionstore.iterators import CollectionIterator
from repro.collectionstore.ctransaction import CTransaction
from repro.collectionstore.store import CollectionStore, register_collection_classes

__all__ = [
    "encode_key",
    "decode_key",
    "compare_keys",
    "Indexer",
    "IndexDescriptor",
    "Collection",
    "CollectionHandle",
    "CollectionIterator",
    "CTransaction",
    "CollectionStore",
    "register_collection_classes",
]
