"""Persistent list index: insertion-ordered (key, oid) entries, scan only.

The cheapest index kind (paper section 5.2.4): entries append to the tail
of a chunked linked list.  Exact-match degenerates to a scan; range
queries are unsupported.  Useful for history-style collections (the
TPC-B History table uses one) where the workload only ever appends and
occasionally scans.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.collectionstore.keys import compare_keys, decode_key, encode_key
from repro.errors import CollectionStoreError, DuplicateKeyError
from repro.objectstore.encoding import BufferReader, BufferWriter
from repro.objectstore.persistent import Persistent

__all__ = ["ListRoot", "ListNode", "ListIndex"]


class ListRoot(Persistent):
    """Root object: head/tail node ids.

    Deliberately *not* a per-insert hot spot: it is only rewritten when a
    node fills up, so a history-style append workload writes one small
    list-node delta per insert, not three meta-objects (member counts live
    in the collection object, which the workload updates anyway).
    """

    class_id = "tdb.list.root"

    def __init__(self) -> None:
        self.head_oid: Optional[int] = None
        self.tail_oid: Optional[int] = None
        self.entry_count = 0  # retained in the format; no longer maintained

    def pickle(self) -> bytes:
        writer = BufferWriter()
        writer.write_optional_uint(self.head_oid)
        writer.write_optional_uint(self.tail_oid)
        writer.write_uint(self.entry_count)
        return writer.getvalue()

    @classmethod
    def unpickle(cls, data: bytes) -> "ListRoot":
        reader = BufferReader(data)
        root = cls()
        root.head_oid = reader.read_optional_uint()
        root.tail_oid = reader.read_optional_uint()
        root.entry_count = reader.read_uint()
        reader.expect_end()
        return root


class ListNode(Persistent):
    """One chunk of the list: entries plus the next-node link."""

    class_id = "tdb.list.node"

    def __init__(self) -> None:
        self.entries: List[Tuple[object, int]] = []
        self.next_node: Optional[int] = None

    def pickle(self) -> bytes:
        writer = BufferWriter()
        writer.write_list(
            self.entries,
            lambda w, entry: (
                w.write_bytes(encode_key(entry[0])),
                w.write_uint(entry[1]),
            ),
        )
        writer.write_optional_uint(self.next_node)
        return writer.getvalue()

    @classmethod
    def unpickle(cls, data: bytes) -> "ListNode":
        reader = BufferReader(data)
        node = cls()
        node.entries = reader.read_list(
            lambda r: (decode_key(r.read_bytes()), r.read_uint())
        )
        node.next_node = reader.read_optional_uint()
        reader.expect_end()
        return node

    def cache_charge(self) -> int:
        return 96 + 64 * len(self.entries)


class ListIndex:
    """Operations on one list index, bound to a transaction."""

    def __init__(self, txn, root_oid: int, node_capacity: int = 64) -> None:
        if node_capacity < 1:
            raise CollectionStoreError("list node capacity must be positive")
        self.txn = txn
        self.root_oid = root_oid
        self.node_capacity = node_capacity

    # -- lifecycle ---------------------------------------------------------------

    @classmethod
    def create(cls, txn) -> int:
        return txn.insert(ListRoot())

    def destroy(self) -> None:
        root = self._read_root()
        oid = root.head_oid
        while oid is not None:
            node = self.txn.open_readonly(oid, ListNode).deref()
            self.txn.remove(oid)
            oid = node.next_node
        self.txn.remove(self.root_oid)

    def _read_root(self) -> ListRoot:
        return self.txn.open_readonly(self.root_oid, ListRoot).deref()

    # -- queries -----------------------------------------------------------------

    def scan(self) -> Iterator[Tuple[object, int]]:
        root = self._read_root()
        oid = root.head_oid
        while oid is not None:
            node = self.txn.open_readonly(oid, ListNode).deref()
            yield from list(node.entries)
            oid = node.next_node

    def lookup(self, key: object) -> List[int]:
        """Exact match by full scan (lists have no access structure)."""
        return [
            oid for entry_key, oid in self.scan()
            if compare_keys(entry_key, key) == 0
        ]

    # -- updates ------------------------------------------------------------------

    def insert(self, key: object, oid: int, unique: bool) -> None:
        if unique and self.lookup(key):
            raise DuplicateKeyError(
                f"duplicate key {key!r} in unique index", key=key
            )
        root = self._read_root()
        if root.tail_oid is None:
            node_oid = self.txn.insert(ListNode())
            root = self.txn.open_writable(self.root_oid, ListRoot).deref()
            root.head_oid = node_oid
            root.tail_oid = node_oid
        else:
            tail = self.txn.open_readonly(root.tail_oid, ListNode).deref()
            if len(tail.entries) >= self.node_capacity:
                node_oid = self.txn.insert(ListNode())
                tail = self.txn.open_writable(root.tail_oid, ListNode).deref()
                tail.next_node = node_oid
                root = self.txn.open_writable(self.root_oid, ListRoot).deref()
                root.tail_oid = node_oid
            else:
                node_oid = root.tail_oid
        node = self.txn.open_writable(node_oid, ListNode).deref()
        node.entries.append((key, oid))

    def remove(self, key: object, oid: int) -> bool:
        root = self._read_root()
        node_oid = root.head_oid
        while node_oid is not None:
            node = self.txn.open_readonly(node_oid, ListNode).deref()
            for index, (entry_key, entry_oid) in enumerate(node.entries):
                if entry_oid == oid and compare_keys(entry_key, key) == 0:
                    writable = self.txn.open_writable(node_oid, ListNode).deref()
                    del writable.entries[index]
                    return True
            node_oid = node.next_node
        return False
