"""Insensitive iterators with deferred index maintenance.

The paper's four constraints (section 5.2.2) and how they appear here:

1. *Writable references to collection objects only come from iterators* —
   :class:`~repro.collectionstore.ctransaction.CTransaction` exposes no
   ``open_writable``; :meth:`CollectionIterator.write` is the only door.
2. *No other iterator on the same collection may be open when an iterator
   dereferences writable* — checked at :meth:`write` / :meth:`delete`.
3. *Iterators are unidirectional* — only :meth:`next`.
4. *Index maintenance is deferred until iterator close* — :meth:`close`
   replays the updates using the pre-update key snapshots captured when
   each writable reference was handed out.

Insensitivity itself comes from materializing the result set at query
time: updates performed through the iterator cannot add, remove, or move
rows under it, which rules out the Halloween syndrome by construction.

Uniqueness violations discovered at close remove the violating objects
from the collection and raise :class:`IndexIntegrityError` carrying their
ids (section 5.2.3).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import IndexIntegrityError, IteratorStateError
from repro.objectstore.refs import ReadonlyRef, WritableRef

__all__ = ["CollectionIterator"]


class CollectionIterator:
    """Unidirectional cursor over a materialized query result."""

    def __init__(self, ctransaction, handle, oids: List[int]) -> None:
        self.ct = ctransaction
        self.handle = handle
        self._oids = list(oids)
        self._position = 0
        self._written: Dict[int, Dict[str, object]] = {}
        self._deleted: Dict[int, Dict[str, object]] = {}
        self.closed = False

    # -- cursor movement (constraint 3: forward only) ----------------------------

    def end(self) -> bool:
        """True once the cursor has moved past the last object."""
        return self._position >= len(self._oids)

    def next(self) -> None:
        """Advance to the next object."""
        self._check_open()
        if self.end():
            raise IteratorStateError("iterator advanced past its end")
        self._position += 1

    def __len__(self) -> int:
        return len(self._oids)

    # -- dereferencing ------------------------------------------------------------

    def _current_oid(self) -> int:
        self._check_open()
        if self.end():
            raise IteratorStateError("iterator dereferenced past its end")
        oid = self._oids[self._position]
        if oid in self._deleted:
            raise IteratorStateError(
                f"current object {oid} was deleted through this iterator"
            )
        return oid

    def read(self) -> ReadonlyRef:
        """Read-only view of the current object."""
        return self.ct._txn.open_readonly(self._current_oid())

    def write(self) -> WritableRef:
        """Writable view of the current object (constraint 2 applies).

        The first writable dereference of each object records its
        pre-update key snapshot; close() compares it against the keys
        recomputed after the application's updates.
        """
        oid = self._current_oid()
        self.handle._require_writable()
        self.ct._assert_sole_iterator(self)
        ref = self.ct._txn.open_writable(oid)
        if oid not in self._written:
            self._written[oid] = self.handle._key_snapshot(ref.deref())
        return ref

    def delete(self) -> None:
        """Delete the current object (applied at close)."""
        oid = self._current_oid()
        self.handle._require_writable()
        self.ct._assert_sole_iterator(self)
        ref = self.ct._txn.open_writable(oid)
        if oid in self._written:
            # Deleting an object updated through this iterator: the index
            # entries to purge are the pre-update ones.
            self._deleted[oid] = self._written.pop(oid)
        else:
            self._deleted[oid] = self.handle._key_snapshot(ref.deref())

    # -- closing --------------------------------------------------------------------

    def close(self) -> None:
        """Apply deferred updates; raise on deferred unique violations.

        Idempotent.  On :class:`IndexIntegrityError` the violating objects
        have been removed from the collection (their ids ride on the
        exception) while every other deferred update has been applied.
        """
        if self.closed:
            return
        self.closed = True
        self.ct._iterator_closed(self)
        if not self._written and not self._deleted:
            return
        violators = self.handle._apply_deferred(self._written, self._deleted)
        if violators:
            raise IndexIntegrityError(
                f"{len(violators)} object(s) violated unique indexes at "
                f"iterator close and were removed from collection "
                f"{self.handle.name!r}",
                removed_object_ids=violators,
            )

    def abandon(self) -> None:
        """Discard deferred updates without applying them (abort path)."""
        self.closed = True
        self.ct._iterator_closed(self)
        self._written.clear()
        self._deleted.clear()

    def _check_open(self) -> None:
        if self.closed:
            raise IteratorStateError("iterator is closed")

    # -- context manager ---------------------------------------------------------------

    def __enter__(self) -> "CollectionIterator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abandon()
