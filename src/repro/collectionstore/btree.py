"""Persistent B+tree index.

Index meta-objects (tree nodes) are ordinary persistent objects locked
under two-phase locking like everything else (paper section 5.2.4);
there is no early lock release — the paper explicitly trades index
concurrency tricks for implementation simplicity.

Design notes:

* The root object id is **stable**: when the root overflows, its content
  moves into two fresh children and the root becomes their parent in
  place, so the index descriptor never changes.
* Non-unique indexes keep a posting list of object ids per key.
* Deletion is lazy about structure: emptied keys leave their leaf, but
  underfull leaves are not merged (the leaf chain stays intact and scans
  skip empty leaves).  DRM-scale collections rebuild indexes cheaply if
  compaction is ever needed; DESIGN.md records this simplification.
* Separator convention: equal keys route right (``bisect_right``), and a
  leaf split publishes the right node's first key as the separator.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.collectionstore.keys import compare_keys, decode_key, encode_key
from repro.errors import CollectionStoreError, DuplicateKeyError
from repro.objectstore.encoding import BufferReader, BufferWriter
from repro.objectstore.persistent import Persistent

__all__ = ["BTreeNode", "BTreeIndex"]


class BTreeNode(Persistent):
    """One B+tree node: leaf (keys + posting lists) or internal."""

    class_id = "tdb.btree.node"

    def __init__(self, is_leaf: bool = True) -> None:
        self.is_leaf = is_leaf
        self.keys: List[object] = []
        self.postings: List[List[int]] = []  # leaf only
        self.children: List[int] = []        # internal only
        self.next_leaf: Optional[int] = None  # leaf only

    def pickle(self) -> bytes:
        writer = BufferWriter()
        writer.write_bool(self.is_leaf)
        writer.write_list(self.keys, lambda w, k: w.write_bytes(encode_key(k)))
        if self.is_leaf:
            writer.write_list(self.postings, lambda w, p: w.write_uint_list(p))
            writer.write_optional_uint(self.next_leaf)
        else:
            writer.write_uint_list(self.children)
        return writer.getvalue()

    @classmethod
    def unpickle(cls, data: bytes) -> "BTreeNode":
        reader = BufferReader(data)
        node = cls(reader.read_bool())
        node.keys = reader.read_list(lambda r: decode_key(r.read_bytes()))
        if node.is_leaf:
            node.postings = reader.read_list(lambda r: r.read_uint_list())
            node.next_leaf = reader.read_optional_uint()
        else:
            node.children = reader.read_uint_list()
        reader.expect_end()
        return node

    def cache_charge(self) -> int:
        return 128 + 48 * len(self.keys) + 16 * sum(
            len(posting) for posting in self.postings
        ) + 16 * len(self.children)


def _search(keys: List[object], key: object) -> Tuple[int, bool]:
    """Binary search with the index comparator: (position, exact?)."""
    low, high = 0, len(keys)
    while low < high:
        mid = (low + high) // 2
        result = compare_keys(keys[mid], key)
        if result == 0:
            return mid, True
        if result < 0:
            low = mid + 1
        else:
            high = mid
    return low, False


def _child_slot(keys: List[object], key: object) -> int:
    """Route ``key`` to a child: equal keys go right of their separator."""
    position, exact = _search(keys, key)
    return position + 1 if exact else position


class BTreeIndex:
    """Operations on one B+tree, bound to a transaction."""

    def __init__(self, txn, root_oid: int, order: int) -> None:
        if order < 4:
            raise CollectionStoreError("B+tree order must be at least 4")
        self.txn = txn
        self.root_oid = root_oid
        self.order = order

    # -- lifecycle ---------------------------------------------------------------

    @classmethod
    def create(cls, txn, order: int) -> int:
        """Create an empty tree; return the (stable) root object id."""
        return txn.insert(BTreeNode(is_leaf=True))

    def destroy(self) -> None:
        """Remove every node of the tree, including the root."""
        for oid in self._all_node_oids():
            self.txn.remove(oid)

    def _all_node_oids(self) -> List[int]:
        oids: List[int] = []
        stack = [self.root_oid]
        while stack:
            oid = stack.pop()
            oids.append(oid)
            node = self._read(oid)
            if not node.is_leaf:
                stack.extend(node.children)
        return oids

    # -- node access -----------------------------------------------------------------

    def _read(self, oid: int) -> BTreeNode:
        return self.txn.open_readonly(oid, BTreeNode).deref()

    def _write(self, oid: int) -> BTreeNode:
        return self.txn.open_writable(oid, BTreeNode).deref()

    # -- queries -----------------------------------------------------------------------

    def lookup(self, key: object) -> List[int]:
        """Object ids stored under ``key`` (empty list when absent)."""
        node = self._read(self.root_oid)
        while not node.is_leaf:
            node = self._read(node.children[_child_slot(node.keys, key)])
        position, exact = _search(node.keys, key)
        return list(node.postings[position]) if exact else []

    def scan(self) -> Iterator[Tuple[object, int]]:
        """Yield ``(key, oid)`` in ascending key order."""
        yield from self.range(None, None)

    def range(
        self, low: Optional[object], high: Optional[object]
    ) -> Iterator[Tuple[object, int]]:
        """Yield ``(key, oid)`` for keys in the inclusive range [low, high]."""
        node = self._read(self.root_oid)
        while not node.is_leaf:
            slot = 0 if low is None else _child_slot(node.keys, low)
            node = self._read(node.children[slot])
        while True:
            for position, key in enumerate(node.keys):
                if low is not None and compare_keys(key, low) < 0:
                    continue
                if high is not None and compare_keys(key, high) > 0:
                    return
                for oid in node.postings[position]:
                    yield key, oid
            if node.next_leaf is None:
                return
            node = self._read(node.next_leaf)

    # -- updates --------------------------------------------------------------------------

    def insert(self, key: object, oid: int, unique: bool) -> None:
        """Add ``(key, oid)``; raise :class:`DuplicateKeyError` if unique
        and the key is already present."""
        split = self._insert_into(self.root_oid, key, oid, unique, is_root=True)
        if split is not None:
            raise CollectionStoreError("root split must be absorbed in place")

    def _insert_into(
        self, node_oid: int, key: object, oid: int, unique: bool, is_root: bool
    ) -> Optional[Tuple[object, int]]:
        node = self._read(node_oid)
        if node.is_leaf:
            position, exact = _search(node.keys, key)
            if exact and unique:
                raise DuplicateKeyError(
                    f"duplicate key {key!r} in unique index", key=key
                )
            node = self._write(node_oid)
            if exact:
                if oid not in node.postings[position]:
                    node.postings[position].append(oid)
            else:
                node.keys.insert(position, key)
                node.postings.insert(position, [oid])
        else:
            slot = _child_slot(node.keys, key)
            split = self._insert_into(node.children[slot], key, oid, unique, False)
            if split is None:
                return None
            separator, new_oid = split
            node = self._write(node_oid)
            position, _ = _search(node.keys, separator)
            node.keys.insert(position, separator)
            node.children.insert(position + 1, new_oid)
        if len(node.keys) <= self.order:
            return None
        if is_root:
            self._split_root(node)
            return None
        return self._split(node)

    def _split(self, node: BTreeNode) -> Tuple[object, int]:
        """Split an overflowing non-root node; return (separator, new oid)."""
        mid = len(node.keys) // 2
        right = BTreeNode(is_leaf=node.is_leaf)
        if node.is_leaf:
            separator = node.keys[mid]
            right.keys = node.keys[mid:]
            right.postings = node.postings[mid:]
            node.keys = node.keys[:mid]
            node.postings = node.postings[:mid]
            right.next_leaf = node.next_leaf
            right_oid = self.txn.insert(right)
            node.next_leaf = right_oid
        else:
            separator = node.keys[mid]
            right.keys = node.keys[mid + 1:]
            right.children = node.children[mid + 1:]
            node.keys = node.keys[:mid]
            node.children = node.children[:mid + 1]
            right_oid = self.txn.insert(right)
        return separator, right_oid

    def _split_root(self, root: BTreeNode) -> None:
        """Split the root in place, keeping its object id stable."""
        left = BTreeNode(is_leaf=root.is_leaf)
        mid = len(root.keys) // 2
        if root.is_leaf:
            separator = root.keys[mid]
            right = BTreeNode(is_leaf=True)
            right.keys = root.keys[mid:]
            right.postings = root.postings[mid:]
            right.next_leaf = root.next_leaf
            left.keys = root.keys[:mid]
            left.postings = root.postings[:mid]
            right_oid = self.txn.insert(right)
            left.next_leaf = right_oid
            left_oid = self.txn.insert(left)
        else:
            separator = root.keys[mid]
            right = BTreeNode(is_leaf=False)
            right.keys = root.keys[mid + 1:]
            right.children = root.children[mid + 1:]
            left.keys = root.keys[:mid]
            left.children = root.children[:mid + 1]
            right_oid = self.txn.insert(right)
            left_oid = self.txn.insert(left)
        root = self._write(self.root_oid)
        root.is_leaf = False
        root.keys = [separator]
        root.children = [left_oid, right_oid]
        root.postings = []
        root.next_leaf = None

    def remove(self, key: object, oid: int) -> bool:
        """Drop ``(key, oid)``; return whether the pair was present."""
        node_oid = self.root_oid
        node = self._read(node_oid)
        while not node.is_leaf:
            node_oid = node.children[_child_slot(node.keys, key)]
            node = self._read(node_oid)
        position, exact = _search(node.keys, key)
        if not exact:
            return False
        if oid not in node.postings[position]:
            return False
        node = self._write(node_oid)
        node.postings[position].remove(oid)
        if not node.postings[position]:
            del node.keys[position]
            del node.postings[position]
        return True
