"""CTransaction: the transaction type collection applications use.

Unlike the object store's :class:`Transaction`, a :class:`CTransaction`
does not expose methods to directly create, update, or delete objects —
the paper's constraint 1: writable references to collection objects can
only be obtained by dereferencing an iterator, which is what lets the
collection store guarantee iterator insensitivity.  What it does expose
is the Figure 5 interface: create / read / write / remove named
collections, plus commit and abort.
"""

from __future__ import annotations

from typing import Dict, List

from repro.collectionstore.collection import Collection, CollectionHandle
from repro.collectionstore.indexer import Indexer
from repro.collectionstore.iterators import CollectionIterator
from repro.errors import CollectionStoreError, IteratorStateError

__all__ = ["CTransaction"]


class CTransaction:
    """One transaction over named collections (Figure 5 of the paper)."""

    def __init__(self, store) -> None:
        self.store = store
        self._txn = store.object_store.transaction()
        self._open_iterators: Dict[int, List[CollectionIterator]] = {}

    @property
    def active(self) -> bool:
        return self._txn.active

    # ------------------------------------------------------------------
    # Collection lifecycle (Figure 5)
    # ------------------------------------------------------------------

    def create_collection(self, name: str, indexer: Indexer) -> CollectionHandle:
        """Create a new named collection with one initial index."""
        if self._txn.lookup_name(name) is not None:
            raise CollectionStoreError(f"collection {name!r} already exists")
        self.store.register_indexer(indexer)
        collection = Collection(indexer.schema_class.class_id)
        oid = self._txn.insert(collection)
        self._txn.bind_name(name, oid)
        handle = CollectionHandle(self, name, oid, writable=True)
        root_oid = handle._create_root(indexer)
        from repro.collectionstore.indexer import IndexDescriptor

        collection.indexes.append(
            IndexDescriptor(
                name=indexer.name,
                kind=indexer.kind,
                unique=indexer.unique,
                root_oid=root_oid,
            )
        )
        return handle

    def read_collection(self, name: str) -> CollectionHandle:
        """Open an existing collection read-only."""
        return self._open_collection(name, writable=False)

    def write_collection(self, name: str) -> CollectionHandle:
        """Open an existing collection for modification."""
        return self._open_collection(name, writable=True)

    def _open_collection(self, name: str, writable: bool) -> CollectionHandle:
        oid = self._txn.lookup_name(name)
        if oid is None:
            raise CollectionStoreError(f"no collection named {name!r}")
        return CollectionHandle(self, name, oid, writable=writable)

    def remove_collection(self, name: str) -> None:
        """Drop a collection along with every object it contains."""
        handle = self.write_collection(name)
        if self._open_iterators.get(handle.oid):
            raise IteratorStateError(
                f"collection {name!r} has open iterators; close them first"
            )
        for oid in handle._member_oids():
            self._txn.remove(oid)
        for descriptor in list(handle.collection.indexes):
            handle._impl(descriptor).destroy()
        handle.collection.indexes.clear()
        self._txn.remove(handle.oid)
        self._txn.unbind_name(name)

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------

    @property
    def object_transaction(self):
        """The inner object transaction (2PC prepare needs raw access)."""
        return self._txn

    def materialize(self):
        """Chunk-level effect of this transaction; see
        :meth:`repro.objectstore.transaction.Transaction.materialize`.
        Open iterators must be closed first — their deferred index
        maintenance is part of the write set."""
        still_open = sum(len(its) for its in self._open_iterators.values())
        if still_open:
            raise IteratorStateError(
                f"{still_open} iterator(s) still open at prepare; close "
                "them to apply their deferred index updates"
            )
        return self._txn.materialize()

    def commit(self, durable: bool = True) -> None:
        """Commit; every iterator must be closed first (its close applies
        the deferred index maintenance and may raise)."""
        still_open = [
            iterator
            for iterators in self._open_iterators.values()
            for iterator in iterators
        ]
        if still_open:
            raise IteratorStateError(
                f"{len(still_open)} iterator(s) still open at commit; close "
                "them to apply their deferred index updates"
            )
        self._txn.commit(durable=durable)

    def abort(self) -> None:
        """Abort; open iterators are abandoned along with their updates."""
        for iterators in list(self._open_iterators.values()):
            for iterator in list(iterators):
                iterator.abandon()
        self._open_iterators.clear()
        self._txn.abort()

    def __enter__(self) -> "CTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.active:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()

    # ------------------------------------------------------------------
    # Iterator registry (constraint 2 of section 5.2.2)
    # ------------------------------------------------------------------

    def _open_iterator(
        self, handle: CollectionHandle, oids: List[int]
    ) -> CollectionIterator:
        iterator = CollectionIterator(self, handle, oids)
        self._open_iterators.setdefault(handle.oid, []).append(iterator)
        return iterator

    def _iterator_closed(self, iterator: CollectionIterator) -> None:
        iterators = self._open_iterators.get(iterator.handle.oid)
        if iterators and iterator in iterators:
            iterators.remove(iterator)
            if not iterators:
                del self._open_iterators[iterator.handle.oid]

    def _assert_sole_iterator(self, iterator: CollectionIterator) -> None:
        others = [
            other
            for other in self._open_iterators.get(iterator.handle.oid, [])
            if other is not iterator
        ]
        if others:
            raise IteratorStateError(
                "another iterator on the same collection is open; writable "
                "dereference requires exclusivity (insensitivity constraint)"
            )
