"""Persistent dynamic hash table (Larson linear hashing, paper ref [20]).

The table grows one bucket at a time: a *split pointer* sweeps across the
buckets of the current level; when the load factor exceeds the configured
maximum, the bucket at the split pointer is split by rehashing its
entries under the next level's address function.  There is no big-bang
rehash, which is why the paper picks it for an embedded store.

Addressing: with ``N`` initial buckets at level ``L``, a key hashing to
``h`` lives in bucket ``h mod N*2^L``, unless that bucket is behind the
split pointer, in which case ``h mod N*2^(L+1)`` applies.

Buckets overflow into chained bucket objects.  Exact-match and scan
queries are supported; range queries are not (use a B+tree index).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.collectionstore.keys import compare_keys, decode_key, encode_key, hash_key
from repro.errors import CollectionStoreError, DuplicateKeyError
from repro.objectstore.encoding import BufferReader, BufferWriter
from repro.objectstore.persistent import Persistent

__all__ = ["HashDirectory", "HashBucket", "HashIndex"]


class HashDirectory(Persistent):
    """Root object of one hash index: addressing state + bucket ids."""

    class_id = "tdb.hash.dir"

    def __init__(self, initial_buckets: int = 8) -> None:
        self.initial_buckets = initial_buckets
        self.level = 0
        self.split_pointer = 0
        self.bucket_oids: List[int] = []
        self.entry_count = 0

    def pickle(self) -> bytes:
        writer = BufferWriter()
        writer.write_uint(self.initial_buckets)
        writer.write_uint(self.level)
        writer.write_uint(self.split_pointer)
        writer.write_uint_list(self.bucket_oids)
        writer.write_uint(self.entry_count)
        return writer.getvalue()

    @classmethod
    def unpickle(cls, data: bytes) -> "HashDirectory":
        reader = BufferReader(data)
        directory = cls(reader.read_uint())
        directory.level = reader.read_uint()
        directory.split_pointer = reader.read_uint()
        directory.bucket_oids = reader.read_uint_list()
        directory.entry_count = reader.read_uint()
        reader.expect_end()
        return directory

    def cache_charge(self) -> int:
        return 128 + 16 * len(self.bucket_oids)


class HashBucket(Persistent):
    """One bucket: (key, oid) entries plus an optional overflow chain."""

    class_id = "tdb.hash.bucket"

    def __init__(self) -> None:
        self.entries: List[Tuple[object, int]] = []
        self.overflow: Optional[int] = None

    def pickle(self) -> bytes:
        writer = BufferWriter()
        writer.write_list(
            self.entries,
            lambda w, entry: (
                w.write_bytes(encode_key(entry[0])),
                w.write_uint(entry[1]),
            ),
        )
        writer.write_optional_uint(self.overflow)
        return writer.getvalue()

    @classmethod
    def unpickle(cls, data: bytes) -> "HashBucket":
        reader = BufferReader(data)
        bucket = cls()
        bucket.entries = reader.read_list(
            lambda r: (decode_key(r.read_bytes()), r.read_uint())
        )
        bucket.overflow = reader.read_optional_uint()
        reader.expect_end()
        return bucket

    def cache_charge(self) -> int:
        return 96 + 64 * len(self.entries)


class HashIndex:
    """Operations on one linear-hashing table, bound to a transaction."""

    def __init__(
        self,
        txn,
        root_oid: int,
        initial_buckets: int = 8,
        max_load: float = 2.0,
        bucket_capacity: int = 16,
    ) -> None:
        self.txn = txn
        self.root_oid = root_oid
        self.max_load = max_load
        self.bucket_capacity = bucket_capacity

    # -- lifecycle ---------------------------------------------------------------

    @classmethod
    def create(cls, txn, initial_buckets: int = 8) -> int:
        """Create an empty table; return the directory's object id."""
        if initial_buckets < 1:
            raise CollectionStoreError("hash index needs at least one bucket")
        directory = HashDirectory(initial_buckets)
        directory.bucket_oids = [
            txn.insert(HashBucket()) for _ in range(initial_buckets)
        ]
        return txn.insert(directory)

    def destroy(self) -> None:
        directory = self._read_dir()
        for bucket_oid in directory.bucket_oids:
            oid: Optional[int] = bucket_oid
            while oid is not None:
                bucket = self.txn.open_readonly(oid, HashBucket).deref()
                self.txn.remove(oid)
                oid = bucket.overflow
        self.txn.remove(self.root_oid)

    # -- plumbing ------------------------------------------------------------------

    def _read_dir(self) -> HashDirectory:
        return self.txn.open_readonly(self.root_oid, HashDirectory).deref()

    def _write_dir(self) -> HashDirectory:
        return self.txn.open_writable(self.root_oid, HashDirectory).deref()

    @staticmethod
    def _address(directory: HashDirectory, key: object) -> int:
        h = hash_key(key)
        modulus = directory.initial_buckets * (2 ** directory.level)
        slot = h % modulus
        if slot < directory.split_pointer:
            slot = h % (modulus * 2)
        return slot

    def _chain(self, head_oid: int) -> Iterator[Tuple[int, HashBucket]]:
        oid: Optional[int] = head_oid
        while oid is not None:
            bucket = self.txn.open_readonly(oid, HashBucket).deref()
            yield oid, bucket
            oid = bucket.overflow

    # -- queries ----------------------------------------------------------------------

    def lookup(self, key: object) -> List[int]:
        directory = self._read_dir()
        head = directory.bucket_oids[self._address(directory, key)]
        found = []
        for _oid, bucket in self._chain(head):
            for entry_key, oid in bucket.entries:
                if compare_keys(entry_key, key) == 0:
                    found.append(oid)
        return found

    def scan(self) -> Iterator[Tuple[object, int]]:
        """Yield every (key, oid); hash order, not key order."""
        directory = self._read_dir()
        for head in list(directory.bucket_oids):
            for _oid, bucket in self._chain(head):
                yield from list(bucket.entries)

    # -- updates --------------------------------------------------------------------------

    def insert(self, key: object, oid: int, unique: bool) -> None:
        directory = self._read_dir()
        if unique and self.lookup(key):
            raise DuplicateKeyError(
                f"duplicate key {key!r} in unique index", key=key
            )
        head = directory.bucket_oids[self._address(directory, key)]
        target_oid = None
        last_oid = None
        for bucket_oid, bucket in self._chain(head):
            last_oid = bucket_oid
            if len(bucket.entries) < self.bucket_capacity:
                target_oid = bucket_oid
                break
        if target_oid is None:
            overflow_oid = self.txn.insert(HashBucket())
            tail = self.txn.open_writable(last_oid, HashBucket).deref()
            tail.overflow = overflow_oid
            target_oid = overflow_oid
        bucket = self.txn.open_writable(target_oid, HashBucket).deref()
        bucket.entries.append((key, oid))
        directory = self._write_dir()
        directory.entry_count += 1
        if directory.entry_count / len(directory.bucket_oids) > self.max_load:
            self._split(directory)

    def remove(self, key: object, oid: int) -> bool:
        directory = self._read_dir()
        head = directory.bucket_oids[self._address(directory, key)]
        for bucket_oid, bucket in self._chain(head):
            for index, (entry_key, entry_oid) in enumerate(bucket.entries):
                if entry_oid == oid and compare_keys(entry_key, key) == 0:
                    writable = self.txn.open_writable(bucket_oid, HashBucket).deref()
                    del writable.entries[index]
                    self._write_dir().entry_count -= 1
                    return True
        return False

    # -- growth -----------------------------------------------------------------------------

    def _split(self, directory: HashDirectory) -> None:
        """Split the bucket at the split pointer (one step of growth)."""
        victim_slot = directory.split_pointer
        modulus = directory.initial_buckets * (2 ** directory.level)
        image_slot = victim_slot + modulus

        # Collect every entry of the victim chain, then rewrite the chain
        # as a single bucket and distribute under the doubled modulus.
        entries: List[Tuple[object, int]] = []
        chain_oids = []
        for bucket_oid, bucket in self._chain(directory.bucket_oids[victim_slot]):
            chain_oids.append(bucket_oid)
            entries.extend(bucket.entries)
        head = self.txn.open_writable(chain_oids[0], HashBucket).deref()
        head.entries = []
        head.overflow = None
        for extra_oid in chain_oids[1:]:
            self.txn.remove(extra_oid)

        image_head = self.txn.insert(HashBucket())
        directory.bucket_oids.append(image_head)
        if len(directory.bucket_oids) != image_slot + 1:
            raise CollectionStoreError(
                "hash directory grew out of order during split"
            )
        directory.split_pointer += 1
        if directory.split_pointer == modulus:
            directory.split_pointer = 0
            directory.level += 1
        directory.entry_count -= len(entries)
        for key, oid in entries:
            self._insert_without_split(directory, key, oid)

    def _insert_without_split(
        self, directory: HashDirectory, key: object, oid: int
    ) -> None:
        """Re-insert during a split (no load check, no recursion)."""
        head = directory.bucket_oids[self._address(directory, key)]
        target_oid = None
        last_oid = None
        for bucket_oid, bucket in self._chain(head):
            last_oid = bucket_oid
            if len(bucket.entries) < self.bucket_capacity:
                target_oid = bucket_oid
                break
        if target_oid is None:
            overflow_oid = self.txn.insert(HashBucket())
            tail = self.txn.open_writable(last_oid, HashBucket).deref()
            tail.overflow = overflow_oid
            target_oid = overflow_oid
        bucket = self.txn.open_writable(target_oid, HashBucket).deref()
        bucket.entries.append((key, oid))
        directory.entry_count += 1
