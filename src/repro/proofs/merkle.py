"""Merkle inclusion and non-membership proofs over the location map.

The location map *is* the Merkle tree (its locators carry the digest of
the bytes they point at), so a proof is simply the path of map-node
payloads from the root to the leaf covering a chunk id, plus — for an
inclusion proof — the chunk payload itself.  All payloads travel as the
*ciphertext* bytes stored in the log: locator digests are computed over
ciphertext, so the path hashes up to the root digest a signed commit
head names without the server revealing anything a holder of the device
secret could not already read.  This matches TDB's trust model — the
verifying client shares the device secret (it is the device), while the
storage and the network in between remain untrusted.

A *non-membership* proof for chunk id ``c`` is the same walk, stopped at
the first node whose slot for ``c`` is empty: the verifier recomputes
the slot from ``c`` and the node's position and sees the authenticated
absence (Bauer-style keyed hash tree "no such entry" replies).  Ids
beyond the tree's capacity are absent with an empty path, and an empty
root proves everything absent.

Verification needs only derived keys and the store's configuration
(fanout, cipher, hash) — both sides of the trust boundary already hold
those; neither the proof nor the server is trusted for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.chunkstore.format import Locator
from repro.chunkstore.locmap import MapNode
from repro.errors import ChunkStoreError, InvalidProofError, TDBError

from repro.proofs.headlog import SignedHead

__all__ = ["ChunkProof", "build_proof", "verify_proof"]


@dataclass(frozen=True)
class ChunkProof:
    """A Merkle path for one chunk id against one commit head.

    ``nodes`` holds the ciphertext map-node payloads root-first;
    ``payload`` the ciphertext chunk payload (inclusion only).  A
    non-membership proof ends at the node whose slot is empty (or is
    entirely empty for out-of-capacity ids and empty trees).
    """

    chunk_id: int
    depth: int
    present: bool
    nodes: List[bytes]
    payload: Optional[bytes]


def _slot_at(chunk_id: int, level: int, fanout: int) -> int:
    return (chunk_id // (fanout ** level)) % fanout


def build_proof(
    chunk_id: int,
    depth: int,
    fanout: int,
    hash_size: int,
    root_locator: Optional[Locator],
    read_ciphertext: Callable[[Locator], bytes],
    decrypt: Callable[[bytes], bytes],
) -> ChunkProof:
    """Walk the tree named by ``root_locator`` and collect the path.

    ``read_ciphertext`` must return the digest-verified ciphertext a
    locator points at (the store's raw-payload read); ``decrypt`` is the
    store's payload cipher.  The walk mirrors ``LocationMap.lookup``.
    """
    if chunk_id < 0:
        raise ChunkStoreError("chunk ids are non-negative")
    if root_locator is None or chunk_id >= fanout ** depth:
        return ChunkProof(chunk_id, depth, False, [], None)
    nodes: List[bytes] = []
    locator = root_locator
    level = depth - 1
    index = 0
    while True:
        ciphertext = read_ciphertext(locator)
        nodes.append(ciphertext)
        node = MapNode.deserialize(decrypt(ciphertext), hash_size)
        if (node.level, node.index) != (level, index):
            raise ChunkStoreError(
                f"map node identity mismatch: stored ({node.level},"
                f" {node.index}), expected ({level}, {index})"
            )
        if level == 0:
            break
        slot = _slot_at(chunk_id, level, fanout)
        child = node.children.get(slot)
        if child is None:
            return ChunkProof(chunk_id, depth, False, nodes, None)
        locator = child
        index = index * fanout + slot
        level -= 1
    leaf_locator = node.children.get(chunk_id % fanout)
    if leaf_locator is None:
        return ChunkProof(chunk_id, depth, False, nodes, None)
    return ChunkProof(chunk_id, depth, True, nodes, read_ciphertext(leaf_locator))


def verify_proof(
    proof: ChunkProof,
    head: SignedHead,
    fanout: int,
    hash_size: int,
    digest: Callable[[bytes], bytes],
    decrypt: Callable[[bytes], bytes],
) -> Optional[bytes]:
    """Verify ``proof`` against an already-authenticated ``head``.

    Returns the *plaintext* chunk payload for an inclusion proof, or
    ``None`` for a verified non-membership proof.  Every deviation —
    digest mismatch, wrong node identity, wrong path shape, extra or
    missing nodes, a present flag the path does not support — raises
    :class:`InvalidProofError`.  Nothing in ``proof`` is trusted; the
    fanout, hash, and cipher come from the verifier's own configuration
    and the depth and root digest from the signed head.
    """
    depth = head.depth
    if proof.depth != depth:
        raise InvalidProofError(
            f"proof claims depth {proof.depth}, signed head says {depth}"
        )
    if proof.chunk_id < 0:
        raise InvalidProofError("proof covers a negative chunk id")

    def absent(consumed: int) -> None:
        if proof.present:
            raise InvalidProofError(
                "proof claims presence but its path proves absence"
            )
        if proof.payload is not None:
            raise InvalidProofError("non-membership proof carries a payload")
        if len(proof.nodes) != consumed:
            raise InvalidProofError(
                f"non-membership proof has {len(proof.nodes)} nodes, "
                f"path needs {consumed}"
            )

    if head.empty_root:
        absent(0)
        return None
    if proof.chunk_id >= fanout ** depth:
        absent(0)
        return None
    if not proof.nodes:
        raise InvalidProofError("proof path is empty but the tree is not")
    if digest(proof.nodes[0]) != head.root_digest:
        raise InvalidProofError(
            "proof root does not hash to the signed head's root digest"
        )
    level = depth - 1
    index = 0
    position = 0
    while True:
        try:
            node = MapNode.deserialize(decrypt(proof.nodes[position]), hash_size)
        except TDBError as exc:
            raise InvalidProofError(f"undecodable proof node: {exc}") from exc
        if (node.level, node.index) != (level, index):
            raise InvalidProofError(
                f"proof node claims identity ({node.level}, {node.index}), "
                f"path expects ({level}, {index})"
            )
        if level == 0:
            break
        slot = _slot_at(proof.chunk_id, level, fanout)
        child = node.children.get(slot)
        if child is None:
            absent(position + 1)
            return None
        position += 1
        if position >= len(proof.nodes):
            raise InvalidProofError("proof path ends before the leaf")
        ciphertext = proof.nodes[position]
        if len(ciphertext) != child.length or digest(ciphertext) != child.hash_value:
            raise InvalidProofError(
                f"proof node at level {level - 1} does not match its "
                "parent's locator digest"
            )
        index = index * fanout + slot
        level -= 1
    leaf_locator = node.children.get(proof.chunk_id % fanout)
    if leaf_locator is None:
        absent(position + 1)
        return None
    if not proof.present:
        raise InvalidProofError(
            "proof claims absence but the leaf maps the chunk id"
        )
    if len(proof.nodes) != position + 1:
        raise InvalidProofError("inclusion proof carries extra nodes")
    if proof.payload is None:
        raise InvalidProofError("inclusion proof is missing its payload")
    if (
        len(proof.payload) != leaf_locator.length
        or digest(proof.payload) != leaf_locator.hash_value
    ):
        raise InvalidProofError(
            f"payload for chunk {proof.chunk_id} does not match the "
            "authenticated leaf digest"
        )
    try:
        return decrypt(proof.payload)
    except TDBError as exc:
        raise InvalidProofError(f"undecryptable proof payload: {exc}") from exc
