"""Server-side proof generation against pinned snapshots.

The service answers four questions — inclusion proof, non-membership
proof, current signed head, and head-log consistency range — for one
:class:`~repro.chunkstore.store.ChunkStore`.

Proofs must be *stable*: the cleaner relocates payloads and concurrent
commits advance the root, so walking the live tree would hand clients
paths that stop verifying mid-flight.  On a primary the service anchors
itself with the same pin machinery replication shipping uses
(:meth:`ChunkStore.begin_shipment`): a forced checkpoint plus a pinned
snapshot freezes a ``(generation, root, depth)`` triple whose segments
the cleaner will not touch, and — because the checkpoint appended a
head — the log's tip signs exactly that root.  The anchor is re-taken
only when commits actually advanced the store, so back-to-back proof
requests reuse one pin.

On a read-only store (replica) nothing moves between applier installs,
so the service reads the live root directly; it refuses to serve while
the mirrored head log has not caught up to the installed image.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

from repro.errors import ProofError
from repro.proofs.headlog import SignedHead
from repro.proofs.merkle import ChunkProof, build_proof

__all__ = ["ProofService"]


class ProofService:
    """Generates proofs and serves the transparency log for one store."""

    def __init__(self, store) -> None:
        if not store.secure:
            raise ProofError(
                "proofs need the secure profile: an insecure store has "
                "no digests to prove against"
            )
        self.store = store
        self._lock = threading.Lock()
        self._anchor = None  # primary mode: ShipmentAnchor owning a pin
        self.proofs_served = 0
        self.absences_served = 0
        self.anchors_created = 0
        self.heads_served = 0
        self.consistency_served = 0
        self._closed = False

    # -- anchoring ---------------------------------------------------------

    def _anchored_state(self) -> Tuple[SignedHead, object, int]:
        """``(signed head, root locator, depth)`` of a stable tree.

        Primary: refresh the shipment anchor when the store moved.
        Replica / read-only: the live root is already frozen between
        applier installs; require the mirrored log to agree with it.
        """
        store = self.store
        if store.read_only or store.salvage:
            with store._lock:
                log = store.transparency
                tip = log.tip() if log is not None else None
                if tip is None or tip.generation != store._generation:
                    raise ProofError(
                        "replica head log has not caught up with the "
                        "installed image; retry after the next sync"
                    )
                return tip, store.location_map.root_locator, store.location_map.depth
        with self._lock:
            if self._closed:
                raise ProofError("proof service is closed")
            anchor = self._anchor
            current = (
                anchor.generation if anchor is not None else None,
                anchor.commit_seqno if anchor is not None else None,
            )
            fresh = store.begin_shipment(*current)
            if fresh is not None:
                if anchor is not None:
                    store.release_snapshot(anchor.snapshot)
                self._anchor = anchor = fresh
                self.anchors_created += 1
            # Concurrent commits may have checkpointed again since the
            # anchor was taken; the log is append-only, so the entry for
            # the anchored generation is still there and still signs
            # exactly the pinned root.
            head = store.transparency.entry_for_generation(anchor.generation)
            if head is None:
                raise ProofError(
                    "head log has no entry for the anchored generation"
                )
            snap_map = anchor.snapshot.map
            return head, snap_map.root_locator, snap_map.depth

    # -- proofs ------------------------------------------------------------

    def prove(self, chunk_id: int) -> Tuple[SignedHead, ChunkProof]:
        """Inclusion or non-membership proof for ``chunk_id``."""
        head, root, depth = self._anchored_state()
        proof = build_proof(
            chunk_id=chunk_id,
            depth=depth,
            fanout=self.store.config.map_fanout,
            hash_size=self.store.hash_size,
            root_locator=root,
            read_ciphertext=self.store.read_payload_raw,
            decrypt=self.store.cipher.decrypt,
        )
        with self._lock:
            if proof.present:
                self.proofs_served += 1
            else:
                self.absences_served += 1
        return head, proof

    # -- transparency log --------------------------------------------------

    def head(self) -> Tuple[SignedHead, int]:
        """The newest signed head and the log length.

        Serves the log tip directly — the tip always signs the last
        checkpointed state, so no pin is needed, and (unlike the
        anchored path) this never forces a checkpoint: the replica
        applier polls it on every sync and must not advance the
        primary's generation by doing so.
        """
        store = self.store
        log = store.transparency
        if log is None:
            raise ProofError("store has no transparency log")
        if store.read_only or store.salvage:
            with store._lock:
                tip = log.tip()
                if tip is None or tip.generation != store._generation:
                    raise ProofError(
                        "replica head log has not caught up with the "
                        "installed image; retry after the next sync"
                    )
        else:
            tip = log.tip()
            if tip is None:
                raise ProofError("head log is empty")
        with self._lock:
            self.heads_served += 1
        return tip, len(log)

    def consistency(self, from_index: int, to_index: int) -> List[bytes]:
        """Raw head entries ``from_index..to_index`` inclusive."""
        log = self.store.transparency
        if log is None:
            raise ProofError("store has no transparency log")
        try:
            entries = log.entries_raw(from_index, to_index)
        except Exception as exc:
            raise ProofError(str(exc)) from exc
        with self._lock:
            self.consistency_served += 1
        return entries

    # -- lifecycle ---------------------------------------------------------

    def stats_snapshot(self) -> dict:
        with self._lock:
            return {
                "proofs_served": self.proofs_served,
                "absences_served": self.absences_served,
                "anchors_created": self.anchors_created,
                "heads_served": self.heads_served,
                "consistency_served": self.consistency_served,
            }

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            anchor, self._anchor = self._anchor, None
        if anchor is not None:
            try:
                self.store.release_snapshot(anchor.snapshot)
            except Exception:
                pass
