"""The thin verifying client: trust the math, not the server.

:class:`VerifyingClient` wraps a :class:`~repro.server.client.TdbClient`
connection with end-to-end verification.  It holds the device secret
and the store configuration (fanout, hash, cipher) — in TDB's model the
client *is* the trusted device; the server, the storage under it, and
the network in between are not.

Every response that names a signed commit head goes through one
reconciliation step against the client's *pinned* head (the newest it
has ever verified):

* first contact — fetch the full head chain and verify it from the
  per-database genesis before trusting anything;
* same index — the raw bytes must match the pin exactly, anything else
  is equivocation (:class:`~repro.errors.ForkDetectedError`);
* newer index — fetch the consistency range from the pin, verify the
  chain extends it, advance the pin;
* older index — the server must *prove ancestry* by producing the chain
  from that head up to the pin; a server that cannot (because its log
  was truncated to an older state) is rolled back
  (:class:`~repro.errors.RollbackDetectedError`).

Reads and absence checks then verify a Merkle proof against the
reconciled head (:mod:`repro.proofs.merkle`), so a tampered payload,
a forged absence, or a stale tree all fail with a typed error.
"""

from __future__ import annotations

import base64
from typing import List, Optional

from repro.config import ChunkStoreConfig
from repro.crypto import create_hash_engine, create_payload_cipher
from repro.errors import (
    ChunkNotFoundError,
    ForkDetectedError,
    InvalidProofError,
    ProofError,
    RollbackDetectedError,
    TamperDetectedError,
)
from repro.server.client import TdbClient

from repro.proofs.headlog import HeadVerifier, SignedHead
from repro.proofs.merkle import ChunkProof, verify_proof

__all__ = ["VerifyingClient"]


class VerifyingClient:
    """Verified reads, absence checks, and head auditing over the wire."""

    def __init__(
        self,
        host: str,
        port: int,
        secret_store,
        config: Optional[ChunkStoreConfig] = None,
        client: Optional[TdbClient] = None,
        **client_kwargs,
    ) -> None:
        self.config = config or ChunkStoreConfig()
        profile = self.config.security
        if not profile.enabled:
            raise ProofError(
                "a verifying client needs the secure profile's digests"
            )
        self.secret_store = secret_store
        self.client = client or TdbClient(host, port, **client_kwargs)
        self._hash_engine = create_hash_engine(profile.hash_name)
        self._cipher = create_payload_cipher(
            profile.cipher_name,
            secret_store.derive_key("tdb-chunk-encryption", 32),
            kernel=profile.resolved_kernel,
        )
        self.db_uuid: Optional[bytes] = None  # trust-on-first-use identity
        self._verifier: Optional[HeadVerifier] = None
        self.pinned: Optional[SignedHead] = None
        self.heads_verified = 0
        self.proofs_verified = 0

    # -- identity and head reconciliation ---------------------------------

    def _bind_identity(self, uuid_b64: str) -> HeadVerifier:
        uuid = base64.b64decode(uuid_b64)
        if self.db_uuid is None:
            self.db_uuid = uuid
            self._verifier = HeadVerifier(
                self.secret_store, uuid, self._hash_engine.digest_size
            )
        elif uuid != self.db_uuid:
            raise ForkDetectedError(
                "server changed its database identity mid-session"
            )
        return self._verifier

    def _consistency(self, lo: int, hi: int) -> List[bytes]:
        reply = self.client.call("log.consistency", from_index=lo, to_index=hi)
        self._bind_identity(reply["uuid"])
        return [base64.b64decode(entry) for entry in reply["entries"]]

    def _reconcile(self, verifier: HeadVerifier, raw: bytes) -> SignedHead:
        """Verify a served head and place it on the pinned chain."""
        try:
            head = verifier.verify_signature(raw)
        except TamperDetectedError as exc:
            raise InvalidProofError(f"served head does not verify: {exc}") from exc
        pin = self.pinned
        try:
            if pin is None:
                chain = verifier.verify_chain(
                    self._consistency(0, head.index), after=None
                )
                if not chain or chain[-1].raw != raw:
                    raise InvalidProofError(
                        "head chain from genesis does not end at the "
                        "served head"
                    )
                self.pinned = head
            elif head.index == pin.index:
                if raw != pin.raw:
                    raise ForkDetectedError(
                        f"server signed a different head at index "
                        f"{head.index} than the one already verified"
                    )
            elif head.index > pin.index:
                entries = self._consistency(pin.index, head.index)
                if not entries or entries[0] != pin.raw:
                    raise ForkDetectedError(
                        "consistency range does not start at the pinned "
                        "head: the log was rewritten"
                    )
                chain = verifier.verify_chain(entries[1:], after=pin)
                if not chain or chain[-1].raw != raw:
                    raise InvalidProofError(
                        "consistency range does not end at the served head"
                    )
                self.pinned = head
            else:
                # Older head: the server must prove it is an ancestor of
                # the pin.  A rolled-back server has no such chain.
                try:
                    entries = self._consistency(head.index, pin.index)
                except ProofError as exc:
                    raise RollbackDetectedError(
                        f"server presented head #{head.index} below the "
                        f"pinned #{pin.index} and cannot produce the "
                        f"chain between them: {exc}"
                    ) from exc
                if not entries or entries[0] != raw:
                    raise ForkDetectedError(
                        f"server's head #{head.index} is not the one on "
                        "the pinned chain"
                    )
                chain = verifier.verify_chain(entries[1:], after=head)
                if not chain or chain[-1].raw != pin.raw:
                    raise RollbackDetectedError(
                        "server's chain from its head does not reach the "
                        "pinned head: rollback"
                    )
        except TamperDetectedError as exc:
            raise InvalidProofError(f"head chain does not verify: {exc}") from exc
        self.heads_verified += 1
        return head

    # -- verified operations ----------------------------------------------

    def latest_head(self) -> SignedHead:
        """Fetch, verify, and pin the server's newest signed head."""
        reply = self.client.call("log.head")
        verifier = self._bind_identity(reply["uuid"])
        return self._reconcile(verifier, base64.b64decode(reply["head"]))

    def _verified_proof(self, verb: str, chunk_id: int):
        reply = self.client.call(verb, chunk_id=chunk_id)
        verifier = self._bind_identity(reply["uuid"])
        head = self._reconcile(verifier, base64.b64decode(reply["head"]))
        proof = ChunkProof(
            chunk_id=int(reply["chunk_id"]),
            depth=int(reply["depth"]),
            present=bool(reply["present"]),
            nodes=[base64.b64decode(node) for node in reply["nodes"]],
            payload=(
                base64.b64decode(reply["payload"])
                if reply["payload"] is not None
                else None
            ),
        )
        if proof.chunk_id != chunk_id:
            raise InvalidProofError(
                f"asked for chunk {chunk_id}, proof covers {proof.chunk_id}"
            )
        plaintext = verify_proof(
            proof,
            head,
            fanout=self.config.map_fanout,
            hash_size=self._hash_engine.digest_size,
            digest=self._hash_engine.digest,
            decrypt=self._cipher.decrypt,
        )
        self.proofs_verified += 1
        return head, proof, plaintext

    def verified_read(self, chunk_id: int) -> bytes:
        """Read a chunk with an end-to-end verified inclusion proof.

        Raises :class:`ChunkNotFoundError` only after a *verified*
        non-membership proof — an unproven "not found" is an error.
        """
        _, proof, plaintext = self._verified_proof("proof.read", chunk_id)
        if not proof.present:
            raise ChunkNotFoundError(
                f"chunk {chunk_id} verifiably absent at the signed head"
            )
        return plaintext

    def verified_absent(self, chunk_id: int) -> bool:
        """Whether ``chunk_id`` is verifiably absent at the signed head."""
        _, proof, _ = self._verified_proof("proof.absent", chunk_id)
        return not proof.present

    # -- auditing ----------------------------------------------------------

    def fetch_log(self) -> List[SignedHead]:
        """Fetch and verify the server's entire head chain from genesis."""
        head = self.latest_head()
        verifier = self._verifier
        chain = verifier.verify_chain(
            self._consistency(0, head.index), after=None
        )
        if not chain or chain[-1].raw != head.raw:
            raise InvalidProofError(
                "full head chain does not end at the served head"
            )
        return chain

    @staticmethod
    def compare_logs(
        ours: List[SignedHead], theirs: List[SignedHead]
    ) -> Optional[int]:
        """First index where two verified chains diverge (gossip check).

        Returns ``None`` when one chain is a prefix of the other —
        honest lag.  A divergence means the signer equivocated; callers
        raise :class:`ForkDetectedError` with the returned index.
        """
        for ours_head, theirs_head in zip(ours, theirs):
            if ours_head.raw != theirs_head.raw:
                return ours_head.index
        return None

    def close(self) -> None:
        self.client.close()

    def __enter__(self) -> "VerifyingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
