"""The transparency log: hash-chained, signed commit heads.

Every checkpoint appends one *signed commit head* to an append-only
``head.log`` file in the untrusted store.  A head binds
``(generation, commit seqno, counter, map depth, Merkle root digest)``
to the hash of the previous head, so the sequence of heads forms a
hash chain rooted in a per-database genesis value.  Publishing the
chain (or just its tip) lets clients, auditors, and replicas verify:

* **inclusion** — a chunk read proves up to the root digest a signed
  head names (:mod:`repro.proofs.merkle`),
* **append-only history** — a consistency proof between two heads is
  simply the chained entries between them; any fork or rewrite breaks
  a prev-hash link or a signature,
* **freshness** — a verifier that pins the newest head it has seen
  refuses any head whose index regresses (rollback) or that differs at
  a pinned index (fork / equivocation).

Signing is dual: every entry carries an HMAC-SHA256 tag under a key
derived from the device secret (always verifiable with the stdlib),
and additionally an Ed25519 signature when the ``cryptography``
package is importable — mirroring the native/fallback crypto-engine
ladder.  The Ed25519-present flag lives *inside* the MAC'd body, so
stripping the public-key signature breaks the MAC.  Scheme selection
follows ``REPRO_HEAD_SCHEME`` (``auto`` | ``ed25519`` | ``hmac``).

Crash model: appends go through ``UntrustedStore.append``, so a torn
append leaves a strict byte-prefix of one entry at the tail.  Loading
tolerates (and, on a writable open, truncates) such a torn tail; any
*full-length* entry that fails its MAC, its chain link, or its index
is tampering and raises :class:`~repro.errors.TamperDetectedError`.
Because the head is appended only after the master record reaches the
media, a log tip *newer* than the master's generation can never result
from a crash — the chunk store treats it as a rolled-back image.

This module must stay import-free of :mod:`repro.chunkstore` (the
store imports it).
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import os
import struct
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigError, TamperDetectedError

try:  # pragma: no cover - exercised via the CI uninstall job
    from cryptography.hazmat.primitives.asymmetric.ed25519 import (
        Ed25519PrivateKey as _Ed25519PrivateKey,
    )
    from cryptography.hazmat.primitives.serialization import (
        Encoding as _Encoding,
        PublicFormat as _PublicFormat,
    )
    from cryptography.exceptions import InvalidSignature as _InvalidSignature

    HAVE_ED25519 = True
except ImportError:  # pragma: no cover
    _Ed25519PrivateKey = _Encoding = _PublicFormat = None
    _InvalidSignature = None
    HAVE_ED25519 = False

__all__ = [
    "HAVE_ED25519",
    "HEAD_LOG_FILE",
    "HEAD_SCHEMES",
    "SignedHead",
    "HeadVerifier",
    "TransparencyLog",
    "resolve_head_scheme",
]

HEAD_LOG_FILE = "head.log"
HEAD_SCHEMES = ("auto", "ed25519", "hmac")

_HEADER_MAGIC = b"TDBHEADL"
_HEADER = struct.Struct(">8sBB16sB32s")  # magic, version, scheme, uuid, hash, pub
_HEADER_VERSION = 1
_SCHEME_BYTES = {"hmac": 0, "ed25519": 1}

_ENTRY_MAGIC = b"HD"
_ENTRY_HEAD = struct.Struct(">2sQQQQBB")  # magic, index, gen, seqno, counter, depth, flags
_MAC_SIZE = 32
_CHAIN_SIZE = 32
_ED_SIG_SIZE = 64

FLAG_ED25519 = 0x01
FLAG_EMPTY_ROOT = 0x02

_MAC_PURPOSE = "tdb-head-log-mac"
_ED_SEED_PURPOSE = "tdb-head-ed25519-seed"
_GENESIS_PREFIX = b"tdb-head-genesis"


def resolve_head_scheme(scheme: Optional[str] = None) -> str:
    """Resolve the signing scheme: explicit arg, env, or auto-detect."""
    if scheme is None:
        scheme = os.environ.get("REPRO_HEAD_SCHEME", "auto")
    if scheme not in HEAD_SCHEMES:
        raise ConfigError(
            f"unknown head-log scheme {scheme!r}; valid: {', '.join(HEAD_SCHEMES)}"
        )
    if scheme == "auto":
        return "ed25519" if HAVE_ED25519 else "hmac"
    if scheme == "ed25519" and not HAVE_ED25519:
        raise ConfigError(
            "head-log scheme 'ed25519' requires the cryptography package; "
            "install it or use 'auto'/'hmac'"
        )
    return scheme


def genesis_hash(db_uuid: bytes) -> bytes:
    """The chain anchor before the first head of database ``db_uuid``."""
    return hashlib.sha256(_GENESIS_PREFIX + db_uuid).digest()


def entry_hash(raw: bytes) -> bytes:
    """The chain link: hash of one full serialized entry."""
    return hashlib.sha256(raw).digest()


@dataclass(frozen=True)
class SignedHead:
    """One parsed (and, via :class:`HeadVerifier`, verified) commit head."""

    index: int
    generation: int
    seqno: int
    counter: int
    depth: int
    flags: int
    root_digest: bytes
    prev_hash: bytes
    raw: bytes

    @property
    def has_ed_signature(self) -> bool:
        return bool(self.flags & FLAG_ED25519)

    @property
    def empty_root(self) -> bool:
        return bool(self.flags & FLAG_EMPTY_ROOT)

    def describe(self) -> str:
        root = self.root_digest.hex()[:16] or "-"
        sig = "hmac+ed25519" if self.has_ed_signature else "hmac"
        return (
            f"head #{self.index}: generation {self.generation}, "
            f"seqno {self.seqno}, counter {self.counter}, root {root} [{sig}]"
        )


def _entry_length(flags: int, hash_size: int) -> int:
    length = _ENTRY_HEAD.size + hash_size + _CHAIN_SIZE + _MAC_SIZE
    if flags & FLAG_ED25519:
        length += _ED_SIG_SIZE
    return length


def _derive_ed_private(secret_store):
    seed = secret_store.derive_key(_ED_SEED_PURPOSE, 32)
    return _Ed25519PrivateKey.from_private_bytes(seed)


def derive_ed_public_bytes(secret_store) -> Optional[bytes]:
    """The raw Ed25519 public key for this device secret (None without
    the backend)."""
    if not HAVE_ED25519:
        return None
    return _derive_ed_private(secret_store).public_key().public_bytes(
        _Encoding.Raw, _PublicFormat.Raw
    )


class HeadVerifier:
    """Verifies entries and chains under one device secret + identity.

    Holds only derived keys, so it works for the store, the verifying
    client, the replica applier, and the offline audit tool alike.
    """

    def __init__(self, secret_store, db_uuid: bytes, hash_size: int) -> None:
        self.db_uuid = bytes(db_uuid)
        self.hash_size = hash_size
        self.mac_key = secret_store.derive_key(_MAC_PURPOSE, 32)
        self.ed_public = derive_ed_public_bytes(secret_store)

    def genesis(self) -> bytes:
        return genesis_hash(self.db_uuid)

    # -- single entries ----------------------------------------------------

    def parse_entry(self, raw: bytes) -> SignedHead:
        """Structural parse of one full entry (no authentication)."""
        try:
            magic, index, generation, seqno, counter, depth, flags = (
                _ENTRY_HEAD.unpack_from(raw, 0)
            )
        except struct.error as exc:
            raise TamperDetectedError(f"malformed head entry: {exc}") from exc
        if magic != _ENTRY_MAGIC:
            raise TamperDetectedError("head entry has a bad magic")
        if len(raw) != _entry_length(flags, self.hash_size):
            raise TamperDetectedError(
                f"head entry #{index} has {len(raw)} bytes, expected "
                f"{_entry_length(flags, self.hash_size)}"
            )
        offset = _ENTRY_HEAD.size
        root_digest = raw[offset:offset + self.hash_size]
        offset += self.hash_size
        prev_hash = raw[offset:offset + _CHAIN_SIZE]
        return SignedHead(
            index=index,
            generation=generation,
            seqno=seqno,
            counter=counter,
            depth=depth,
            flags=flags,
            root_digest=root_digest,
            prev_hash=prev_hash,
            raw=bytes(raw),
        )

    def _body_and_sigs(self, head: SignedHead):
        body_len = _ENTRY_HEAD.size + self.hash_size + _CHAIN_SIZE
        body = head.raw[:body_len]
        mac = head.raw[body_len:body_len + _MAC_SIZE]
        ed_sig = head.raw[body_len + _MAC_SIZE:]
        return body, mac, ed_sig

    def verify_signature(self, raw: bytes) -> SignedHead:
        """Authenticate one entry in isolation (no chain placement)."""
        head = self.parse_entry(raw)
        body, mac, ed_sig = self._body_and_sigs(head)
        want = _hmac.new(self.mac_key, body, hashlib.sha256).digest()
        if not _hmac.compare_digest(mac, want):
            raise TamperDetectedError(
                f"head entry #{head.index} failed MAC verification"
            )
        if head.has_ed_signature and HAVE_ED25519:
            from cryptography.hazmat.primitives.asymmetric.ed25519 import (
                Ed25519PublicKey,
            )

            try:
                Ed25519PublicKey.from_public_bytes(self.ed_public).verify(
                    ed_sig, body
                )
            except _InvalidSignature as exc:
                raise TamperDetectedError(
                    f"head entry #{head.index} failed Ed25519 verification"
                ) from exc
        return head

    def verify_entry(
        self,
        raw: bytes,
        expected_prev_hash: bytes,
        expected_index: int,
    ) -> SignedHead:
        """Authenticate one entry and its chain position."""
        head = self.verify_signature(raw)
        if head.index != expected_index:
            raise TamperDetectedError(
                f"head entry at log position {expected_index} claims "
                f"index {head.index}"
            )
        if head.prev_hash != expected_prev_hash:
            raise TamperDetectedError(
                f"head entry #{head.index} does not chain to its "
                "predecessor: the head log was rewritten"
            )
        return head

    # -- chains ------------------------------------------------------------

    def verify_chain(
        self,
        raws: List[bytes],
        after: Optional[SignedHead] = None,
    ) -> List[SignedHead]:
        """Verify consecutive entries; ``after`` anchors the start.

        With ``after=None`` the chain must start at index 0 from the
        genesis hash; otherwise at ``after.index + 1`` from the hash of
        ``after.raw``.  Generations must strictly increase.
        """
        prev_hash = entry_hash(after.raw) if after is not None else self.genesis()
        index = after.index + 1 if after is not None else 0
        last_generation = after.generation if after is not None else -1
        heads: List[SignedHead] = []
        for raw in raws:
            head = self.verify_entry(raw, prev_hash, index)
            if head.generation <= last_generation:
                raise TamperDetectedError(
                    f"head entry #{head.index} regresses the generation "
                    f"({head.generation} after {last_generation})"
                )
            heads.append(head)
            prev_hash = entry_hash(raw)
            index += 1
            last_generation = head.generation
        return heads


class TransparencyLog:
    """The append-only signed head log over one untrusted store."""

    def __init__(
        self,
        untrusted,
        secret_store,
        verifier: HeadVerifier,
        scheme: str,
        heads: List[SignedHead],
        writable: bool,
    ) -> None:
        self.untrusted = untrusted
        self.secret_store = secret_store
        self.verifier = verifier
        self.scheme = scheme
        self.writable = writable
        self._heads = heads

    # -- construction ------------------------------------------------------

    @classmethod
    def exists(cls, untrusted) -> bool:
        return untrusted.exists(HEAD_LOG_FILE)

    @classmethod
    def create(
        cls,
        untrusted,
        secret_store,
        db_uuid: bytes,
        hash_size: int,
        scheme: Optional[str] = None,
    ) -> "TransparencyLog":
        """Start a fresh head log, replacing any stale file."""
        resolved = resolve_head_scheme(scheme)
        verifier = HeadVerifier(secret_store, db_uuid, hash_size)
        pubkey = verifier.ed_public if resolved == "ed25519" else None
        header = _HEADER.pack(
            _HEADER_MAGIC,
            _HEADER_VERSION,
            _SCHEME_BYTES[resolved],
            bytes(db_uuid),
            hash_size,
            pubkey or bytes(32),
        )
        if untrusted.exists(HEAD_LOG_FILE):
            untrusted.truncate(HEAD_LOG_FILE, 0)
        untrusted.write(HEAD_LOG_FILE, 0, header)
        untrusted.sync(HEAD_LOG_FILE)
        return cls(untrusted, secret_store, verifier, resolved, [], True)

    @classmethod
    def load(
        cls,
        untrusted,
        secret_store,
        db_uuid: bytes,
        hash_size: int,
        writable: bool,
        scheme: Optional[str] = None,
    ) -> "TransparencyLog":
        """Load and fully verify an existing head log.

        A torn trailing entry (crash mid-append) is dropped — and, when
        ``writable``, truncated off the file.  Everything else that does
        not verify raises :class:`TamperDetectedError`.
        """
        data = untrusted.read(HEAD_LOG_FILE)
        if len(data) < _HEADER.size:
            raise TamperDetectedError("head log is too short for its header")
        magic, version, scheme_byte, header_uuid, header_hash, pubkey = (
            _HEADER.unpack_from(data, 0)
        )
        if magic != _HEADER_MAGIC or version != _HEADER_VERSION:
            raise TamperDetectedError("head log has a bad header")
        if header_uuid != bytes(db_uuid):
            raise TamperDetectedError(
                "head log belongs to a different database identity"
            )
        if header_hash != hash_size:
            raise TamperDetectedError(
                f"head log hash size {header_hash} does not match the "
                f"store's {hash_size}"
            )
        verifier = HeadVerifier(secret_store, db_uuid, hash_size)
        if any(pubkey) and verifier.ed_public is not None:
            if pubkey != verifier.ed_public:
                raise TamperDetectedError(
                    "head log names an Ed25519 key this device secret "
                    "does not derive"
                )
        heads: List[SignedHead] = []
        offset = _HEADER.size
        valid_end = offset
        prev_hash = verifier.genesis()
        last_generation = -1
        while offset < len(data):
            remaining = len(data) - offset
            if remaining >= _ENTRY_HEAD.size:
                (_, _, _, _, _, _, flags) = _ENTRY_HEAD.unpack_from(data, offset)
                need = _entry_length(flags, hash_size)
            else:
                need = _ENTRY_HEAD.size
            if remaining < need:
                break  # torn tail: a crashed append's byte prefix
            raw = data[offset:offset + need]
            head = verifier.verify_entry(raw, prev_hash, len(heads))
            if head.generation <= last_generation:
                raise TamperDetectedError(
                    f"head entry #{head.index} regresses the generation "
                    f"({head.generation} after {last_generation})"
                )
            heads.append(head)
            prev_hash = entry_hash(raw)
            last_generation = head.generation
            offset += need
            valid_end = offset
        if writable and valid_end < len(data):
            untrusted.truncate(HEAD_LOG_FILE, valid_end)
        resolved = resolve_head_scheme(scheme)
        return cls(untrusted, secret_store, verifier, resolved, heads, writable)

    # -- appends -----------------------------------------------------------

    def _sign(self, body: bytes, flags: int) -> bytes:
        mac = _hmac.new(self.verifier.mac_key, body, hashlib.sha256).digest()
        raw = body + mac
        if flags & FLAG_ED25519:
            raw += _derive_ed_private(self.secret_store).sign(body)
        return raw

    def append(
        self,
        generation: int,
        seqno: int,
        counter: int,
        depth: int,
        root_digest: Optional[bytes],
    ) -> SignedHead:
        """Sign and append the head of a just-written master record."""
        flags = 0
        if self.scheme == "ed25519":
            flags |= FLAG_ED25519
        if root_digest is None:
            flags |= FLAG_EMPTY_ROOT
            root_digest = bytes(self.verifier.hash_size)
        tip = self.tip()
        prev_hash = entry_hash(tip.raw) if tip else self.verifier.genesis()
        body = _ENTRY_HEAD.pack(
            _ENTRY_MAGIC, len(self._heads), generation, seqno, counter,
            depth, flags,
        ) + bytes(root_digest) + prev_hash
        raw = self._sign(body, flags)
        self.untrusted.append(HEAD_LOG_FILE, raw)
        head = self.verifier.parse_entry(raw)
        self._heads.append(head)
        return head

    def append_entry(self, raw: bytes) -> SignedHead:
        """Adopt one already-signed entry verbatim (replica catch-up).

        The entry must verify and chain onto the current tip; replicas
        use this to mirror the primary's log byte-for-byte so auditors
        see one history regardless of which node they ask.
        """
        heads = self.verifier.verify_chain([bytes(raw)], after=self.tip())
        self.untrusted.append(HEAD_LOG_FILE, bytes(raw))
        self._heads.append(heads[0])
        return heads[0]

    def truncate_to(self, index: int) -> None:
        """Drop every head after ``index``.

        Used when the dual-master fallback engaged (the newest master
        copy was lost but the survivor is on the signed history and the
        counter ruled out lost commits): the heads past the surviving
        master are orphans of a master write that no longer exists, and
        the next checkpoint re-signs from here.
        """
        if not self.writable:
            raise ConfigError("cannot truncate a read-only head log")
        keep = self._heads[:index + 1]
        offset = _HEADER.size + sum(len(head.raw) for head in keep)
        self.untrusted.truncate(HEAD_LOG_FILE, offset)
        self.untrusted.sync(HEAD_LOG_FILE)
        self._heads = keep

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._heads)

    def tip(self) -> Optional[SignedHead]:
        return self._heads[-1] if self._heads else None

    def entry(self, index: int) -> SignedHead:
        return self._heads[index]

    def heads(self) -> List[SignedHead]:
        return list(self._heads)

    def entries_raw(self, lo: int, hi: int) -> List[bytes]:
        """Raw entries ``lo..hi`` inclusive (a consistency proof)."""
        if lo < 0 or hi >= len(self._heads) or lo > hi:
            raise TamperDetectedError(
                f"head-log range [{lo}, {hi}] outside 0..{len(self._heads) - 1}"
            )
        return [head.raw for head in self._heads[lo:hi + 1]]

    def entry_for_generation(self, generation: int) -> Optional[SignedHead]:
        for head in reversed(self._heads):
            if head.generation == generation:
                return head
            if head.generation < generation:
                return None
        return None
