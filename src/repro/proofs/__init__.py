"""Client-verifiable proofs and the transparency log (``repro.proofs``).

The location map already *is* a Merkle tree rooted in the MAC'd master
record; this package turns that fact into something clients can use
without trusting the server:

* :mod:`repro.proofs.headlog` — the append-only, hash-chained log of
  signed commit heads (HMAC always, Ed25519 when available);
* :mod:`repro.proofs.merkle` — inclusion and non-membership proofs
  built from and verified against the map's own node payloads;
* :mod:`repro.proofs.service` — server-side proof generation over
  pinned snapshots (shared with the replication shipper's pins);
* :mod:`repro.proofs.client` — :class:`VerifyingClient`, the thin
  client that checks every read and refuses rollbacks and forks.
"""

from repro.proofs.headlog import (
    HAVE_ED25519,
    HEAD_LOG_FILE,
    HeadVerifier,
    SignedHead,
    TransparencyLog,
    resolve_head_scheme,
)
from repro.proofs.merkle import ChunkProof, build_proof, verify_proof
from repro.proofs.service import ProofService

__all__ = [
    "HAVE_ED25519",
    "HEAD_LOG_FILE",
    "HeadVerifier",
    "SignedHead",
    "TransparencyLog",
    "resolve_head_scheme",
    "ChunkProof",
    "build_proof",
    "verify_proof",
    "ProofService",
    "VerifyingClient",
]


def __getattr__(name):
    # VerifyingClient pulls in the server package; import it lazily so
    # `repro.chunkstore` → `repro.proofs.headlog` stays cycle-free.
    if name == "VerifyingClient":
        from repro.proofs.client import VerifyingClient

        return VerifyingClient
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
