"""Exactly-once over a hostile network: the verb × fault chaos sweep.

A :class:`~repro.testing.netfaults.ChaosProxy` sits between client and
server and injects one scheduled fault per case — dropping, truncating,
delaying, trickling, or duplicating exact protocol frames.  The
invariant under every fault, for every verb, is the acceptance bar from
the issue: the client either observes the committed state or a clean
abort — never a double commit, never a lost-but-reported-committed
transaction, never a hang.
"""

from __future__ import annotations

import contextlib
import os
import shutil
import time

import pytest

from repro.config import ChunkStoreConfig
from repro.db import Database
from repro.errors import TDBError, TransientStoreError
from repro.platform.resilient import RetryPolicy
from repro.replication import ReplicaApplier
from repro.server import BackpressureConfig, TdbClient, TdbServer
from repro.testing import ChaosProxy, NetFaultSchedule


@contextlib.contextmanager
def chaos_rig(
    schedule=None,
    *,
    resume_grace: float = 1.5,
    request_timeout: float = 10.0,
    idle_timeout: float = 30.0,
):
    """An in-memory server with a fault-injecting proxy in front of it."""
    db = Database.in_memory()
    server = TdbServer(
        db,
        backpressure=BackpressureConfig(
            idle_timeout=idle_timeout,
            request_timeout=request_timeout,
            resume_grace=resume_grace,
        ),
    ).start()
    proxy = ChaosProxy(*server.address, schedule=schedule).start()
    try:
        yield server, proxy
    finally:
        proxy.stop()
        server.stop()
        db.close()


def create_events(server) -> None:
    """Set up the counting collection over a direct (fault-free) link."""
    with TdbClient(*server.address) as direct:
        with direct.transaction("collection") as ct:
            ct.create_collection("events", "k")


def count_markers(server, marker: str) -> int:
    """How many times the marker landed — the double-commit detector."""
    with TdbClient(*server.address) as direct:
        with direct.transaction("collection") as ct:
            return len(ct.get_match("events", marker))


def proxied_client(proxy, **kwargs) -> TdbClient:
    kwargs.setdefault("timeout", 5.0)
    kwargs.setdefault("retry_delay", 0.02)
    kwargs.setdefault("resolve_timeout", 4.0)
    return TdbClient(*proxy.address, **kwargs)


# The scripted transaction is always: begin (frame 1), col.insert
# (frame 2), commit (frame 3) — on the first proxied connection.
VERB_FRAMES = {"begin": 1, "col.insert": 2, "commit": 3}

FAULTS = ["drop_before", "drop_after", "truncate", "delay", "duplicate"]


def schedule_fault(schedule, fault: str, connection: int, frame: int):
    if fault == "drop_before":
        return schedule.drop_before(connection, frame)
    if fault == "drop_after":
        return schedule.drop_after(connection, frame)
    if fault == "truncate":
        return schedule.truncate(connection, frame, keep=6)
    if fault == "delay":
        return schedule.delay(connection, frame, 0.2)
    if fault == "duplicate":
        return schedule.duplicate(connection, frame)
    raise AssertionError(f"unknown fault {fault!r}")


def run_case(schedule, marker: str, **client_kwargs):
    """One sweep case: insert the marker through the proxy, then judge.

    Returns ``(outcome, count, elapsed)`` where outcome is "committed"
    or the raised error, and count is the marker's multiplicity as seen
    over a clean connection.
    """
    with chaos_rig(schedule) as (server, proxy):
        create_events(server)
        started = time.monotonic()
        try:
            with proxied_client(proxy, **client_kwargs) as client:
                client.run_transaction(
                    lambda ct: ct.insert("events", {"k": marker}),
                    mode="collection",
                    attempts=6,
                )
            outcome = "committed"
        except TDBError as exc:
            outcome = exc
        elapsed = time.monotonic() - started
        assert schedule.fired(), "the scheduled fault never fired"
        # Give any parked leftover its grace window before counting, so
        # the verification read does not race the reaper for locks.
        deadline = time.monotonic() + 8.0
        while True:
            try:
                count = count_markers(server, marker)
                break
            except TDBError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.1)
        return outcome, count, elapsed


class TestVerbFaultSweep:
    """Every verb of the scripted transaction under every fault."""

    @pytest.mark.parametrize("verb", sorted(VERB_FRAMES))
    @pytest.mark.parametrize("fault", FAULTS)
    def test_exactly_once_under_fault(self, verb, fault):
        marker = f"sweep-{verb}-{fault}"
        schedule = schedule_fault(
            NetFaultSchedule(), fault, 1, VERB_FRAMES[verb]
        )
        outcome, count, elapsed = run_case(schedule, marker)
        assert elapsed < 20.0, f"{verb}×{fault} took {elapsed:.1f}s (hang?)"
        assert count in (0, 1), (
            f"{verb}×{fault}: double commit — marker present {count} times"
        )
        if outcome == "committed":
            assert count == 1, (
                f"{verb}×{fault}: reported committed but marker is gone"
            )
        else:
            assert count == 0, (
                f"{verb}×{fault}: reported {outcome!r} but marker landed"
            )
        # With session resume and commit tokens every single-fault case
        # must actually converge to a commit.
        assert outcome == "committed", f"{verb}×{fault} failed: {outcome!r}"

    # Object-mode scripted transaction: begin (1), obj.put (2),
    # obj.get (3), name.bind (4), commit (5).
    OBJ_FRAMES = {"obj.put": 2, "obj.get": 3}

    @pytest.mark.parametrize("verb", sorted(OBJ_FRAMES))
    @pytest.mark.parametrize("fault", FAULTS)
    def test_object_verbs_under_fault(self, verb, fault):
        marker = f"obj-{verb}-{fault}"
        schedule = schedule_fault(
            NetFaultSchedule(), fault, 1, self.OBJ_FRAMES[verb]
        )
        with chaos_rig(schedule) as (server, proxy):
            with TdbClient(*server.address) as direct:
                with direct.transaction() as txn:
                    seed_oid = txn.put({"seed": True})

            def work(txn):
                oid = txn.put({"marker": marker})
                assert txn.get(seed_oid) == {"seed": True}
                txn.bind(marker, oid)

            started = time.monotonic()
            with proxied_client(proxy) as client:
                client.run_transaction(work, attempts=6)
            elapsed = time.monotonic() - started
            assert elapsed < 20.0, f"{verb}×{fault} took {elapsed:.1f}s"
            assert schedule.fired(), "the scheduled fault never fired"
            with TdbClient(*server.address) as direct:
                with direct.transaction() as txn:
                    oid = txn.lookup(marker)
                    assert oid is not None, (
                        f"{verb}×{fault}: committed but the binding is gone"
                    )
                    assert txn.get(oid) == {"marker": marker}

    @pytest.mark.parametrize("fault", FAULTS)
    def test_commit_result_under_fault(self, fault):
        """Sever the commit ack, then fault the ``commit.result`` poll.

        Resume is disabled so recovery must go through the commit-token
        path: connection 2's first frame is the ``commit.result`` query,
        and the fault lands on exactly that frame.
        """
        marker = f"resolve-{fault}"
        schedule = NetFaultSchedule().drop_after(1, VERB_FRAMES["commit"])
        schedule_fault(schedule, fault, 2, 1)
        outcome, count, elapsed = run_case(
            schedule, marker, resume_sessions=False
        )
        assert elapsed < 20.0, f"commit.result×{fault} took {elapsed:.1f}s"
        assert outcome == "committed", (
            f"commit.result×{fault} failed: {outcome!r}"
        )
        assert count == 1, (
            f"commit.result×{fault}: marker present {count} times"
        )


class TestAcceptance:
    def test_severed_commit_ack_resolves_to_committed_exactly_once(self):
        """The issue's acceptance case: the connection dies *after* the
        commit is durable but before the acknowledgement arrives.  The
        client must learn ``committed`` through ``commit.result`` and
        the effects must be visible exactly once."""
        schedule = NetFaultSchedule().drop_after(1, VERB_FRAMES["commit"])
        with chaos_rig(schedule) as (server, proxy):
            create_events(server)
            with proxied_client(proxy, resume_sessions=False) as client:
                with client.transaction("collection") as ct:
                    ct.insert("events", {"k": "severed"})
                # The context manager returned normally: the client
                # settled the in-doubt commit through the token.
                assert client.counters["indoubt_queries"] >= 1
                assert client.counters["indoubt_committed"] == 1
            assert count_markers(server, "severed") == 1
            with TdbClient(*server.address) as direct:
                resilience = direct.stats()["resilience"]
            assert resilience["indoubt_hits"] >= 1

    def test_midtxn_drop_resumes_the_parked_session(self):
        """A drop between operations parks the session server-side; the
        client resumes it and the transaction commits once."""
        schedule = NetFaultSchedule().drop_after(1, VERB_FRAMES["col.insert"])
        with chaos_rig(schedule) as (server, proxy):
            create_events(server)
            with proxied_client(proxy) as client:
                with client.transaction("collection") as ct:
                    ct.insert("events", {"k": "resumed"})
                assert client.counters["session_resumes"] == 1
            assert count_markers(server, "resumed") == 1
            with TdbClient(*server.address) as direct:
                resilience = direct.stats()["resilience"]
            assert resilience["sessions_parked"] >= 1
            assert resilience["sessions_resumed"] >= 1
            # The in-flight insert was *replayed from the response
            # cache*, not executed twice.
            assert resilience["request_replays"] >= 1


class TestSlowLoris:
    def test_trickled_frame_hits_the_absolute_deadline(self):
        """A frame dribbling in one byte at a time must be cut off by
        ``request_timeout`` measured from its first byte — per-read
        timeout resets would let it dribble forever."""
        schedule = NetFaultSchedule().trickle(
            1, VERB_FRAMES["col.insert"], chunk=1, interval=0.15
        )
        with chaos_rig(
            schedule, request_timeout=0.5, idle_timeout=5.0, resume_grace=0.0
        ) as (server, proxy):
            create_events(server)
            with proxied_client(proxy, resume_sessions=False) as client:
                client.call("begin", mode="collection")
                started = time.monotonic()
                with pytest.raises(TransientStoreError):
                    client.call(
                        "col.insert", name="events", value={"k": "loris"}
                    )
                elapsed = time.monotonic() - started
            # The full trickle would take many seconds; the absolute
            # deadline must fire at ~request_timeout instead.
            assert elapsed < 3.0, f"slow-loris survived {elapsed:.1f}s"
            assert schedule.fired()
            assert count_markers(server, "loris") == 0
            # The strangled session's slot was released.
            deadline = time.monotonic() + 5.0
            while server.admission.active > 0:
                assert time.monotonic() < deadline, "session slot leaked"
                time.sleep(0.05)

    def test_blackhole_connection_is_bounded_by_the_client_timeout(self):
        schedule = NetFaultSchedule().blackhole(1)
        with chaos_rig(schedule) as (server, proxy):
            with proxied_client(
                proxy, timeout=0.75, resume_sessions=False
            ) as client:
                started = time.monotonic()
                with pytest.raises(TransientStoreError):
                    client.call("begin", mode="object")
                elapsed = time.monotonic() - started
            assert elapsed < 3.0, f"blackhole hung the client {elapsed:.1f}s"


# ---------------------------------------------------------------------------
# Replication under network faults
# ---------------------------------------------------------------------------

CHUNK = ChunkStoreConfig(
    segment_size=8192, checkpoint_residual_bytes=8192, initial_segments=4
)


def _populate(server, count=12, start=0):
    with TdbClient(*server.address) as client:
        with client.transaction() as txn:
            for i in range(start, start + count):
                oid = txn.put({"n": i, "pad": "x" * 300})
                txn.bind(f"obj-{i}", oid)


class TestReplicationFaults:
    def test_subscribe_sweep_then_convergence(self, tmp_path):
        """``repl.subscribe`` under each fault: failed polls surface as
        transient errors, clean polls converge the replica."""
        pdir = os.path.join(str(tmp_path), "primary")
        db = Database.create(pdir, CHUNK)
        server = TdbServer(db).start()
        try:
            _populate(server)
            rdir = os.path.join(str(tmp_path), "replica")
            os.makedirs(rdir, exist_ok=True)
            shutil.copy(
                os.path.join(pdir, "secret.key"),
                os.path.join(rdir, "secret.key"),
            )
            # One proxy, one fault per connection: each failed sync drops
            # the link, so the next attempt arrives as a new connection.
            schedule = (
                NetFaultSchedule()
                .drop_before(1, 1)
                .drop_after(2, 1)
                .truncate(3, 1, keep=6)
                .delay(4, 1, 0.2)
            )
            with ChaosProxy(*server.address, schedule=schedule) as proxy:
                with ReplicaApplier(
                    rdir, *proxy.address, chunk_config=CHUNK
                ) as applier:
                    failures = 0
                    for _ in range(3):  # the three killed connections
                        with pytest.raises(TDBError):
                            applier.sync_once()
                        failures += 1
                    assert failures == 3
                    # Connection 4 only delays the subscribe: the sync
                    # must ride it out and install the shipment.
                    assert applier.sync_once() is True
                    assert applier.sync_once() is False  # up to date
                assert len(schedule.fired()) == 4
            master = db.chunk_store.master_io.load_latest()
            from repro.platform import FileSecretStore
            from repro.replication import load_state, open_replica_database

            secret = FileSecretStore(
                os.path.join(rdir, "secret.key"), create=False
            )
            state = load_state(rdir, secret)
            rdb = open_replica_database(rdir, state.counter, CHUNK)
            try:
                replica = rdb.chunk_store.master_io.load_latest()
                assert replica.root == master.root
            finally:
                rdb.close()
        finally:
            server.stop()
            db.close()

    def test_follow_mode_survives_a_primary_restart(self, tmp_path):
        """Kill the primary mid-follow, restart it on the same port with
        new data: the applier must back off (link_failures > 0), then
        re-subscribe and converge."""
        pdir = os.path.join(str(tmp_path), "primary")
        db = Database.create(pdir, CHUNK)
        server = TdbServer(db).start()
        host, port = server.address
        _populate(server)
        rdir = os.path.join(str(tmp_path), "replica")
        os.makedirs(rdir, exist_ok=True)
        shutil.copy(
            os.path.join(pdir, "secret.key"),
            os.path.join(rdir, "secret.key"),
        )
        applier = ReplicaApplier(
            rdir,
            host,
            port,
            chunk_config=CHUNK,
            poll_interval=0.05,
            retry_policy=RetryPolicy(
                max_attempts=4, base_delay=0.05, max_delay=0.25, jitter=0.25
            ),
        )
        applier.start()
        try:
            deadline = time.monotonic() + 15.0
            while applier.stats_snapshot()["shipments_applied"] < 1:
                assert time.monotonic() < deadline, "first shipment never landed"
                time.sleep(0.05)

            # Flap the link: the primary goes away entirely.
            server.stop()
            db.close()
            while applier.stats_snapshot()["link_failures"] < 2:
                assert time.monotonic() < deadline, "no link failures recorded"
                time.sleep(0.05)
            flapped = applier.stats_snapshot()
            assert flapped["consecutive_failures"] >= 1
            assert flapped["last_backoff"] > 0.0

            # Same port, fresh process state (new shipper, new epoch).
            db = Database.open_existing(pdir, CHUNK)
            server = TdbServer(db, host=host, port=port).start()
            _populate(server, count=8, start=100)
            while True:
                stats = applier.stats_snapshot()
                if stats["reconnects"] >= 1 and stats["lag_seqno"] == 0 and (
                    stats["shipments_applied"] >= 2
                ):
                    break
                assert time.monotonic() < deadline, (
                    f"applier never caught up after restart: {stats}"
                )
                time.sleep(0.05)
            stats = applier.stats_snapshot()
            assert stats["link_failures"] > 0
            assert stats["reconnects"] >= 1
            assert stats["consecutive_failures"] == 0
        finally:
            applier.close()
            server.stop()
            db.close()
