"""Chaos sweep against the *sharded* server: exactly-once over a lossy
wire and a multi-process commit protocol at the same time.

The :class:`~repro.testing.netfaults.ChaosProxy` sits between the
client and the asyncio front door, injecting one scheduled fault per
case on exact protocol frames.  The invariant is the same as the
threaded sweep (``tests/test_chaos_proxy.py``): committed state or a
clean abort, never a double commit, never a hang — but here the commit
behind the faulted frame may be a cross-shard two-phase commit, so the
sweep also exercises the decision log and per-shard redo records under
client-connection loss.
"""

from __future__ import annotations

import contextlib
import time

import pytest

from repro.errors import TDBError
from repro.server import BackpressureConfig, ShardedTdbServer, TdbClient
from repro.testing import ChaosProxy, NetFaultSchedule

# The scripted cross-shard transaction is always: begin (frame 1), two
# obj.put frames (2, 3 — round-robin places them on both shards), two
# name.bind frames (4, 5), and commit (frame 6) — on the first proxied
# connection.
VERB_FRAMES = {
    "begin": 1,
    "obj.put": 2,
    "obj.put2": 3,
    "name.bind": 4,
    "name.bind2": 5,
    "commit": 6,
}

FAULTS = ["drop_before", "drop_after", "truncate", "delay", "duplicate"]


def schedule_fault(schedule, fault: str, connection: int, frame: int):
    if fault == "drop_before":
        return schedule.drop_before(connection, frame)
    if fault == "drop_after":
        return schedule.drop_after(connection, frame)
    if fault == "truncate":
        return schedule.truncate(connection, frame, keep=6)
    if fault == "delay":
        return schedule.delay(connection, frame, 0.2)
    if fault == "duplicate":
        return schedule.duplicate(connection, frame)
    raise AssertionError(f"unknown fault {fault!r}")


@contextlib.contextmanager
def sharded_chaos_rig(tmp_path, schedule=None, *, resume_grace: float = 1.5):
    """A two-shard server with a fault-injecting proxy in front of it."""
    server = ShardedTdbServer(
        str(tmp_path / "db"),
        shards=2,
        backpressure=BackpressureConfig(
            idle_timeout=30.0, request_timeout=10.0, resume_grace=resume_grace
        ),
    ).start()
    proxy = ChaosProxy(*server.address, schedule=schedule).start()
    try:
        yield server, proxy
    finally:
        proxy.stop()
        server.stop()


def proxied_client(proxy, **kwargs) -> TdbClient:
    kwargs.setdefault("timeout", 5.0)
    kwargs.setdefault("retry_delay", 0.02)
    kwargs.setdefault("resolve_timeout", 4.0)
    return TdbClient(*proxy.address, **kwargs)


def count_markers(server, marker: str) -> int:
    """Marker multiplicity over a clean connection — the double-commit
    detector.  Retries during the parked-session grace window."""
    deadline = time.monotonic() + 8.0
    while True:
        try:
            with TdbClient(*server.address) as direct:
                with direct.transaction() as txn:
                    count = 0
                    for name in (f"{marker}:0", f"{marker}:1"):
                        oid = txn.lookup(name)
                        if oid is not None and txn.get(oid)["marker"] == marker:
                            count += 1
                    return count
        except TDBError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.1)


def cross_shard_work(marker):
    """A transaction that writes one object per shard and names both."""

    def work(txn):
        oids = [txn.put({"marker": marker, "n": i}) for i in range(2)]
        assert {oid % 2 for oid in oids} == {0, 1}, "not cross-shard"
        for i, oid in enumerate(oids):
            txn.bind(f"{marker}:{i}", oid)
        return oids

    return work


class TestShardedVerbFaultSweep:
    """Every frame of the scripted cross-shard transaction under every
    fault: the retried client must converge to exactly one commit."""

    @pytest.mark.parametrize("verb", sorted(VERB_FRAMES))
    @pytest.mark.parametrize("fault", FAULTS)
    def test_exactly_once_under_fault(self, tmp_path, verb, fault):
        marker = f"sweep-{verb}-{fault}"
        schedule = schedule_fault(
            NetFaultSchedule(), fault, 1, VERB_FRAMES[verb]
        )
        with sharded_chaos_rig(tmp_path, schedule) as (server, proxy):
            started = time.monotonic()
            try:
                with proxied_client(proxy) as client:
                    client.run_transaction(
                        cross_shard_work(marker), attempts=6
                    )
                outcome = "committed"
            except TDBError as exc:
                outcome = exc
            elapsed = time.monotonic() - started
            assert schedule.fired(), "the scheduled fault never fired"
            assert elapsed < 25.0, f"{verb}×{fault} took {elapsed:.1f}s (hang?)"
            count = count_markers(server, marker)
            assert count in (0, 2), (
                f"{verb}×{fault}: partial commit — {count}/2 markers present"
            )
            # With resume + commit tokens every single-fault case must
            # actually converge to one full commit; the name.bind pair
            # is all-or-nothing across both shards.
            assert outcome == "committed", f"{verb}×{fault}: {outcome!r}"
            assert count == 2, (
                f"{verb}×{fault}: reported committed but markers are gone"
            )


class TestClientDropInsideTwoPhaseCommit:
    """The issue's named case: the *client* connection drops while the
    cross-shard commit is between prepare and decision server-side.

    The front door keeps driving the 2PC round to completion (the
    client's death must not leave shards prepared-forever), and the
    reconnecting client learns the outcome through its commit token."""

    def test_drop_between_prepare_and_decision_converges(self, tmp_path):
        marker = "prep-decision-drop"
        schedule = NetFaultSchedule().drop_after(1, VERB_FRAMES["commit"] - 1)
        with sharded_chaos_rig(tmp_path) as (server, proxy):
            dropped = {"done": False}
            proxy_conns = []

            def stage_hook(stage, token, shard):
                # Between the last prepare and the decision record: cut
                # every proxied client connection.
                if stage == "before_decision" and not dropped["done"]:
                    dropped["done"] = True
                    for conn in list(proxy_conns):
                        try:
                            conn.shutdown(2)
                        except OSError:
                            pass

            server.on_stage = stage_hook
            with proxied_client(proxy, resume_sessions=False) as client:
                # Track the client's raw socket so the hook can cut it.
                client.connect()
                proxy_conns.append(client._sock)
                client.run_transaction(cross_shard_work(marker), attempts=6)
            assert dropped["done"], "the 2PC round never reached a decision"
            server.on_stage = None
            assert count_markers(server, marker) == 2
            # The commit decision reached the log (a fully acknowledged
            # decision moves from the live map to the done window).
            log = server.decision_log
            decided = set(getattr(log, "_decisions", {}))
            decided |= set(getattr(log, "_done", set()))
            assert len(decided) >= 1

    def test_severed_commit_ack_resolves_exactly_once(self, tmp_path):
        """Connection dies after the cross-shard commit frame is sent:
        the token must settle to committed, effects visible once."""
        marker = "severed-xshard"
        schedule = NetFaultSchedule().drop_after(1, VERB_FRAMES["commit"])
        with sharded_chaos_rig(tmp_path, schedule) as (server, proxy):
            with proxied_client(proxy, resume_sessions=False) as client:
                with client.transaction() as txn:
                    cross_shard_work(marker)(txn)
                assert client.counters["indoubt_queries"] >= 1
                assert client.counters["indoubt_committed"] == 1
            assert count_markers(server, marker) == 2
