"""Shared fixtures for the TDB reproduction test suite."""

from __future__ import annotations

import pytest

from repro.config import ChunkStoreConfig, ObjectStoreConfig, SecurityProfile
from repro.platform import (
    MemoryArchivalStore,
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)

#: Engines the engine-parametrized suites run under.  ``native`` is the
#: production default; ``reference`` is the per-block oracle.  ``fast``
#: is covered separately by the kernel suite, so the parametrized suites
#: stay affordable.
PARAMETRIZED_ENGINES = ("native", "reference")


@pytest.fixture(params=PARAMETRIZED_ENGINES)
def crypto_engine(request, monkeypatch):
    """Pin the engine the default ``kernel="auto"`` profiles resolve to.

    ``SecurityProfile.resolved_kernel`` reads ``REPRO_CRYPTO_ENGINE`` at
    store-construction time, so this works even for config objects baked
    into module-level constants at import.
    """
    monkeypatch.setenv("REPRO_CRYPTO_ENGINE", request.param)
    return request.param


@pytest.fixture
def secret_store():
    return MemorySecretStore(b"unit-test-secret-0123456789abcdef")


@pytest.fixture
def untrusted_store():
    return MemoryUntrustedStore()


@pytest.fixture
def counter():
    return MemoryOneWayCounter()


@pytest.fixture
def archival_store():
    return MemoryArchivalStore()


@pytest.fixture
def secure_config():
    """Small-segment secure chunk-store config that exercises the cleaner."""
    return ChunkStoreConfig(
        segment_size=8 * 1024,
        initial_segments=4,
        checkpoint_residual_bytes=16 * 1024,
        map_fanout=8,
        security=SecurityProfile(enabled=True, hash_name="sha1", cipher_name="aes-128"),
    )


@pytest.fixture
def insecure_config():
    return ChunkStoreConfig(
        segment_size=8 * 1024,
        initial_segments=4,
        checkpoint_residual_bytes=16 * 1024,
        map_fanout=8,
        security=SecurityProfile.insecure(),
    )


@pytest.fixture
def object_store_config():
    return ObjectStoreConfig(cache_bytes=256 * 1024, lock_timeout=0.2)
