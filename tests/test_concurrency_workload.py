"""Multithreaded workload tests (the paper's optional concurrency, §4).

TDB targets a single user but "optionally support[s] concurrent
transactions: the user may run a number of applications concurrently".
These tests run a bank-transfer workload from several threads with
locking enabled and check the global invariant, retrying on the lock
timeouts the paper uses to break deadlocks.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.chunkstore import ChunkStore
from repro.config import ChunkStoreConfig, ObjectStoreConfig, SecurityProfile
from repro.errors import LockTimeoutError
from repro.objectstore import (
    BufferReader,
    BufferWriter,
    ClassRegistry,
    ObjectStore,
    Persistent,
)
from repro.platform import (
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)


class Account(Persistent):
    class_id = "conc.account"

    def __init__(self, cents=0):
        self.cents = cents

    def pickle(self) -> bytes:
        return BufferWriter().write_int(self.cents).getvalue()

    @classmethod
    def unpickle(cls, data: bytes) -> "Account":
        return cls(BufferReader(data).read_int())


@pytest.fixture
def bank():
    registry = ClassRegistry()
    registry.register(Account)
    chunk_store = ChunkStore.format(
        MemoryUntrustedStore(),
        MemorySecretStore(b"concurrency-test-secret-01234567"),
        MemoryOneWayCounter(),
        ChunkStoreConfig(
            segment_size=32 * 1024,
            initial_segments=4,
            checkpoint_residual_bytes=128 * 1024,
            map_fanout=16,
            security=SecurityProfile.insecure(),
        ),
    )
    store = ObjectStore.create(
        chunk_store,
        ObjectStoreConfig(locking=True, lock_timeout=1.0),
        registry,
    )
    with store.transaction() as txn:
        oids = [txn.insert(Account(1000)) for _ in range(8)]
    yield store, oids
    store.close()


def transfer(store, source, target, amount):
    """One transfer with deadlock-retry (the paper's expected pattern)."""
    for _attempt in range(25):
        txn = store.transaction()
        try:
            # Canonical lock order avoids most deadlocks; the retry loop
            # absorbs the rest.
            first, second = sorted((source, target))
            ref_first = txn.open_writable(first)
            ref_second = txn.open_writable(second)
            src = ref_first if first == source else ref_second
            dst = ref_first if first == target else ref_second
            if src.cents < amount:
                txn.abort()
                return False
            src.cents -= amount
            dst.cents += amount
            txn.commit(durable=False)
            return True
        except LockTimeoutError:
            txn.abort()
    raise AssertionError("transfer starved after 25 retries")


def total_balance(store, oids) -> int:
    with store.transaction() as txn:
        total = sum(txn.open_readonly(oid).cents for oid in oids)
        txn.abort()
    return total


class TestConcurrentTransfers:
    def test_money_is_conserved_across_threads(self, bank):
        store, oids = bank
        initial = total_balance(store, oids)

        def worker(seed):
            rng = random.Random(seed)
            for _ in range(40):
                source, target = rng.sample(oids, 2)
                transfer(store, source, target, rng.randrange(1, 50))

        threads = [threading.Thread(target=worker, args=(seed,)) for seed in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive(), "worker deadlocked"
        assert total_balance(store, oids) == initial

    def test_no_balance_goes_negative(self, bank):
        store, oids = bank

        def drainer(seed):
            rng = random.Random(seed)
            for _ in range(30):
                source, target = rng.sample(oids, 2)
                transfer(store, source, target, rng.randrange(500, 1200))

        threads = [threading.Thread(target=drainer, args=(seed,)) for seed in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        with store.transaction() as txn:
            for oid in oids:
                assert txn.open_readonly(oid).cents >= 0
            txn.abort()

    def test_readers_see_consistent_totals(self, bank):
        store, oids = bank
        initial = total_balance(store, oids)
        stop = threading.Event()
        bad_totals = []

        def reader():
            while not stop.is_set():
                try:
                    observed = total_balance(store, oids)
                except LockTimeoutError:
                    continue
                if observed != initial:
                    bad_totals.append(observed)

        def writer():
            rng = random.Random(99)
            for _ in range(60):
                source, target = rng.sample(oids, 2)
                transfer(store, source, target, rng.randrange(1, 30))
            stop.set()

        reader_thread = threading.Thread(target=reader)
        writer_thread = threading.Thread(target=writer)
        reader_thread.start()
        writer_thread.start()
        writer_thread.join(timeout=120)
        stop.set()
        reader_thread.join(timeout=30)
        # Strict 2PL + shared read locks: a reader holding S locks on all
        # accounts observes an atomic snapshot — totals never tear.
        assert bad_totals == []
