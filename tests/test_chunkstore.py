"""Integration tests for the chunk store facade.

Covers the Figure 2 interface, durability semantics, checkpointing,
recovery, the cleaner, snapshots, and the security guarantees (tamper and
replay detection, secrecy).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.chunkstore import ChunkStore
from repro.config import ChunkStoreConfig, SecurityProfile
from repro.errors import (
    ChunkNotFoundError,
    ChunkStoreError,
    RecoveryError,
    ReplayDetectedError,
    TamperDetectedError,
)
from repro.platform import (
    Attacker,
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)

SECRET = b"0123456789abcdef0123456789abcdef"


@pytest.fixture(autouse=True)
def _engine(crypto_engine):
    """Run this whole suite under each crypto engine (native, reference).

    The profiles below keep the default ``kernel="auto"``, which resolves
    through the ``REPRO_CRYPTO_ENGINE`` variable the ``crypto_engine``
    fixture pins — so every store built here uses the active engine.
    """


def small_config(secure=True, **overrides):
    defaults = dict(
        segment_size=8 * 1024,
        initial_segments=4,
        checkpoint_residual_bytes=16 * 1024,
        map_fanout=8,
        security=SecurityProfile() if secure else SecurityProfile.insecure(),
    )
    defaults.update(overrides)
    return ChunkStoreConfig(**defaults)


def fresh_store(secure=True, **overrides):
    untrusted = MemoryUntrustedStore()
    secret = MemorySecretStore(SECRET)
    counter = MemoryOneWayCounter()
    config = small_config(secure, **overrides)
    store = ChunkStore.format(untrusted, secret, counter, config)
    return store, untrusted, secret, counter, config


class TestBasicOperations:
    def test_write_read_roundtrip(self):
        store, *_ = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"hello")
        assert store.read(cid) == b"hello"

    def test_overwrite_returns_latest(self):
        store, *_ = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"v1")
        store.write(cid, b"v2-longer-payload")
        assert store.read(cid) == b"v2-longer-payload"

    def test_variable_sized_chunks(self):
        store, *_ = fresh_store()
        for size in (0, 1, 100, 5000):
            cid = store.allocate_chunk_id()
            store.write(cid, bytes(size))
            assert store.read(cid) == bytes(size)

    def test_read_unwritten_signals(self):
        store, *_ = fresh_store()
        cid = store.allocate_chunk_id()
        with pytest.raises(ChunkNotFoundError):
            store.read(cid)

    def test_write_unallocated_signals(self):
        store, *_ = fresh_store()
        with pytest.raises(ChunkStoreError):
            store.write(999, b"data")

    def test_deallocate_removes_state(self):
        store, *_ = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"data")
        store.deallocate(cid)
        with pytest.raises(ChunkNotFoundError):
            store.read(cid)
        assert not store.contains(cid)

    def test_deallocate_unallocated_signals(self):
        store, *_ = fresh_store()
        with pytest.raises(ChunkStoreError):
            store.deallocate(12345)

    def test_deallocated_id_is_reused(self):
        store, *_ = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"x")
        store.deallocate(cid)
        assert store.allocate_chunk_id() == cid

    def test_atomic_batch_commit(self):
        store, *_ = fresh_store()
        a, b = store.allocate_chunk_id(), store.allocate_chunk_id()
        store.commit({a: b"A", b: b"B"})
        c = store.allocate_chunk_id()
        store.commit({c: b"C"}, deallocs=[a])
        assert store.read(b) == b"B"
        assert store.read(c) == b"C"
        assert not store.contains(a)

    def test_commit_write_and_dealloc_same_chunk_rejected(self):
        store, *_ = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"x")
        with pytest.raises(ChunkStoreError):
            store.commit({cid: b"y"}, deallocs=[cid])

    def test_empty_commit_is_noop(self):
        store, *_ = fresh_store()
        before = store.stats().commits_total
        store.commit({})
        assert store.stats().commits_total == before

    def test_chunk_ids_sorted(self):
        store, *_ = fresh_store()
        ids = [store.allocate_chunk_id() for _ in range(5)]
        store.commit({cid: b"x" for cid in ids})
        assert store.chunk_ids() == sorted(ids)

    def test_operations_after_close_raise(self):
        store, *_ = fresh_store()
        store.close()
        with pytest.raises(ChunkStoreError):
            store.allocate_chunk_id()
        with pytest.raises(ChunkStoreError):
            store.read(0)

    def test_constructor_is_blocked(self):
        with pytest.raises(ChunkStoreError):
            ChunkStore()

    def test_format_refuses_non_empty_store(self):
        store, untrusted, secret, counter, config = fresh_store()
        with pytest.raises(ChunkStoreError):
            ChunkStore.format(untrusted, secret, counter, config)


class TestPersistenceAndRecovery:
    def test_clean_close_and_reopen(self):
        store, untrusted, secret, counter, config = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"persistent")
        store.close()
        reopened = ChunkStore.open(untrusted, secret, counter, config)
        assert reopened.read(cid) == b"persistent"

    def test_crash_recovery_without_checkpoint(self):
        store, untrusted, secret, counter, config = fresh_store()
        cids = [store.allocate_chunk_id() for _ in range(10)]
        for index, cid in enumerate(cids):
            store.write(cid, f"chunk-{index}".encode())
        # No close(): simulate a crash by just reopening from the files.
        recovered = ChunkStore.open(untrusted, secret, counter, config)
        for index, cid in enumerate(cids):
            assert recovered.read(cid) == f"chunk-{index}".encode()

    def test_nondurable_commit_discarded_on_crash(self):
        store, untrusted, secret, counter, config = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"durable", durable=True)
        store.write(cid, b"volatile", durable=False)
        recovered = ChunkStore.open(untrusted, secret, counter, config)
        assert recovered.read(cid) == b"durable"

    def test_nondurable_commit_survives_after_durable(self):
        store, untrusted, secret, counter, config = fresh_store()
        cid = store.allocate_chunk_id()
        other = store.allocate_chunk_id()
        store.write(cid, b"first", durable=True)
        store.write(cid, b"second", durable=False)
        store.write(other, b"durability barrier", durable=True)
        recovered = ChunkStore.open(untrusted, secret, counter, config)
        assert recovered.read(cid) == b"second"

    def test_nondurable_insert_discarded(self):
        store, untrusted, secret, counter, config = fresh_store()
        keep = store.allocate_chunk_id()
        store.write(keep, b"keep", durable=True)
        lost = store.allocate_chunk_id()
        store.write(lost, b"lost", durable=False)
        recovered = ChunkStore.open(untrusted, secret, counter, config)
        assert recovered.read(keep) == b"keep"
        assert not recovered.contains(lost)

    def test_recovery_after_checkpoint(self):
        store, untrusted, secret, counter, config = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"before checkpoint")
        store.checkpoint()
        other = store.allocate_chunk_id()
        store.write(other, b"after checkpoint")
        recovered = ChunkStore.open(untrusted, secret, counter, config)
        assert recovered.read(cid) == b"before checkpoint"
        assert recovered.read(other) == b"after checkpoint"

    def test_repeated_crash_recovery_cycles(self):
        store, untrusted, secret, counter, config = fresh_store()
        rng = random.Random(7)
        model = {}
        for cycle in range(5):
            for _ in range(30):
                if model and rng.random() < 0.2:
                    victim = rng.choice(sorted(model))
                    store.deallocate(victim)
                    del model[victim]
                else:
                    cid = store.allocate_chunk_id()
                    data = rng.randbytes(rng.randrange(10, 200))
                    store.write(cid, data)
                    model[cid] = data
            store = ChunkStore.open(untrusted, secret, counter, config)
            assert set(store.chunk_ids()) == set(model)
            for cid, data in model.items():
                assert store.read(cid) == data

    def test_open_without_format_fails(self):
        with pytest.raises(RecoveryError):
            ChunkStore.open(
                MemoryUntrustedStore(),
                MemorySecretStore(SECRET),
                MemoryOneWayCounter(),
                small_config(),
            )

    def test_config_mismatch_rejected(self):
        store, untrusted, secret, counter, config = fresh_store()
        store.close()
        with pytest.raises(ChunkStoreError):
            ChunkStore.open(
                untrusted, secret, counter, small_config(segment_size=16 * 1024)
            )
        with pytest.raises(ChunkStoreError):
            ChunkStore.open(untrusted, secret, counter, small_config(map_fanout=16))

    def test_security_profile_mismatch_rejected(self):
        # Opening an insecure store with the secure profile cannot be
        # distinguished from tampering (the master carries no valid MAC),
        # so any TDB error is acceptable — but never a silent open.
        from repro.errors import TDBError

        store, untrusted, secret, counter, config = fresh_store(secure=False)
        store.close()
        with pytest.raises(TDBError):
            ChunkStore.open(untrusted, secret, counter, small_config(secure=True))
        store2, untrusted2, secret2, counter2, _ = fresh_store(secure=True)
        store2.close()
        with pytest.raises(TDBError):
            ChunkStore.open(untrusted2, secret2, counter2, small_config(secure=False))

    def test_torn_tail_is_discarded_not_tamper(self):
        # A crash can interrupt an append mid-record.  A torn *nondurable*
        # record is silently discarded (it was allowed to be lost).
        store, untrusted, secret, counter, config = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"committed", durable=True)
        store.write(cid, b"torn-away", durable=False)
        tail = f"seg-{store.segments.tail_segment:08d}"
        untrusted.truncate(tail, untrusted.size(tail) - 5)
        recovered = ChunkStore.open(untrusted, secret, counter, config)
        assert recovered.read(cid) == b"committed"

    def test_truncating_completed_durable_commit_is_detected(self):
        # Chopping off a commit whose counter bump already happened is a
        # rollback attempt, not a crash, and must be flagged.
        store, untrusted, secret, counter, config = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"v1", durable=True)
        store.write(cid, b"v2", durable=True)
        tail = f"seg-{store.segments.tail_segment:08d}"
        untrusted.truncate(tail, untrusted.size(tail) - 5)
        with pytest.raises(ReplayDetectedError):
            ChunkStore.open(untrusted, secret, counter, config)

    def test_wrong_secret_cannot_open(self):
        store, untrusted, _secret, counter, config = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"locked")
        store.close()
        wrong = MemorySecretStore(b"ffffffffffffffffffffffffffffffff")
        with pytest.raises(TamperDetectedError):
            ChunkStore.open(untrusted, wrong, counter, config)


class TestCheckpointAndLog:
    def test_auto_checkpoint_bounds_residual(self):
        store, *_ = fresh_store(checkpoint_residual_bytes=4 * 1024)
        cid = store.allocate_chunk_id()
        for index in range(200):
            store.write(cid, bytes(100))
        assert store.stats().checkpoints_total > 1
        assert store.stats().residual_bytes < 4 * 1024 + 8 * 1024

    def test_checkpoint_noop_when_clean(self):
        store, *_ = fresh_store()
        store.checkpoint()
        count = store.stats().checkpoints_total
        store.checkpoint()
        assert store.stats().checkpoints_total == count

    def test_log_spans_many_segments(self):
        store, *_ = fresh_store()
        cids = [store.allocate_chunk_id() for _ in range(20)]
        for cid in cids:
            store.write(cid, bytes(2000))
        assert store.stats().segment_count >= 4
        for cid in cids:
            assert store.read(cid) == bytes(2000)

    def test_oversized_commit_single_record(self):
        store, *_ = fresh_store()
        cid = store.allocate_chunk_id()
        big = bytes(40 * 1024)  # larger than a whole segment
        store.write(cid, big)
        assert store.read(cid) == big
        store.checkpoint()
        assert store.read(cid) == big


class TestCleaner:
    def test_cleaning_recycles_segments(self):
        store, *_ = fresh_store()
        cid = store.allocate_chunk_id()
        for _ in range(500):
            store.write(cid, bytes(500))
        stats = store.stats()
        assert stats.cleaner.segments_freed > 0
        # One live chunk: the database must stay far smaller than the log
        # volume written (500 * 500 bytes).
        assert stats.capacity_bytes < 120 * 1024

    def test_cleaning_preserves_all_data(self):
        store, *_ = fresh_store()
        rng = random.Random(3)
        keep = {}
        for index in range(40):
            cid = store.allocate_chunk_id()
            data = rng.randbytes(300)
            store.write(cid, data)
            keep[cid] = data
        hot = store.allocate_chunk_id()
        for _ in range(400):
            store.write(hot, rng.randbytes(400))
        final = rng.randbytes(64)
        store.write(hot, final)
        keep[hot] = final
        assert store.stats().cleaner.segments_freed > 0
        for cid, data in keep.items():
            assert store.read(cid) == data

    def test_explicit_clean_pass(self):
        store, *_ = fresh_store()
        cid = store.allocate_chunk_id()
        for _ in range(200):
            store.write(cid, bytes(800))
        store.checkpoint()
        freed = store.clean(max_segments=100)
        assert freed >= 0  # bounded pass; zero is legal if already compact
        assert store.read(cid) == bytes(800)

    def test_cleaning_survives_recovery(self):
        store, untrusted, secret, counter, config = fresh_store()
        keep = store.allocate_chunk_id()
        store.write(keep, b"cold data")
        hot = store.allocate_chunk_id()
        for _ in range(400):
            store.write(hot, bytes(500))
        store.write(hot, b"hot final")
        recovered = ChunkStore.open(untrusted, secret, counter, config)
        assert recovered.read(keep) == b"cold data"
        assert recovered.read(hot) == b"hot final"

    def test_utilization_bound_respected(self):
        store, *_ = fresh_store(max_utilization=0.5)
        cid = store.allocate_chunk_id()
        for _ in range(300):
            store.write(cid, bytes(1000))
        # live is one chunk; capacity cannot be squeezed beyond the bound.
        assert store.stats().utilization <= 0.5 + 0.05


class TestSecurity:
    def test_payloads_are_encrypted(self):
        store, untrusted, *_ = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"DRM-SECRET-CONTENT-KEY")
        assert Attacker(untrusted).search_plaintext(b"DRM-SECRET") == []

    def test_insecure_profile_stores_plaintext(self):
        store, untrusted, *_ = fresh_store(secure=False)
        cid = store.allocate_chunk_id()
        store.write(cid, b"VISIBLE-MARKER")
        assert Attacker(untrusted).search_plaintext(b"VISIBLE-MARKER")

    def test_bit_flip_in_payload_detected_on_read(self):
        store, untrusted, secret, counter, config = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"A" * 500)
        locator = store.location_map.lookup(cid)
        Attacker(untrusted).flip_bit(
            f"seg-{locator.segment:08d}", locator.offset + 10
        )
        with pytest.raises(TamperDetectedError):
            store.read(cid)

    def test_bit_flip_in_log_detected_on_recovery(self):
        store, untrusted, secret, counter, config = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"B" * 500)
        locator = store.location_map.lookup(cid)
        Attacker(untrusted).flip_bit(
            f"seg-{locator.segment:08d}", locator.offset + 10
        )
        with pytest.raises(TamperDetectedError):
            ChunkStore.open(untrusted, secret, counter, config)

    def test_master_record_tamper_detected(self):
        store, untrusted, secret, counter, config = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"x")
        store.close()
        attacker = Attacker(untrusted)
        attacker.flip_bit("master-a", 20)
        attacker.flip_bit("master-b", 20)
        with pytest.raises(TamperDetectedError):
            ChunkStore.open(untrusted, secret, counter, config)

    def test_replay_attack_detected(self):
        store, untrusted, secret, counter, config = fresh_store()
        meter = store.allocate_chunk_id()
        store.write(meter, b"plays=0")
        store.checkpoint()
        attacker = Attacker(untrusted)
        saved = attacker.save_image()
        store.write(meter, b"plays=10")  # consumption the user wants to erase
        store.close()
        attacker.replay_image(saved)
        with pytest.raises(ReplayDetectedError):
            ChunkStore.open(untrusted, secret, counter, config)

    def test_counter_rollback_detected_as_tamper(self):
        store, untrusted, secret, counter, config = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"1")
        store.write(cid, b"2")
        store.close()
        # Violate the platform contract: hand recovery an older counter.
        rolled_back = MemoryOneWayCounter(0)
        with pytest.raises(TamperDetectedError):
            ChunkStore.open(untrusted, secret, rolled_back, config)

    def test_log_splice_detected(self):
        store, untrusted, secret, counter, config = fresh_store()
        # All-live data across several segments (nothing for the cleaner).
        ids = [store.allocate_chunk_id() for _ in range(10)]
        for cid in ids:
            store.write(cid, bytes(3000))
        store.close()
        seg_files = [
            name
            for name in untrusted.list_files()
            if name.startswith("seg-") and untrusted.size(name) > 1000
        ]
        assert len(seg_files) >= 2
        Attacker(untrusted).splice(seg_files[0], seg_files[-1])
        # Detection may fire at open (anchor/chain validation) or lazily
        # on first access to the overwritten region (the Merkle check);
        # either way the splice must not go unnoticed.
        with pytest.raises(TamperDetectedError):
            reopened = ChunkStore.open(untrusted, secret, counter, config)
            for cid in ids:
                reopened.read(cid)

    def test_replay_detected_even_without_new_checkpoint(self):
        store, untrusted, secret, counter, config = fresh_store()
        meter = store.allocate_chunk_id()
        store.write(meter, b"balance=100")
        attacker = Attacker(untrusted)
        saved = attacker.save_image()
        store.write(meter, b"balance=0")
        store.close()
        attacker.replay_image(saved)
        with pytest.raises(ReplayDetectedError):
            ChunkStore.open(untrusted, secret, counter, config)


class TestSnapshots:
    def test_snapshot_sees_frozen_state(self):
        store, *_ = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"old")
        snap = store.snapshot()
        store.write(cid, b"new")
        assert snap.read(cid) == b"old"
        assert store.read(cid) == b"new"
        snap.release()

    def test_snapshot_context_manager(self):
        store, *_ = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"v")
        with store.snapshot() as snap:
            assert snap.read(cid) == b"v"
        assert snap.released

    def test_released_snapshot_rejects_reads(self):
        store, *_ = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"v")
        snap = store.snapshot()
        snap.release()
        from repro.errors import SnapshotError

        with pytest.raises(SnapshotError):
            snap.read(cid)

    def test_snapshot_survives_cleaning(self):
        store, *_ = fresh_store()
        cold = store.allocate_chunk_id()
        store.write(cold, b"frozen-value")
        snap = store.snapshot()
        hot = store.allocate_chunk_id()
        for _ in range(300):
            store.write(hot, bytes(600))
        store.write(cold, b"live-value")
        assert snap.read(cold) == b"frozen-value"
        assert store.read(cold) == b"live-value"
        snap.release()

    def test_snapshot_release_unblocks_cleaning(self):
        store, *_ = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"x" * 1000)
        snap = store.snapshot()
        for _ in range(200):
            store.write(cid, bytes(700))
        freed_while_pinned = store.stats().cleaner.segments_freed
        snap.release()
        for _ in range(200):
            store.write(cid, bytes(700))
        assert store.stats().cleaner.segments_freed > freed_while_pinned

    def test_diff_reports_changed_added_removed(self):
        store, *_ = fresh_store()
        stable = store.allocate_chunk_id()
        changed = store.allocate_chunk_id()
        removed = store.allocate_chunk_id()
        store.commit({stable: b"s", changed: b"c1", removed: b"r"})
        base = store.snapshot()
        added = store.allocate_chunk_id()
        store.commit({changed: b"c2", added: b"a"}, deallocs=[removed])
        current = store.snapshot()
        diff = current.diff_from(base)
        assert diff.changed == sorted([changed, added])
        assert diff.removed == [removed]
        base.release()
        current.release()

    def test_diff_empty_when_unchanged(self):
        store, *_ = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"x")
        first = store.snapshot()
        second = store.snapshot()
        assert second.diff_from(first).is_empty()
        first.release()
        second.release()

    def test_diff_wrong_order_rejected(self):
        store, *_ = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"x")
        older = store.snapshot()
        store.write(cid, b"y")
        newer = store.snapshot()
        from repro.errors import SnapshotError

        with pytest.raises(SnapshotError):
            older.diff_from(newer)
        older.release()
        newer.release()

    def test_diff_across_map_growth(self):
        # Writing a chunk id beyond the current map capacity grows the
        # tree; diffing across the growth must still work.
        store, *_ = fresh_store()
        first = store.allocate_chunk_id()
        store.write(first, b"base")
        base = store.snapshot()
        ids = [store.allocate_chunk_id() for _ in range(100)]
        store.commit({cid: b"fill" for cid in ids})
        current = store.snapshot()
        diff = current.diff_from(base)
        assert diff.changed == sorted(ids)
        assert diff.removed == []
        base.release()
        current.release()

    def test_snapshot_iteration_matches_store(self):
        store, *_ = fresh_store()
        ids = [store.allocate_chunk_id() for _ in range(10)]
        store.commit({cid: str(cid).encode() for cid in ids})
        snap = store.snapshot()
        assert list(snap.chunk_ids()) == sorted(ids)
        assert snap.count() == 10
        for cid in ids:
            assert snap.read(cid) == str(cid).encode()
        snap.release()


class TestPropertyBased:
    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from(["write", "overwrite", "dealloc"]),
                st.integers(0, 19),
                st.binary(min_size=0, max_size=120),
                st.booleans(),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_store_matches_dict_model(self, operations):
        store, untrusted, secret, counter, config = fresh_store()
        model = {}
        handles = {}
        for op, slot, data, durable in operations:
            if op in ("write", "overwrite"):
                if slot not in handles:
                    handles[slot] = store.allocate_chunk_id()
                store.write(handles[slot], data, durable=durable)
                model[slot] = data
            elif op == "dealloc" and slot in model:
                store.deallocate(handles[slot])
                del model[slot]
                del handles[slot]
        for slot, data in model.items():
            assert store.read(handles[slot]) == data
        live_ids = {handles[slot] for slot in model}
        assert set(store.chunk_ids()) == live_ids
        # Crash-recover and re-verify (everything was made durable by the
        # last durable commit or will be trimmed consistently).
        store.commit(
            {store.allocate_chunk_id(): b"durability-barrier"}, durable=True
        )
        recovered = ChunkStore.open(untrusted, secret, counter, config)
        for slot, data in model.items():
            assert recovered.read(handles[slot]) == data


class TestIdleMaintenance:
    def test_idle_maintenance_checkpoints_and_cleans(self):
        store, *_ = fresh_store(checkpoint_residual_bytes=1024 * 1024)
        cid = store.allocate_chunk_id()
        for _ in range(300):
            store.write(cid, bytes(500), durable=False)
        assert store.stats().residual_bytes > 0
        report = store.idle_maintenance()
        assert report["checkpointed"]
        stats = store.stats()
        assert stats.residual_bytes == 0
        # Idle cleaning compacted the single-live-chunk database.
        assert stats.capacity_bytes < 100 * 1024
        assert store.read(cid) == bytes(500)

    def test_idle_maintenance_noop_when_tidy(self):
        store, *_ = fresh_store()
        cid = store.allocate_chunk_id()
        store.write(cid, b"x")
        store.idle_maintenance()
        report = store.idle_maintenance()
        assert not report["checkpointed"]
        assert report["segments_freed"] == 0

    def test_recovery_after_idle_maintenance(self):
        store, untrusted, secret, counter, config = fresh_store()
        cids = [store.allocate_chunk_id() for _ in range(10)]
        for index, cid in enumerate(cids):
            store.write(cid, bytes([index]) * 100)
        store.idle_maintenance()
        recovered = ChunkStore.open(untrusted, secret, counter, config)
        for index, cid in enumerate(cids):
            assert recovered.read(cid) == bytes([index]) * 100


class TestThreadSafety:
    def test_concurrent_readers_and_writers(self):
        """The store's internal lock must serialize mixed traffic safely."""
        import threading

        store, *_ = fresh_store(secure=False)
        base_ids = [store.allocate_chunk_id() for _ in range(20)]
        store.commit({cid: b"init" for cid in base_ids})
        errors = []

        def writer(seed):
            rng = random.Random(seed)
            try:
                for index in range(60):
                    cid = rng.choice(base_ids)
                    store.write(cid, b"w%d-%d" % (seed, index), durable=(index % 4 == 0))
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        def reader(seed):
            rng = random.Random(seed)
            try:
                for _ in range(120):
                    data = store.read(rng.choice(base_ids))
                    assert data == b"init" or data.startswith(b"w")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(s,)) for s in range(3)]
        threads += [threading.Thread(target=reader, args=(s,)) for s in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()
        assert errors == []
        # The store is still structurally sound afterwards.
        for cid in base_ids:
            assert store.read(cid)
        store.checkpoint()
