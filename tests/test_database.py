"""Tests for the top-level Database facade (full-stack integration)."""

from __future__ import annotations

import pytest

from repro import (
    ChunkStoreConfig,
    ClassRegistry,
    Database,
    Indexer,
    Persistent,
    BufferReader,
    BufferWriter,
)


class Song(Persistent):
    class_id = "db.song"

    def __init__(self, title="", plays=0):
        self.title = title
        self.plays = plays

    def pickle(self) -> bytes:
        return BufferWriter().write_str(self.title).write_int(self.plays).getvalue()

    @classmethod
    def unpickle(cls, data: bytes) -> "Song":
        reader = BufferReader(data)
        return cls(reader.read_str(), reader.read_int())


def title_indexer():
    return Indexer("song-title", Song, lambda s: s.title, unique=True, kind="btree")


def small_chunk_config():
    return ChunkStoreConfig(
        segment_size=16 * 1024, initial_segments=4, map_fanout=16
    )


class TestInMemoryDatabase:
    def test_full_stack_roundtrip(self):
        with Database.in_memory(chunk_config=small_chunk_config()) as db:
            db.register_class(Song)
            db.register_indexer(title_indexer())
            with db.ctransaction() as ct:
                handle = ct.create_collection("library", title_indexer())
                handle.insert(Song("Blue Train", 3))
                handle.insert(Song("Giant Steps", 5))
            with db.ctransaction() as ct:
                handle = ct.read_collection("library")
                iterator = handle.query_match(title_indexer(), "Giant Steps")
                assert iterator.read().plays == 5
                iterator.close()
                ct.abort()

    def test_object_and_collection_transactions_share_store(self):
        with Database.in_memory(chunk_config=small_chunk_config()) as db:
            db.register_class(Song)
            with db.transaction() as txn:
                oid = txn.insert(Song("Naima", 1))
                txn.set_root(oid)
            with db.transaction() as txn:
                assert txn.open_readonly(txn.get_root()).title == "Naima"
                txn.abort()

    def test_stats_accessible(self):
        with Database.in_memory(chunk_config=small_chunk_config()) as db:
            stats = db.stats()
            assert stats.capacity_bytes > 0

    def test_backup_and_restore_through_facade(self):
        db = Database.in_memory(chunk_config=small_chunk_config())
        db.register_class(Song)
        with db.transaction() as txn:
            oid = txn.insert(Song("So What", 9))
            txn.set_root(oid)
        backups = db.backup_store()
        backups.create_full(db.chunk_store, "full-1")
        with db.transaction() as txn:
            ref = txn.open_writable(oid)
            ref.plays = 10
        backups.create_incremental(db.chunk_store, "incr-1")
        from repro.platform import (
            MemoryOneWayCounter,
            MemorySecretStore,
            MemoryUntrustedStore,
        )

        restored_chunks = backups.restore(
            ["full-1", "incr-1"],
            MemoryUntrustedStore(),
            MemorySecretStore(b"in-memory-demo-secret-0123456789"),
            MemoryOneWayCounter(),
            small_chunk_config(),
        )
        from repro.objectstore import ObjectStore

        restored = ObjectStore.attach(
            restored_chunks, registry=db.object_store.registry
        )
        with restored.transaction() as txn:
            assert txn.open_readonly(txn.get_root()).plays == 10
            txn.abort()
        backups.close()
        db.close()


class TestFileDatabase:
    def test_create_then_open(self, tmp_path):
        directory = str(tmp_path / "db")
        registry = ClassRegistry()
        registry.register(Song)
        db = Database.create(
            directory, chunk_config=small_chunk_config(), registry=registry
        )
        with db.transaction() as txn:
            oid = txn.insert(Song("Round Midnight", 2))
            txn.set_root(oid)
        db.close()
        registry2 = ClassRegistry()
        registry2.register(Song)
        reopened = Database.open_existing(
            directory, chunk_config=small_chunk_config(), registry=registry2
        )
        with reopened.transaction() as txn:
            assert txn.open_readonly(txn.get_root()).title == "Round Midnight"
            txn.abort()
        reopened.close()

    def test_crash_recovery_via_facade(self, tmp_path):
        directory = str(tmp_path / "db")
        registry = ClassRegistry()
        registry.register(Song)
        db = Database.create(
            directory, chunk_config=small_chunk_config(), registry=registry
        )
        with db.transaction() as txn:
            oid = txn.insert(Song("Freddie Freeloader", 4))
            txn.set_root(oid)
        # no close: simulated crash
        registry2 = ClassRegistry()
        registry2.register(Song)
        recovered = Database.open_existing(
            directory, chunk_config=small_chunk_config(), registry=registry2
        )
        with recovered.transaction() as txn:
            assert txn.open_readonly(txn.get_root()).plays == 4
            txn.abort()
        recovered.close()

    def test_replay_attack_on_files_detected(self, tmp_path):
        import shutil

        directory = str(tmp_path / "db")
        registry = ClassRegistry()
        registry.register(Song)
        db = Database.create(
            directory, chunk_config=small_chunk_config(), registry=registry
        )
        with db.transaction() as txn:
            oid = txn.insert(Song("All Blues", 0))
            txn.set_root(oid)
        db.close()
        saved = str(tmp_path / "stolen-copy")
        shutil.copytree(f"{directory}/data", saved)
        registry2 = ClassRegistry()
        registry2.register(Song)
        db = Database.open_existing(
            directory, chunk_config=small_chunk_config(), registry=registry2
        )
        with db.transaction() as txn:
            ref = txn.open_writable(oid)
            ref.plays = 100  # consumption to be erased
        db.close()
        shutil.rmtree(f"{directory}/data")
        shutil.copytree(saved, f"{directory}/data")
        from repro.errors import ReplayDetectedError

        with pytest.raises(ReplayDetectedError):
            Database.open_existing(directory, chunk_config=small_chunk_config())
