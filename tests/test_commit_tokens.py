"""Idempotent commit tokens, session parking/resume, and the
crash-during-commit sweep.

The cache unit tests pin the token lifecycle and both eviction bounds.
The server tests drive parking and resume over real sockets (an
abortive close stands in for a dying network).  The sweep at the end
crashes the media at every write/sync boundary *inside* a tokened
commit and checks the exactly-once contract end to end: the client is
told the truth (*in doubt*, never a false "committed" or a false "safe
to retry"), and after heal-and-recover the reconciled state converges
to exactly one application of the transaction.
"""

from __future__ import annotations

import contextlib
import socket
import struct
import threading
import time
from functools import lru_cache

import pytest

from repro.config import (
    ChunkStoreConfig,
    CollectionStoreConfig,
    ObjectStoreConfig,
)
from repro.db import Database
from repro.errors import (
    CommitInDoubtError,
    LockTimeoutError,
    SessionStateError,
    TDBError,
    TransientStoreError,
)
from repro.platform import (
    MemoryArchivalStore,
    MemoryOneWayCounter,
    MemorySecretStore,
)
from repro.server import BackpressureConfig, TdbClient, TdbServer
from repro.server.commitcache import CommitResultCache
from repro.testing import FaultSchedule, FaultyUntrustedStore
from repro.testing.faults import InjectedCrash


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCommitResultCache:
    def test_token_lifecycle_and_replay(self):
        cache = CommitResultCache(clock=FakeClock())
        assert cache.begin("t") is None           # fresh: caller owns it
        assert cache.begin("t")["status"] == "pending"
        cache.resolve(
            "t",
            {
                "status": "failed",
                "error": "LockTimeoutError",
                "message": "contended",
                "transient": False,
            },
        )
        view = cache.begin("t")                    # a re-sent commit
        assert view["status"] == "failed"
        assert view["error"] == "LockTimeoutError"
        assert cache.replays == 1                  # pending hits don't count
        assert cache.lookup("t")["status"] == "failed"
        assert cache.lookup("never-seen")["status"] == "unknown"
        assert cache.result_misses == 1

    def test_cancel_retracts_only_a_pending_claim(self):
        cache = CommitResultCache(clock=FakeClock())
        assert cache.begin("u") is None
        cache.cancel("u")                          # commit never started
        assert cache.begin("u") is None            # token not poisoned
        cache.resolve("u", {"status": "committed", "durable": True})
        cache.cancel("u")                          # no-op on resolved
        assert cache.lookup("u")["status"] == "committed"

    def test_resolve_rejects_non_terminal_status(self):
        cache = CommitResultCache(clock=FakeClock())
        with pytest.raises(ValueError):
            cache.resolve("t", {"status": "pending"})

    def test_ttl_eviction_measured_from_the_outcome(self):
        clock = FakeClock()
        cache = CommitResultCache(ttl=10.0, clock=clock)
        cache.begin("t")
        clock.now = 8.0
        cache.resolve("t", {"status": "committed", "durable": True})
        clock.now = 17.0                           # 9s after the outcome
        assert cache.lookup("t")["status"] == "committed"
        clock.now = 18.1                           # 10.1s after the outcome
        assert cache.lookup("t")["status"] == "unknown"
        assert cache.evicted_ttl == 1

    def test_capacity_eviction_drops_oldest_resolved_first(self):
        clock = FakeClock()
        cache = CommitResultCache(max_entries=3, ttl=100.0, clock=clock)
        for token in ("a", "b", "c", "d"):
            cache.begin(token)
            cache.resolve(token, {"status": "committed", "durable": True})
        assert cache.lookup("a")["status"] == "unknown"
        assert cache.lookup("d")["status"] == "committed"
        assert cache.evicted_capacity == 1
        assert len(cache) == 3

    def test_pending_entries_survive_capacity_pressure(self):
        clock = FakeClock()
        cache = CommitResultCache(max_entries=2, ttl=100.0, clock=clock)
        cache.begin("inflight-1")
        cache.begin("x")
        cache.resolve("x", {"status": "committed", "durable": True})
        cache.begin("inflight-2")
        cache.begin("inflight-3")  # forces an evict pass over 3 entries
        assert "x" not in cache._entries           # resolved went first
        assert "inflight-1" in cache._entries      # pending spared
        assert cache.evicted_capacity == 1


@contextlib.contextmanager
def running_server(db=None, **server_kwargs):
    db = db or Database.in_memory()
    server = TdbServer(db, **server_kwargs).start()
    try:
        yield server
    finally:
        server.stop()
        db.close()


def connect(server, **kwargs) -> TdbClient:
    host, port = server.address
    return TdbClient(host, port, **kwargs)


def abort_connection(client: TdbClient) -> None:
    """Kill the client's socket with an RST — the wire's view of a
    vanished peer, which is what makes the server park the session."""
    sock, client._sock = client._sock, None
    sock.setsockopt(
        socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
    )
    sock.close()


def wait_for(predicate, timeout=5.0, message="condition never held"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, message
        time.sleep(0.02)


class TestTokenedCommitVerbs:
    def test_resent_commit_token_replays_instead_of_reexecuting(self):
        with running_server() as server:
            with connect(server) as client:
                client.call("begin", mode="object")
                oid = client.call("obj.put", oid=None, value={"n": 1})["oid"]
                first = client.call("commit", durable=True, token="tok-1")
                assert "replayed" not in first
                # The ack was "lost"; the client re-sends the commit.
                second = client.call("commit", durable=True, token="tok-1")
                assert second["replayed"] is True
                assert second["durable"] is True
                payload = client.resolve_commit("tok-1")
                assert payload["status"] == "committed"
                assert payload["epoch"] == server.epoch
                # Applied exactly once.
                client.call("begin", mode="object")
                assert client.call("obj.get", oid=oid)["value"] == {"n": 1}
                client.call("commit")
                stats = client.stats()["resilience"]
                assert stats["commit_replays"] == 1
                assert stats["commit_tokens"]["replays"] == 1

    def test_commit_without_transaction_cancels_the_token(self):
        with running_server() as server:
            with connect(server) as client:
                with pytest.raises(SessionStateError):
                    client.call("commit", token="ghost")
                # The claim was retracted, not left dangling as pending.
                assert client.resolve_commit("ghost")["status"] == "unknown"

    def test_commit_result_requires_a_string_token(self):
        from repro.errors import ProtocolError

        with running_server() as server:
            with connect(server) as client:
                with pytest.raises(ProtocolError):
                    client.call("commit.result", token=7)


class TestSessionParking:
    GRACE = BackpressureConfig(resume_grace=5.0, idle_timeout=30.0)

    def test_dropped_session_parks_and_resumes_with_locks_intact(self):
        db = Database.in_memory(
            object_config=ObjectStoreConfig(lock_timeout=0.2)
        )
        with running_server(db=db, backpressure=self.GRACE) as server:
            client = connect(server)
            begin = client.call("begin", mode="object")
            token = begin["session"]
            oid = client.call("obj.put", oid=None, value={"stage": 1})["oid"]
            abort_connection(client)
            wait_for(
                lambda: server.stats_payload()["resilience"]["parked_sessions"] == 1,
                message="the dropped session never parked",
            )

            # The parked transaction still owns its write lock.
            with connect(server) as rival:
                rival.call("begin", mode="object")
                with pytest.raises(LockTimeoutError):
                    rival.call("obj.put", oid=oid, value={"stage": "rival"})
                rival.call("abort")

            with connect(server) as successor:
                resumed = successor.call("session.resume", session=token)
                assert resumed == {
                    "resumed": True,
                    "txn_open": True,
                    "mode": "object",
                    "epoch": server.epoch,
                }
                successor.call("obj.put", oid=oid, value={"stage": 2})
                successor.call("commit")
                successor.call("begin", mode="object")
                assert successor.call("obj.get", oid=oid)["value"] == {
                    "stage": 2
                }
                successor.call("commit")
                resilience = successor.stats()["resilience"]
            assert resilience["sessions_parked"] == 1
            assert resilience["sessions_resumed"] == 1
            assert resilience["parked_sessions"] == 0
            # The counters also flow through the PerfStats mirror.
            perf = server.stats_payload()["io"]["perf"]["counters"]
            assert perf["srv_sessions_parked"] == 1
            assert perf["srv_sessions_resumed"] == 1

    def test_resume_token_is_single_use(self):
        with running_server(backpressure=self.GRACE) as server:
            client = connect(server)
            token = client.call("begin", mode="object")["session"]
            abort_connection(client)
            wait_for(
                lambda: server.stats_payload()["resilience"]["parked_sessions"] == 1,
                message="the dropped session never parked",
            )
            with connect(server) as successor:
                assert successor.call("session.resume", session=token)["resumed"]
                with connect(server) as impostor:
                    with pytest.raises(SessionStateError):
                        impostor.call("session.resume", session=token)
                successor.call("abort")

    def test_grace_expiry_aborts_and_releases_locks(self):
        config = BackpressureConfig(resume_grace=0.25, idle_timeout=30.0)
        db = Database.in_memory(
            object_config=ObjectStoreConfig(lock_timeout=2.0)
        )
        with running_server(db=db, backpressure=config) as server:
            setup = connect(server)
            setup.call("begin", mode="object")
            oid = setup.call("obj.put", oid=None, value={"v": 1})["oid"]
            setup.call("commit")
            token = setup.call("begin", mode="object")["session"]
            setup.call("obj.put", oid=oid, value={"v": "doomed"})
            abort_connection(setup)
            wait_for(
                lambda: server.stats_payload()["resilience"]["grace_expired"] >= 1,
                message="the parked session never expired",
            )
            with connect(server) as client:
                with pytest.raises(SessionStateError):
                    client.call("session.resume", session=token)
                # The expired transaction was aborted: lock free, write gone.
                client.call("begin", mode="object")
                assert client.call("obj.get", oid=oid)["value"] == {"v": 1}
                client.call("obj.put", oid=oid, value={"v": 2})
                client.call("commit")
            resilience = server.stats_payload()["resilience"]
            assert resilience["grace_expired"] >= 1
            assert resilience["resume_failures"] >= 1

    def test_zero_grace_disables_parking(self):
        config = BackpressureConfig(resume_grace=0.0)
        with running_server(backpressure=config) as server:
            client = connect(server)
            token = client.call("begin", mode="object")["session"]
            abort_connection(client)
            time.sleep(0.2)
            assert server.stats_payload()["resilience"]["sessions_parked"] == 0
            with connect(server) as successor:
                with pytest.raises(SessionStateError):
                    successor.call("session.resume", session=token)


# ---------------------------------------------------------------------------
# Crash-during-commit sweep
# ---------------------------------------------------------------------------

_SECRET = b"commit-token-crash-secret-012345"
_TOKEN = "crash-sweep-token"


@contextlib.contextmanager
def _quiet_injected_crashes():
    """Session threads die of InjectedCrash by design here; keep their
    tracebacks out of the test output."""
    original = threading.excepthook

    def hook(args):
        if not (
            args.exc_type is not None
            and issubclass(args.exc_type, InjectedCrash)
        ):
            original(args)

    threading.excepthook = hook
    try:
        yield
    finally:
        threading.excepthook = original


def _crash_db(untrusted, counter, archival, fresh):
    return Database._assemble(
        untrusted,
        MemorySecretStore(_SECRET),
        counter,
        archival,
        ChunkStoreConfig(fsync=True),
        ObjectStoreConfig(),
        CollectionStoreConfig(),
        None,
        fresh=fresh,
    )


def _tokened_workload(schedule=None):
    """Begin, put, bind — then a tokened commit over the faulty medium.

    Returns the pieces a sweep point judges: the medium, the surviving
    trusted state, whether the commit was acknowledged, the error (if
    any), and the server epoch the client began under.
    """
    untrusted = FaultyUntrustedStore(schedule=schedule)
    counter = MemoryOneWayCounter()
    archival = MemoryArchivalStore()
    db = _crash_db(untrusted, counter, archival, fresh=True)
    server = TdbServer(db).start()
    epoch = server.epoch
    client = connect(
        server, retry_delay=0.02, resolve_timeout=0.6, resume_sessions=False
    )
    acknowledged = False
    error = None
    marker = None
    try:
        client.call("begin", mode="object")
        oid = client.call("obj.put", oid=None, value={"marker": "crash"})["oid"]
        client.call("name.bind", name="crash-marker", oid=oid)
        marker = (untrusted.total_writes, untrusted.total_syncs)
        try:
            client.call("commit", durable=True, token=_TOKEN)
            acknowledged = True
        except TDBError as exc:
            error = exc
    finally:
        if error is not None:
            # The client is in doubt: commit.result must say *pending*
            # (the crash interrupted the commit, nobody resolved it),
            # and settling must end in CommitInDoubtError — never a
            # false "committed" and never a false "safe to retry".
            assert client.resolve_commit(_TOKEN)["status"] == "pending"
            with pytest.raises(CommitInDoubtError):
                client._settle_commit(_TOKEN, epoch, error)
        client.close()
        with contextlib.suppress(BaseException):
            server.stop()
        with contextlib.suppress(BaseException):
            db.close()
    return untrusted, counter, archival, acknowledged, error, epoch, marker


@lru_cache(maxsize=None)
def _commit_profile():
    """(write points, sync points) of the tokened commit itself."""
    untrusted, _, _, acknowledged, error, _, marker = _tokened_workload()
    assert acknowledged and error is None
    w0, s0 = marker
    write_points = list(range(w0 + 1, untrusted.total_writes + 1))
    sync_points = list(range(s0 + 1, untrusted.total_syncs + 1))
    assert write_points, "the commit performed no media writes?"
    assert sync_points, "a durable commit performed no syncs?"
    return write_points, sync_points


def _sweep_point(schedule: FaultSchedule) -> None:
    with _quiet_injected_crashes():
        untrusted, counter, archival, acknowledged, error, epoch, _ = (
            _tokened_workload(schedule)
        )
    assert untrusted.crashed, "the scheduled crash point never fired"
    # Late points fire after durability (the commit was acknowledged
    # before the medium died); early points leave the client in doubt.
    if not acknowledged:
        assert isinstance(error, TransientStoreError), f"unexpected: {error!r}"

    # Power back on: heal the medium, recover, serve under a NEW epoch.
    untrusted.heal()
    db = _crash_db(untrusted, counter, archival, fresh=False)
    with running_server(db=db) as server:
        assert server.epoch != epoch
        with connect(server) as client:
            # The restarted server has honestly lost the token cache:
            # unknown + changed epoch = in doubt, not safe-to-retry.
            payload = client.resolve_commit(_TOKEN)
            assert payload["status"] == "unknown"
            assert payload["epoch"] != epoch
            if not acknowledged:
                with pytest.raises(CommitInDoubtError):
                    client._settle_commit(_TOKEN, epoch, error)

            # Reconciliation: the on-disk truth is all-or-nothing.
            client.call("begin", mode="object")
            oid = client.call("name.lookup", name="crash-marker")["oid"]
            if oid is not None:
                value = client.call("obj.get", oid=oid)["value"]
                assert value == {"marker": "crash"}
            client.call("commit")
            if acknowledged:
                # An acknowledged commit must survive recovery: a lost-
                # but-reported-committed transaction is the one outcome
                # the protocol may never produce.
                assert oid is not None, "acked commit vanished on recovery"

            # Converge: re-apply only if the commit provably never
            # landed; afterwards the marker exists exactly once.
            if oid is None:
                with client.transaction() as txn:
                    txn.bind("crash-marker", txn.put({"marker": "crash"}))
            client.call("begin", mode="object")
            final = client.call("name.lookup", name="crash-marker")["oid"]
            assert final is not None
            assert client.call("obj.get", oid=final)["value"] == {
                "marker": "crash"
            }
            client.call("commit")


def _write_params():
    return [pytest.param(i, id=f"write{i}") for i in _commit_profile()[0]]


def _sync_params():
    return [pytest.param(i, id=f"sync{i}") for i in _commit_profile()[1]]


class TestCrashDuringTokenedCommit:
    """Every media boundary inside a tokened commit, end to end."""

    @pytest.mark.parametrize("index", _write_params())
    def test_crash_after_write(self, index):
        _sweep_point(FaultSchedule().crash_after_write(index))

    @pytest.mark.parametrize("index", _sync_params())
    def test_crash_after_sync(self, index):
        _sweep_point(FaultSchedule().crash_after_sync(index))
