"""Tests for the from-scratch cryptographic substrate."""

from __future__ import annotations

import hashlib
import hmac as stdlib_hmac

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import modes
from repro.crypto.aes import Aes
from repro.crypto.cipher import (
    create_payload_cipher,
)
from repro.crypto.des import Des, TripleDes
from repro.crypto.hashes import HashlibEngine, PureSha1Engine, create_hash_engine
from repro.crypto.mac import Hmac, create_mac
from repro.crypto.sha1 import Sha1, sha1
from repro.errors import CryptoError


class TestSha1:
    def test_empty_vector(self):
        assert sha1(b"").hex() == "da39a3ee5e6b4b0d3255bfef95601890afd80709"

    def test_abc_vector(self):
        assert sha1(b"abc").hex() == "a9993e364706816aba3e25717850c26c9cd0d89d"

    def test_two_block_vector(self):
        message = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert sha1(message).hex() == "84983e441c3bd26ebaae4aa1f95129e5e54670f1"

    @pytest.mark.parametrize("length", [1, 55, 56, 57, 63, 64, 65, 127, 128, 1000])
    def test_matches_hashlib_at_padding_boundaries(self, length):
        data = bytes(range(256)) * 4
        data = data[:length]
        assert sha1(data) == hashlib.sha1(data).digest()

    def test_incremental_update_equals_one_shot(self):
        h = Sha1()
        h.update(b"ab")
        h.update(b"c")
        assert h.digest() == sha1(b"abc")

    def test_digest_does_not_consume_state(self):
        h = Sha1(b"ab")
        first = h.digest()
        assert h.digest() == first
        h.update(b"c")
        assert h.digest() == sha1(b"abc")

    def test_copy_is_independent(self):
        h = Sha1(b"ab")
        clone = h.copy()
        clone.update(b"c")
        assert h.digest() == sha1(b"ab")
        assert clone.digest() == sha1(b"abc")

    @given(st.binary(max_size=512))
    @settings(max_examples=50)
    def test_property_matches_hashlib(self, data):
        assert sha1(data) == hashlib.sha1(data).digest()


class TestDes:
    def test_classic_vector(self):
        cipher = Des(bytes.fromhex("133457799BBCDFF1"))
        ciphertext = cipher.encrypt_block(bytes.fromhex("0123456789ABCDEF"))
        assert ciphertext.hex().upper() == "85E813540F0AB405"

    def test_decrypt_inverts_encrypt(self):
        cipher = Des(b"8bytekey")
        block = b"\x00\x11\x22\x33\x44\x55\x66\x77"
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_weak_key_is_involution(self):
        # With the all-ones weak key, encryption is its own inverse.
        cipher = Des(b"\xfe" * 8)
        block = b"datadata"
        assert cipher.encrypt_block(cipher.encrypt_block(block)) == block

    def test_rejects_bad_key_size(self):
        with pytest.raises(CryptoError):
            Des(b"short")

    def test_rejects_bad_block_size(self):
        with pytest.raises(CryptoError):
            Des(b"8bytekey").encrypt_block(b"tiny")


class TestTripleDes:
    def test_three_equal_keys_degenerate_to_single_des(self):
        key = b"A1b2C3d4"
        block = b"blockdat"
        assert TripleDes(key * 3).encrypt_block(block) == Des(key).encrypt_block(block)

    def test_two_key_variant_expands_k1(self):
        key = b"A1b2C3d4" + b"E5f6G7h8"
        block = b"blockdat"
        assert (
            TripleDes(key).encrypt_block(block)
            == TripleDes(key + key[:8]).encrypt_block(block)
        )

    def test_roundtrip(self):
        cipher = TripleDes(bytes(range(24)))
        block = b"\xffrecord!"
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_rejects_bad_key_size(self):
        with pytest.raises(CryptoError):
            TripleDes(b"way-too-short")


class TestAes:
    FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

    @pytest.mark.parametrize(
        "key_hex,expected_hex",
        [
            (
                "000102030405060708090a0b0c0d0e0f",
                "69c4e0d86a7b0430d8cdb78070b4c55a",
            ),
            (
                "000102030405060708090a0b0c0d0e0f1011121314151617",
                "dda97ca4864cdfe06eaf70a0ec0d7191",
            ),
            (
                "000102030405060708090a0b0c0d0e0f"
                "101112131415161718191a1b1c1d1e1f",
                "8ea2b7ca516745bfeafc49904b496089",
            ),
        ],
    )
    def test_fips197_appendix_c(self, key_hex, expected_hex):
        cipher = Aes(bytes.fromhex(key_hex))
        assert cipher.encrypt_block(self.FIPS_PLAINTEXT).hex() == expected_hex
        assert (
            cipher.decrypt_block(bytes.fromhex(expected_hex)) == self.FIPS_PLAINTEXT
        )

    def test_rejects_bad_key_size(self):
        with pytest.raises(CryptoError):
            Aes(b"not-a-key-size!")

    def test_rejects_bad_block(self):
        with pytest.raises(CryptoError):
            Aes(b"0" * 16).encrypt_block(b"short")

    @given(st.binary(min_size=16, max_size=16))
    @settings(max_examples=25)
    def test_property_roundtrip(self, block):
        cipher = Aes(b"\x42" * 16)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


class TestModes:
    def test_pkcs7_always_pads(self):
        assert modes.pkcs7_pad(b"", 8) == b"\x08" * 8
        assert modes.pkcs7_pad(b"1234567", 8) == b"1234567\x01"

    def test_pkcs7_unpad_validates(self):
        with pytest.raises(CryptoError):
            modes.pkcs7_unpad(b"12345678", 8)  # '8' is not a valid pad
        with pytest.raises(CryptoError):
            modes.pkcs7_unpad(b"1234567\x03", 8)  # inconsistent padding

    @given(st.binary(max_size=200))
    @settings(max_examples=50)
    def test_property_pkcs7_roundtrip(self, data):
        padded = modes.pkcs7_pad(data, 16)
        assert len(padded) % 16 == 0
        assert modes.pkcs7_unpad(padded, 16) == data

    def test_cbc_roundtrip_with_explicit_iv(self):
        cipher = Aes(b"k" * 16)
        data = b"the quick brown fox"
        encrypted = modes.cbc_encrypt(cipher, data, iv=b"\x01" * 16)
        assert modes.cbc_decrypt(cipher, encrypted) == data

    def test_cbc_random_iv_randomizes_ciphertext(self):
        cipher = Aes(b"k" * 16)
        assert modes.cbc_encrypt(cipher, b"data") != modes.cbc_encrypt(cipher, b"data")

    def test_cbc_rejects_truncated_ciphertext(self):
        cipher = Aes(b"k" * 16)
        with pytest.raises(CryptoError):
            modes.cbc_decrypt(cipher, b"\x00" * 16)

    def test_ctr_is_self_inverse_and_length_preserving(self):
        cipher = Aes(b"k" * 16)
        data = b"x" * 100
        encrypted = modes.ctr_transform(cipher, data, b"nonce")
        assert len(encrypted) == len(data)
        assert modes.ctr_transform(cipher, encrypted, b"nonce") == data

    def test_ctr_rejects_oversized_nonce(self):
        cipher = Aes(b"k" * 16)
        with pytest.raises(CryptoError):
            modes.ctr_transform(cipher, b"data", b"n" * 13)


class TestHashEngines:
    def test_pure_and_hashlib_sha1_agree(self):
        data = b"merkle node contents"
        assert PureSha1Engine().digest(data) == HashlibEngine("sha1").digest(data)

    def test_factory_names(self):
        assert create_hash_engine("sha1").digest_size == 20
        assert create_hash_engine("sha1-pure").digest_size == 20
        assert create_hash_engine("sha256").digest_size == 32
        with pytest.raises(ValueError):
            create_hash_engine("md5ish")

    def test_digest_many_is_concatenation(self):
        engine = create_hash_engine("sha1")
        assert engine.digest_many(b"a", b"b") == engine.digest(b"ab")


class TestHmac:
    def test_matches_stdlib(self):
        key = b"secret-key-material--"
        mac = create_mac(key, "sha1")
        expected = stdlib_hmac.new(key, b"message", hashlib.sha1).digest()
        assert mac.tag(b"message") == expected

    def test_long_key_is_hashed_first(self):
        key = b"K" * 100
        mac = create_mac(key, "sha1")
        expected = stdlib_hmac.new(key, b"m", hashlib.sha1).digest()
        assert mac.tag(b"m") == expected

    def test_verify_accepts_and_rejects(self):
        mac = create_mac(b"0123456789abcdef", "sha1")
        tag = mac.tag(b"payload")
        assert mac.verify(b"payload", tag)
        assert not mac.verify(b"payload2", tag)
        assert not mac.verify(b"payload", bytes(len(tag)))

    def test_empty_key_rejected(self):
        with pytest.raises(CryptoError):
            Hmac(b"", create_hash_engine("sha1"))


class TestPayloadCiphers:
    @pytest.mark.parametrize("name", ["aes-128", "aes-192", "aes-256", "des", "3des"])
    def test_roundtrip_various_lengths(self, name):
        cipher = create_payload_cipher(name, bytes(range(32)))
        for length in (0, 1, 7, 8, 15, 16, 17, 255):
            plaintext = bytes(range(256))[:length]
            assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext

    def test_null_cipher_is_identity(self):
        cipher = create_payload_cipher("null", b"")
        assert cipher.encrypt(b"abc") == b"abc"
        assert cipher.ciphertext_overhead(100) == 0

    def test_overhead_prediction_is_exact(self):
        cipher = create_payload_cipher("aes-128", bytes(16))
        for length in (0, 1, 15, 16, 17, 100):
            encrypted = cipher.encrypt(bytes(length))
            assert len(encrypted) == length + cipher.ciphertext_overhead(length)

    def test_unknown_cipher_rejected(self):
        with pytest.raises(ValueError):
            create_payload_cipher("rot13", b"key")

    def test_short_key_rejected(self):
        with pytest.raises(CryptoError):
            create_payload_cipher("aes-256", b"short")

    def test_tampered_ciphertext_fails_or_differs(self):
        cipher = create_payload_cipher("aes-128", bytes(16))
        encrypted = bytearray(cipher.encrypt(b"A" * 32))
        encrypted[-1] ^= 0xFF
        # Either padding validation trips or the plaintext changes; the
        # Merkle tree above this layer is what guarantees detection.
        try:
            result = cipher.decrypt(bytes(encrypted))
        except CryptoError:
            return
        assert result != b"A" * 32
