"""Tests for the platform substrates (untrusted/secret/counter/archival)."""

from __future__ import annotations

import threading


import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StoreError
from repro.platform import (
    Attacker,
    FileArchivalStore,
    FileOneWayCounter,
    FileSecretStore,
    FileUntrustedStore,
    MemoryArchivalStore,
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)


@pytest.fixture(params=["memory", "file"])
def any_untrusted(request, tmp_path):
    if request.param == "memory":
        return MemoryUntrustedStore()
    return FileUntrustedStore(str(tmp_path / "untrusted"))


@pytest.fixture(params=["memory", "file"])
def any_archival(request, tmp_path):
    if request.param == "memory":
        return MemoryArchivalStore()
    return FileArchivalStore(str(tmp_path / "archive"))


class TestUntrustedStore:
    def test_write_then_read(self, any_untrusted):
        any_untrusted.write("seg-0", 0, b"hello")
        assert any_untrusted.read("seg-0") == b"hello"
        assert any_untrusted.read("seg-0", 1, 3) == b"ell"

    def test_write_past_end_zero_fills(self, any_untrusted):
        any_untrusted.write("f", 4, b"xy")
        assert any_untrusted.read("f") == b"\x00\x00\x00\x00xy"
        assert any_untrusted.size("f") == 6

    def test_overwrite_in_place(self, any_untrusted):
        any_untrusted.write("f", 0, b"abcdef")
        any_untrusted.write("f", 2, b"XY")
        assert any_untrusted.read("f") == b"abXYef"

    def test_append_returns_offset(self, any_untrusted):
        assert any_untrusted.append("f", b"abc") == 0
        assert any_untrusted.append("f", b"de") == 3
        assert any_untrusted.read("f") == b"abcde"

    def test_truncate_shrinks_and_grows(self, any_untrusted):
        any_untrusted.write("f", 0, b"abcdef")
        any_untrusted.truncate("f", 3)
        assert any_untrusted.read("f") == b"abc"
        any_untrusted.truncate("f", 5)
        assert any_untrusted.read("f") == b"abc\x00\x00"

    def test_list_and_delete(self, any_untrusted):
        any_untrusted.write("b", 0, b"1")
        any_untrusted.write("a", 0, b"2")
        assert any_untrusted.list_files() == ["a", "b"]
        any_untrusted.delete("a")
        assert any_untrusted.list_files() == ["b"]
        assert not any_untrusted.exists("a")

    def test_missing_file_errors(self, any_untrusted):
        with pytest.raises(StoreError):
            any_untrusted.read("missing")
        with pytest.raises(StoreError):
            any_untrusted.delete("missing")
        with pytest.raises(StoreError):
            any_untrusted.size("missing")

    def test_total_bytes(self, any_untrusted):
        any_untrusted.write("a", 0, b"12345")
        any_untrusted.write("b", 0, b"123")
        assert any_untrusted.total_bytes() == 8

    def test_io_stats_accumulate(self, any_untrusted):
        any_untrusted.write("f", 0, b"abcd")
        any_untrusted.read("f")
        any_untrusted.sync("f")
        stats = any_untrusted.stats
        assert stats.bytes_written == 4
        assert stats.bytes_read == 4
        assert stats.write_calls == 1
        assert stats.read_calls == 1
        assert stats.sync_calls == 1

    def test_file_store_rejects_path_escape(self, tmp_path):
        store = FileUntrustedStore(str(tmp_path / "u"))
        with pytest.raises(StoreError):
            store.write("../evil", 0, b"x")
        with pytest.raises(StoreError):
            store.read("..")

    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 64), st.binary(min_size=1, max_size=16)),
            max_size=20,
        )
    )
    @settings(max_examples=30)
    def test_property_memory_matches_reference_model(self, ops):
        store = MemoryUntrustedStore()
        model = bytearray()
        for offset, data in ops:
            store.write("f", offset, data)
            if offset > len(model):
                model.extend(b"\x00" * (offset - len(model)))
            model[offset:offset + len(data)] = data
        if ops:
            assert store.read("f") == bytes(model)


class TestSecretStore:
    def test_memory_secret_roundtrip(self):
        store = MemorySecretStore(b"0123456789abcdef")
        assert store.read_secret() == b"0123456789abcdef"

    def test_short_secret_rejected(self):
        with pytest.raises(StoreError):
            MemorySecretStore(b"short")

    def test_generate_produces_distinct_secrets(self):
        a = MemorySecretStore.generate().read_secret()
        b = MemorySecretStore.generate().read_secret()
        assert a != b
        assert len(a) == 32

    def test_derived_keys_differ_by_purpose(self):
        store = MemorySecretStore(b"0123456789abcdef")
        enc = store.derive_key("encryption", 16)
        mac = store.derive_key("mac", 16)
        assert enc != mac
        assert len(enc) == len(mac) == 16

    def test_derivation_is_deterministic(self):
        store = MemorySecretStore(b"0123456789abcdef")
        assert store.derive_key("p", 48) == store.derive_key("p", 48)

    def test_derive_key_rejects_nonpositive_length(self):
        store = MemorySecretStore(b"0123456789abcdef")
        with pytest.raises(ValueError):
            store.derive_key("p", 0)

    def test_file_secret_store(self, tmp_path):
        path = str(tmp_path / "secret.key")
        created = FileSecretStore(path, create=True)
        reopened = FileSecretStore(path)
        assert created.read_secret() == reopened.read_secret()

    def test_file_secret_store_missing(self, tmp_path):
        with pytest.raises(StoreError):
            FileSecretStore(str(tmp_path / "absent.key"))


class TestOneWayCounter:
    def test_memory_counter_increments(self):
        counter = MemoryOneWayCounter()
        assert counter.read() == 0
        assert counter.increment() == 1
        assert counter.increment() == 2
        assert counter.read() == 2

    def test_file_counter_persists(self, tmp_path):
        path = str(tmp_path / "counter")
        counter = FileOneWayCounter(path)
        counter.increment()
        counter.increment()
        reopened = FileOneWayCounter(path)
        assert reopened.read() == 2

    def test_file_counter_detects_regression(self, tmp_path):
        path = str(tmp_path / "counter")
        counter = FileOneWayCounter(path)
        counter.increment()
        counter.increment()
        with open(path, "wb") as handle:
            handle.write(b"0")
        with pytest.raises(StoreError):
            counter.read()

    def test_file_counter_rejects_garbage(self, tmp_path):
        path = str(tmp_path / "counter")
        with open(path, "wb") as handle:
            handle.write(b"not-a-number")
        with pytest.raises(StoreError):
            FileOneWayCounter(path)


class TestArchivalStore:
    def test_stream_roundtrip(self, any_archival):
        writer = any_archival.create_stream("backup-1")
        writer.write(b"part one, ")
        writer.write(b"part two")
        writer.close()
        with any_archival.open_stream("backup-1") as reader:
            assert reader.read() == b"part one, part two"

    def test_create_existing_fails(self, any_archival):
        any_archival.create_stream("s").close()
        with pytest.raises(StoreError):
            any_archival.create_stream("s")

    def test_open_missing_fails(self, any_archival):
        with pytest.raises(StoreError):
            any_archival.open_stream("missing")

    def test_list_and_delete(self, any_archival):
        any_archival.create_stream("b").close()
        any_archival.create_stream("a").close()
        assert any_archival.list_streams() == ["a", "b"]
        any_archival.delete_stream("a")
        assert any_archival.list_streams() == ["b"]
        assert not any_archival.exists("a")

    def test_memory_corrupt_changes_bytes(self):
        store = MemoryArchivalStore()
        writer = store.create_stream("s")
        writer.write(b"AAAA")
        writer.close()
        store.corrupt("s", 1, b"ZZ")
        with store.open_stream("s") as reader:
            assert reader.read() == b"AZZA"


class TestAttacker:
    def test_dump_and_search(self):
        store = MemoryUntrustedStore()
        store.write("f", 0, b"contains-plaintext-meter")
        attacker = Attacker(store)
        assert attacker.search_plaintext(b"plaintext") == ["f"]
        assert attacker.search_plaintext(b"absent") == []

    def test_flip_bit(self):
        store = MemoryUntrustedStore()
        store.write("f", 0, b"\x00\x00")
        Attacker(store).flip_bit("f", 1, bit=3)
        assert store.read("f") == b"\x00\x08"

    def test_flip_bit_bounds(self):
        store = MemoryUntrustedStore()
        store.write("f", 0, b"ab")
        attacker = Attacker(store)
        with pytest.raises(StoreError):
            attacker.flip_bit("f", 5)
        with pytest.raises(ValueError):
            attacker.flip_bit("f", 0, bit=9)

    def test_replay_image_restores_old_state(self):
        store = MemoryUntrustedStore()
        store.write("db", 0, b"version-1")
        attacker = Attacker(store)
        image = attacker.save_image()
        store.write("db", 0, b"version-2")
        store.write("new", 0, b"added-later")
        attacker.replay_image(image)
        assert store.read("db") == b"version-1"
        assert not store.exists("new")

    def test_splice(self):
        store = MemoryUntrustedStore()
        store.write("a", 0, b"AAAA")
        store.write("b", 0, b"BB")
        Attacker(store).splice("a", "b")
        assert store.read("b") == b"AAAA"

    def test_traffic_profile_reports_changed_bytes(self):
        store = MemoryUntrustedStore()
        store.write("f", 0, b"AAAA")
        attacker = Attacker(store)
        before = attacker.dump()
        store.write("f", 2, b"ZZ")
        profile = attacker.traffic_profile(before)
        assert profile == {"f": 2}


class TestStagedArchivalStore:
    def _make(self):
        from repro.platform import (
            MemoryArchivalStore,
            MemoryUntrustedStore,
            StagedArchivalStore,
        )

        local = MemoryUntrustedStore()
        remote = MemoryArchivalStore()
        return StagedArchivalStore(local, remote), local, remote

    def test_stream_lands_in_staging(self):
        staged, local, remote = self._make()
        writer = staged.create_stream("b1")
        writer.write(b"backup-bytes")
        writer.close()
        assert staged.staged_streams() == ["b1"]
        assert remote.list_streams() == []
        with staged.open_stream("b1") as reader:
            assert reader.read() == b"backup-bytes"

    def test_migrate_moves_to_remote(self):
        staged, local, remote = self._make()
        for name in ("b1", "b2"):
            writer = staged.create_stream(name)
            writer.write(name.encode())
            writer.close()
        assert staged.migrate() == ["b1", "b2"]
        assert staged.staged_streams() == []
        assert remote.list_streams() == ["b1", "b2"]
        # Reads fall through to the remote transparently.
        with staged.open_stream("b2") as reader:
            assert reader.read() == b"b2"

    def test_migrate_limit(self):
        staged, local, remote = self._make()
        for name in ("a", "b", "c"):
            staged.create_stream(name).close()
        assert staged.migrate(limit=2) == ["a", "b"]
        assert staged.staged_streams() == ["c"]

    def test_migrate_is_idempotent_after_partial_crash(self):
        staged, local, remote = self._make()
        writer = staged.create_stream("b1")
        writer.write(b"data")
        writer.close()
        # Simulate a crash after the remote write, before staging cleanup:
        remote_writer = remote.create_stream("b1")
        remote_writer.write(b"data")
        remote_writer.close()
        assert staged.migrate() == ["b1"]  # no duplicate-create error
        with staged.open_stream("b1") as reader:
            assert reader.read() == b"data"

    def test_duplicate_create_rejected_across_tiers(self):
        from repro.errors import StoreError

        staged, local, remote = self._make()
        staged.create_stream("x").close()
        with pytest.raises(StoreError):
            staged.create_stream("x")
        staged.migrate()
        with pytest.raises(StoreError):
            staged.create_stream("x")  # now exists remotely

    def test_delete_covers_both_tiers(self):
        from repro.errors import StoreError

        staged, local, remote = self._make()
        staged.create_stream("x").close()
        staged.delete_stream("x")
        assert not staged.exists("x")
        with pytest.raises(StoreError):
            staged.delete_stream("x")

    def test_backup_store_over_staging(self, secret_store):
        """End-to-end: backups created into staging restore after migration."""
        from repro.backupstore import BackupStore
        from repro.chunkstore import ChunkStore
        from repro.config import ChunkStoreConfig
        from repro.platform import MemoryOneWayCounter, MemoryUntrustedStore

        config = ChunkStoreConfig(segment_size=8 * 1024, initial_segments=3)
        store = ChunkStore.format(
            MemoryUntrustedStore(), secret_store, MemoryOneWayCounter(), config
        )
        cid = store.allocate_chunk_id()
        store.write(cid, b"staged-backup-state")
        staged, local, remote = self._make()
        backups = BackupStore(staged, secret_store)
        backups.create_full(store, "full-1")
        assert staged.staged_streams() == ["full-1"]
        staged.migrate()
        restored = backups.restore(
            ["full-1"],
            MemoryUntrustedStore(),
            secret_store,
            MemoryOneWayCounter(),
            config,
        )
        assert restored.read(cid) == b"staged-backup-state"
        backups.close()


class TestIOStatsThreadSafety:
    """Concurrent sessions drive one platform store: bare ``+=`` on the
    counters would drop increments under contention, so IOStats takes a
    lock.  Exact totals across racing threads prove it holds."""

    THREADS = 8
    OPS = 2_000

    def test_concurrent_increments_are_exact(self):
        from repro.platform.iostats import IOStats

        stats = IOStats()
        barrier = threading.Barrier(self.THREADS)

        def hammer():
            barrier.wait()
            for _ in range(self.OPS):
                stats.record_read(3)
                stats.record_write(5, name="seg", offset=0)
                stats.record_sync()
                stats.record_retry()

        threads = [threading.Thread(target=hammer) for _ in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        total = self.THREADS * self.OPS
        snap = stats.snapshot()
        assert snap.read_calls == total
        assert snap.bytes_read == 3 * total
        assert snap.write_calls == total
        assert snap.bytes_written == 5 * total
        assert snap.sync_calls == total
        assert snap.transient_retries == total

    def test_snapshot_and_delta_are_detached(self):
        from repro.platform.iostats import IOStats

        stats = IOStats()
        stats.record_read(10)
        before = stats.snapshot()
        stats.record_read(10)
        delta = stats.delta_since(before)
        assert (delta.read_calls, delta.bytes_read) == (1, 10)
        before.record_read(1)  # mutating the copy leaves the original alone
        assert stats.snapshot().read_calls == 2

    def test_as_dict_is_json_able(self):
        import json

        from repro.platform.iostats import IOStats

        stats = IOStats()
        stats.record_write(7, name="f", offset=0)
        payload = stats.as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["write_calls"] == 1
