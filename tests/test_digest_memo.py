"""Digest-memo semantics: when scrub may skip re-hashing, and when not.

The memo remembers which exact payload versions (chunk id or map-node
coordinate -> Locator) already verified, so an *incremental* scrub
(``deep=False``) re-hashes only what changed.  These tests pin the
safety boundary: rewrites stale old entries automatically, deallocation
and repair invalidate explicitly, salvage carries no memo at all, and
the default deep scrub ignores the memo entirely — media tampering
after the last verification is only ever caught deep.
"""

from __future__ import annotations

from repro.chunkstore import ChunkStore
from repro.chunkstore.digestmemo import DigestMemo
from repro.chunkstore.format import Locator
from repro.config import ChunkStoreConfig, SecurityProfile
from repro.platform import (
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)

from tests.test_scrub_repair import baseline

CONFIG = ChunkStoreConfig(
    segment_size=8192,
    initial_segments=2,
    map_fanout=8,
    security=SecurityProfile(),
)


def _store(config: ChunkStoreConfig = CONFIG):
    untrusted = MemoryUntrustedStore()
    secret = MemorySecretStore(b"digest-memo-secret-0123456789abc")
    counter = MemoryOneWayCounter()
    return ChunkStore.format(untrusted, secret, counter, config), untrusted


def _write_chunks(store, count=20, size=120):
    writes = {}
    for i in range(count):
        cid = store.allocate_chunk_id()
        writes[cid] = bytes((i * 17 + j) % 256 for j in range(size + i))
    store.commit(writes, durable=True)
    store.checkpoint(force=True)
    return writes


# ---------------------------------------------------------------------------
# Unit behaviour of the memo itself
# ---------------------------------------------------------------------------


class TestDigestMemoUnit:
    def _loc(self, seg, off):
        return Locator(segment=seg, offset=off, length=10, hash_value=b"h" * 20)

    def test_entry_valid_only_for_exact_locator(self):
        memo = DigestMemo()
        loc = self._loc(1, 100)
        memo.note_chunk(7, loc)
        assert memo.chunk_verified(7, loc)
        # Any rewrite moves the chunk in the log -> different locator ->
        # the stale entry silently stops matching.
        assert not memo.chunk_verified(7, self._loc(1, 200))
        assert not memo.chunk_verified(8, loc)

    def test_invalidate_and_clear(self):
        memo = DigestMemo()
        loc = self._loc(2, 0)
        memo.note_chunk(1, loc)
        memo.note_node(0, 3, loc)
        memo.invalidate_chunk(1)
        assert not memo.chunk_verified(1, loc)
        assert memo.node_verified(0, 3, loc)
        memo.clear()
        assert not memo.node_verified(0, 3, loc)
        assert len(memo) == 0

    def test_bounded_capacity_drops_new_notes(self):
        memo = DigestMemo(max_entries=2)
        memo.note_chunk(1, self._loc(1, 0))
        memo.note_chunk(2, self._loc(1, 50))
        memo.note_chunk(3, self._loc(1, 100))  # over budget: dropped
        assert not memo.chunk_verified(3, self._loc(1, 100))
        # Updating an existing key is always allowed.
        memo.note_chunk(1, self._loc(4, 0))
        assert memo.chunk_verified(1, self._loc(4, 0))


# ---------------------------------------------------------------------------
# Store-level: the zero-re-hash contract
# ---------------------------------------------------------------------------


class TestIncrementalScrub:
    def test_unchanged_store_rehashes_nothing(self):
        store, _ = _store()
        writes = _write_chunks(store)
        before = store.perf.counter("payload_digests")
        report = store.scrub(deep=False)
        after = store.perf.counter("payload_digests")
        store.close()
        assert report.clean
        assert after == before, "incremental scrub re-hashed a clean store"
        assert report.verified_chunks == 0
        assert report.memo_skipped_chunks == len(writes)
        assert report.memo_skipped_nodes > 0

    def test_checkpoint_of_unchanged_store_rehashes_nothing(self):
        store, _ = _store()
        _write_chunks(store)
        before = store.perf.counter("payload_digests")
        store.checkpoint(force=True)
        after = store.perf.counter("payload_digests")
        store.close()
        assert after == before

    def test_rewrite_stales_only_the_old_version(self):
        store, _ = _store()
        writes = _write_chunks(store)
        victim = sorted(writes)[0]
        old_locator = store.location_map.lookup(victim)
        store.write(victim, b"replacement state", durable=True)
        store.checkpoint(force=True)
        # The stale version is no longer accepted...
        assert not store.digest_memo.chunk_verified(victim, old_locator)
        # ...while the new one was noted at commit time, so a clean
        # incremental scrub still re-hashes nothing.
        report = store.scrub(deep=False)
        store.close()
        assert report.clean and report.verified_chunks == 0

    def test_deallocate_invalidates_memo_entry(self):
        store, _ = _store()
        writes = _write_chunks(store)
        victim = sorted(writes)[1]
        locator = store.location_map.lookup(victim)
        assert store.digest_memo.chunk_verified(victim, locator)
        store.deallocate(victim, durable=True)
        assert not store.digest_memo.chunk_verified(victim, locator)
        store.close()

    def test_reset_forces_full_rehash(self):
        store, _ = _store()
        writes = _write_chunks(store)
        store.reset_digest_memo()
        report = store.scrub(deep=False)
        assert report.clean
        assert report.memo_skipped_chunks == 0
        assert report.verified_chunks == len(writes)
        # The forced re-hash repopulated the memo: next pass skips all.
        report2 = store.scrub(deep=False)
        store.close()
        assert report2.memo_skipped_chunks == len(writes)

    def test_memo_disabled_profile_always_scrubs_deep(self):
        config = ChunkStoreConfig(
            segment_size=8192,
            initial_segments=2,
            map_fanout=8,
            security=SecurityProfile(digest_memo=False),
        )
        store, _ = _store(config)
        writes = _write_chunks(store)
        assert store.digest_memo is None
        report = store.scrub(deep=False)
        store.close()
        assert report.memo_skipped_chunks == 0
        assert report.verified_chunks == len(writes)


# ---------------------------------------------------------------------------
# The safety boundary: tampering, repair, salvage
# ---------------------------------------------------------------------------


class TestMemoSafetyBoundary:
    def test_deep_scrub_ignores_memo_and_catches_tampering(self):
        b = baseline()
        victim = sorted(b.expected)[3]
        loc = b.chunk_locator(victim)
        store, untrusted = b.fresh_store()
        assert store.scrub(deep=False).clean  # memo fully populated
        # Flip a payload byte behind the store's back.
        from repro.chunkstore.segments import segment_file_name

        name = segment_file_name(loc.segment)
        buf = bytearray(untrusted.read(name, 0, untrusted.size(name)))
        buf[loc.offset + loc.length // 2] ^= 0x40
        untrusted.write(name, 0, bytes(buf))
        # The incremental scrub cannot see the flip (stale memo entry);
        # that is exactly the documented trade-off...
        assert store.scrub(deep=False).clean
        # ...and the default deep scrub catches it.
        deep = store.scrub()  # deep=True is the default
        store.close()
        assert [d.chunk_id for d in deep.damaged_chunks] == [victim]

    def test_repair_engine_resets_memo_on_damage(self, monkeypatch):
        b = baseline()
        victim = sorted(b.expected)[2]
        loc = b.chunk_locator(victim)
        image = b.flip(b.image, loc.segment, loc.offset + 1)
        resets = []
        original = ChunkStore.reset_digest_memo

        def spy(self):
            resets.append(True)
            return original(self)

        monkeypatch.setattr(ChunkStore, "reset_digest_memo", spy)
        result, state = b.heal(image)
        assert result.healthy
        assert resets, "heal() repaired damage without resetting the memo"
        assert state == b.expected

    def test_salvage_store_has_no_memo(self):
        b = baseline()
        store = b.open_salvage(b.image)
        assert store.digest_memo is None
        # deep=False degrades to a full verification walk.
        report = store.scrub(deep=False)
        store.close()
        assert report.clean
        assert report.memo_skipped_chunks == 0
        assert report.verified_chunks == len(b.expected)

    def test_perf_counters_track_memo_traffic(self):
        store, _ = _store()
        _write_chunks(store, count=8)
        store.scrub(deep=False)
        stats = store.perf.as_dict()
        memo = stats["digest_memo"]
        assert memo["hits"] > 0
        assert 0.0 < memo["hit_rate"] <= 1.0
        assert "payload_digests" in stats["counters"]
        assert any(k.startswith("cipher.") for k in stats["kernels"])
        assert any(k.startswith("hash.") for k in stats["kernels"])
        # The same numbers ride along in the I/O stats dict (and from
        # there in the server's stats verb).
        io = store.untrusted.stats.as_dict()
        assert io["perf"]["digest_memo"]["hits"] == memo["hits"]
        store.close()
