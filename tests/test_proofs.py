"""Client-verifiable proofs and the transparency log (:mod:`repro.proofs`).

Covers the head log's format and crash semantics (torn tails, catch-up,
the dual-master fallback, rollback detection), Merkle inclusion and
non-membership proofs built from the location map's own nodes, the
server-side proof service, the wire verbs, the verifying client's head
pinning, replica proof serving, and the stats/heads/audit tooling.
"""

from __future__ import annotations

import contextlib
import os
import shutil

import pytest

from repro.chunkstore import ChunkStore
from repro.config import ChunkStoreConfig
from repro.crypto import create_hash_engine, create_payload_cipher
from repro.db import Database
from repro.errors import (
    ChunkNotFoundError,
    ConfigError,
    InvalidProofError,
    ProofError,
    TamperDetectedError,
)
from repro.platform import (
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)
from repro.proofs import (
    HAVE_ED25519,
    HEAD_LOG_FILE,
    HeadVerifier,
    ProofService,
    SignedHead,
    TransparencyLog,
    VerifyingClient,
    resolve_head_scheme,
    verify_proof,
)
from repro.replication import ReplicaApplier
from repro.server import TdbClient, TdbServer

SECRET = b"proofs-test-secret-0123456789abc"


def make_store(**config_kwargs):
    untrusted = MemoryUntrustedStore()
    secret = MemorySecretStore(SECRET)
    counter = MemoryOneWayCounter()
    config = ChunkStoreConfig(**config_kwargs) if config_kwargs else None
    store = ChunkStore.format(untrusted, secret, counter, config)
    return store, untrusted, secret, counter


def write_chunks(store, count, start=0, size=64):
    ids = []
    for i in range(start, start + count):
        cid = store.allocate_chunk_id()
        store.write(cid, f"chunk-{i}-".encode() * (size // 8 + 1))
        ids.append(cid)
    return ids


def client_verify_kit(secret, config=None):
    """(hash engine, cipher) a trusted client derives on its own."""
    config = config or ChunkStoreConfig()
    profile = config.security
    engine = create_hash_engine(profile.hash_name)
    cipher = create_payload_cipher(
        profile.cipher_name,
        secret.derive_key("tdb-chunk-encryption", 32),
        kernel=profile.resolved_kernel,
    )
    return engine, cipher


def local_verify(proof, head, secret, config=None):
    config = config or ChunkStoreConfig()
    engine, cipher = client_verify_kit(secret, config)
    return verify_proof(
        proof,
        head,
        fanout=config.map_fanout,
        hash_size=engine.digest_size,
        digest=engine.digest,
        decrypt=cipher.decrypt,
    )


class TestHeadLog:
    def test_every_checkpoint_appends_a_chained_head(self):
        store, untrusted, secret, _ = make_store()
        write_chunks(store, 10)
        store.checkpoint(force=True)
        write_chunks(store, 10, start=10)
        store.checkpoint(force=True)
        log = store.transparency
        heads = log.heads()
        assert len(heads) >= 3  # format + two forced checkpoints
        verifier = HeadVerifier(
            secret, store.db_uuid, store.hash_size
        )
        chain = verifier.verify_chain([h.raw for h in heads])
        assert [h.generation for h in chain] == sorted(
            {h.generation for h in chain}
        )
        tip = log.tip()
        assert tip.generation == store.generation
        assert tip.seqno == store.commit_seqno
        root = store.location_map.root_locator
        assert tip.root_digest == root.hash_value
        store.close()

    def test_reopen_verifies_and_continues_the_chain(self):
        store, untrusted, secret, counter = make_store()
        write_chunks(store, 5)
        store.close()  # close checkpoints and appends
        length_before = None
        store = ChunkStore.open(untrusted, secret, counter)
        assert store.transparency is not None
        length_before = len(store.transparency)
        write_chunks(store, 5, start=5)
        store.close()
        store = ChunkStore.open(untrusted, secret, counter)
        assert len(store.transparency) > length_before
        store.close()

    def test_torn_tail_is_truncated_on_writable_open(self):
        store, untrusted, secret, counter = make_store()
        write_chunks(store, 5)
        store.close()
        data = untrusted.read(HEAD_LOG_FILE)
        untrusted.truncate(HEAD_LOG_FILE, len(data) - 7)  # tear the tail
        store = ChunkStore.open(untrusted, secret, counter)
        # The torn entry is gone; the open caught the log back up to the
        # master, so the tip matches exactly.
        tip = store.transparency.tip()
        assert tip.generation == store.generation
        store.close()

    def test_bit_flip_in_an_entry_is_tampering(self):
        store, untrusted, secret, counter = make_store()
        write_chunks(store, 5)
        store.checkpoint(force=True)
        store.close()
        data = bytearray(untrusted.read(HEAD_LOG_FILE))
        # Flip one bit in the middle of the file: inside some full
        # entry, well past the header.
        mid = (len(data) + 62) // 2
        data[mid] ^= 0x10
        untrusted.truncate(HEAD_LOG_FILE, 0)
        untrusted.write(HEAD_LOG_FILE, 0, bytes(data))
        with pytest.raises(TamperDetectedError):
            ChunkStore.open(untrusted, secret, counter)

    def test_missing_log_is_recreated_from_the_master(self):
        # Upgrade path: a database formatted before head logging.
        store, untrusted, secret, counter = make_store()
        write_chunks(store, 5)
        store.close()
        untrusted.delete(HEAD_LOG_FILE)
        store = ChunkStore.open(untrusted, secret, counter)
        tip = store.transparency.tip()
        assert tip is not None
        assert tip.generation == store.generation
        store.close()

    def test_rollback_without_matching_history_is_detected(self):
        store, untrusted, secret, counter = make_store()
        write_chunks(store, 5)
        store.close()
        # Forge a log whose heads are all *newer* than the master and
        # that carries no entry for the master's generation: whatever
        # image this log was signing, it is not the one on disk.
        store = ChunkStore.open(untrusted, secret, counter)
        generation = store.generation
        store.close()  # appends generation+1 on the close checkpoint
        log = TransparencyLog.create(
            untrusted, secret, self._uuid(untrusted, secret, counter),
            create_hash_engine(ChunkStoreConfig().security.hash_name).digest_size,
        )
        log.append(generation + 10, 99, 99, 1, None)
        with pytest.raises(TamperDetectedError):
            ChunkStore.open(untrusted, secret, counter)

    @staticmethod
    def _uuid(untrusted, secret, counter):
        store = ChunkStore.open(untrusted, secret, counter)
        try:
            return store.db_uuid
        finally:
            store.close()

    def test_dual_master_fallback_truncates_orphan_heads(self):
        # Losing the newest master copy engages the fallback to the
        # older one; the orphaned newer head must be dropped, not
        # reported as a rollback (the counter rules out lost commits).
        from repro.chunkstore.master import MASTER_FILES

        store, untrusted, secret, counter = make_store()
        ids = write_chunks(store, 5)
        store.checkpoint(force=True)
        store.checkpoint(force=True)  # same data, newer generation
        generation = store.generation
        store.close()
        newest = MASTER_FILES[generation % 2]
        untrusted.truncate(newest, 0)
        store = ChunkStore.open(untrusted, secret, counter)
        assert store.generation < generation
        tip = store.transparency.tip()
        assert tip.generation == store.generation
        assert store.read(ids[0])
        store.close()

    def test_scheme_env_forces_hmac(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEAD_SCHEME", "hmac")
        assert resolve_head_scheme() == "hmac"
        store, untrusted, secret, counter = make_store()
        write_chunks(store, 3)
        store.checkpoint(force=True)
        tip = store.transparency.tip()
        assert not tip.has_ed_signature
        store.close()

    def test_scheme_env_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEAD_SCHEME", "rsa")
        with pytest.raises(ConfigError):
            resolve_head_scheme()

    @pytest.mark.skipif(not HAVE_ED25519, reason="needs cryptography")
    def test_auto_scheme_uses_ed25519_when_available(self):
        store, *_ = make_store()
        write_chunks(store, 3)
        store.checkpoint(force=True)
        assert store.transparency.tip().has_ed_signature
        store.close()

    def test_log_of_other_database_is_rejected(self):
        store_a, untrusted_a, secret, counter_a = make_store()
        store_b, untrusted_b, _, counter_b = make_store()
        write_chunks(store_a, 3)
        write_chunks(store_b, 3)
        store_a.close()
        store_b.close()
        log_b = untrusted_b.read(HEAD_LOG_FILE)
        untrusted_a.truncate(HEAD_LOG_FILE, 0)
        untrusted_a.write(HEAD_LOG_FILE, 0, log_b)
        with pytest.raises(TamperDetectedError):
            ChunkStore.open(untrusted_a, secret, counter_a)

    def test_insecure_store_has_no_log(self):
        untrusted = MemoryUntrustedStore()
        secret = MemorySecretStore(SECRET)
        counter = MemoryOneWayCounter()
        from repro.config import SecurityProfile

        config = ChunkStoreConfig(security=SecurityProfile.insecure())
        store = ChunkStore.format(untrusted, secret, counter, config)
        assert store.transparency is None
        assert not untrusted.exists(HEAD_LOG_FILE)
        with pytest.raises(ProofError):
            ProofService(store)
        store.close()


class TestProofs:
    def test_inclusion_proof_verifies_and_decrypts(self):
        store, _, secret, _ = make_store()
        ids = write_chunks(store, 40)
        store.checkpoint(force=True)
        service = ProofService(store)
        for cid in (ids[0], ids[17], ids[-1]):
            head, proof = service.prove(cid)
            assert proof.present
            plaintext = local_verify(proof, head, secret)
            assert plaintext == store.read(cid)
        service.close()
        store.close()

    def test_non_membership_in_and_out_of_capacity(self):
        store, _, secret, _ = make_store(map_fanout=8)
        ids = write_chunks(store, 20)
        removed = ids[3]
        store.deallocate(removed)
        store.checkpoint(force=True)
        service = ProofService(store)
        config = ChunkStoreConfig(map_fanout=8)
        # Removed id: absence proven by a walk to an empty slot.
        head, proof = service.prove(removed)
        assert not proof.present
        assert local_verify(proof, head, secret, config) is None
        # Far outside the tree's capacity: empty-path absence.
        head, far = service.prove(10 ** 9)
        assert not far.present and not far.nodes
        assert local_verify(far, head, secret, config) is None
        service.close()
        store.close()

    def test_proof_against_wrong_head_fails(self):
        store, _, secret, _ = make_store()
        ids = write_chunks(store, 10)
        store.checkpoint(force=True)
        service = ProofService(store)
        head, proof = service.prove(ids[0])
        write_chunks(store, 10, start=10)
        store.checkpoint(force=True)
        new_tip = store.transparency.tip()
        assert new_tip.raw != head.raw
        with pytest.raises(InvalidProofError):
            local_verify(proof, new_tip, secret)
        service.close()
        store.close()

    def test_anchor_is_reused_until_the_store_moves(self):
        store, *_ = make_store()
        ids = write_chunks(store, 10)
        store.checkpoint(force=True)
        service = ProofService(store)
        for cid in ids:
            service.prove(cid)
        first = service.stats_snapshot()["anchors_created"]
        assert first == 1
        write_chunks(store, 5, start=10)
        store.checkpoint(force=True)
        service.prove(ids[0])
        assert service.stats_snapshot()["anchors_created"] == 2
        service.close()
        store.close()


@contextlib.contextmanager
def running_server(db=None):
    db = db or Database.in_memory(secret=SECRET)
    server = TdbServer(db).start()
    try:
        yield server, db
    finally:
        server.stop()
        db.close()


def populate_chunks(db, count, start=0):
    ids = []
    store = db.chunk_store
    for i in range(start, start + count):
        cid = store.allocate_chunk_id()
        store.write(cid, f"wire-chunk-{i}".encode() * 3)
        ids.append(cid)
    store.checkpoint(force=True)
    return ids


class TestWireVerbs:
    def test_verified_read_and_absent_end_to_end(self):
        with running_server() as (server, db):
            ids = populate_chunks(db, 25)
            secret = MemorySecretStore(SECRET)
            with VerifyingClient(*server.address, secret) as vc:
                head = vc.latest_head()
                assert head.generation == db.chunk_store.generation
                for cid in ids[:5]:
                    assert vc.verified_read(cid) == db.chunk_store.read(cid)
                missing = max(ids) + 3
                assert vc.verified_absent(missing)
                with pytest.raises(ChunkNotFoundError):
                    vc.verified_read(missing)
                assert vc.proofs_verified >= 7

    def test_pin_advances_across_commits(self):
        with running_server() as (server, db):
            ids = populate_chunks(db, 5)
            secret = MemorySecretStore(SECRET)
            with VerifyingClient(*server.address, secret) as vc:
                vc.verified_read(ids[0])
                first_pin = vc.pinned.index
                populate_chunks(db, 5, start=5)
                vc.verified_read(ids[1])
                assert vc.pinned.index > first_pin

    def test_fetch_log_returns_verified_chain(self):
        with running_server() as (server, db):
            populate_chunks(db, 5)
            populate_chunks(db, 5, start=5)
            secret = MemorySecretStore(SECRET)
            with VerifyingClient(*server.address, secret) as vc:
                chain = vc.fetch_log()
                assert len(chain) == len(db.chunk_store.transparency)
                assert chain[-1].raw == vc.pinned.raw
                assert all(isinstance(h, SignedHead) for h in chain)

    def test_stats_verb_exposes_the_head(self):
        with running_server() as (server, db):
            populate_chunks(db, 5)
            with TdbClient(*server.address) as client:
                stats = client.call("stats")
            head = stats["head"]
            assert head is not None
            store = db.chunk_store
            assert head["generation"] == store.generation
            assert head["seqno"] == store.commit_seqno
            assert head["log_length"] == len(store.transparency)
            root = store.location_map.root_locator
            assert head["root"] == root.hash_value.hex()

    def test_verifying_client_requires_secure_profile(self):
        from repro.config import SecurityProfile

        secret = MemorySecretStore(SECRET)
        insecure = ChunkStoreConfig(security=SecurityProfile.insecure())
        with pytest.raises(ProofError):
            VerifyingClient("127.0.0.1", 1, secret, config=insecure)


CHUNK = ChunkStoreConfig(
    segment_size=8192, checkpoint_residual_bytes=8192, initial_segments=4
)


def populate_objects(server, count=20, start=0):
    with TdbClient(*server.address) as client:
        with client.transaction() as txn:
            for i in range(start, start + count):
                txn.put({"n": i, "pad": "x" * 200})


class TestReplicaProofs:
    def test_replica_serves_verifiable_proofs(self, tmp_path):
        pdir = os.path.join(str(tmp_path), "primary")
        db = Database.create(pdir, CHUNK)
        server = TdbServer(db).start()
        try:
            populate_objects(server, 20)
            rdir = os.path.join(str(tmp_path), "replica")
            os.makedirs(rdir, exist_ok=True)
            shutil.copy(
                os.path.join(pdir, "secret.key"),
                os.path.join(rdir, "secret.key"),
            )
            with ReplicaApplier(
                rdir, *server.address, chunk_config=CHUNK
            ) as applier:
                assert applier.sync_once() is True
                stats = applier.stats_snapshot()
                assert stats["heads_mirrored"] > 0
                assert stats["head_forks"] == 0
                replica_server = applier.serve("127.0.0.1", 0)
                from repro.platform import FileSecretStore

                secret = FileSecretStore(
                    os.path.join(rdir, "secret.key"), create=False
                )
                with VerifyingClient(
                    *replica_server.address, secret, config=CHUNK
                ) as vc:
                    head = vc.latest_head()
                    cids = sorted(db.chunk_store.chunk_ids())
                    plaintext = vc.verified_read(cids[0])
                    assert plaintext == db.chunk_store.read(cids[0])
                    assert vc.verified_absent(max(cids) + 5)
                    # The replica's chain is the primary's chain.
                    replica_chain = vc.fetch_log()
                primary_heads = db.chunk_store.transparency.heads()
                assert [h.raw for h in replica_chain] == [
                    h.raw
                    for h in primary_heads[: len(replica_chain)]
                ]
        finally:
            server.stop()
            db.close()

    def test_replica_resync_keeps_mirroring(self, tmp_path):
        pdir = os.path.join(str(tmp_path), "primary")
        db = Database.create(pdir, CHUNK)
        server = TdbServer(db).start()
        try:
            populate_objects(server, 10)
            rdir = os.path.join(str(tmp_path), "replica")
            os.makedirs(rdir, exist_ok=True)
            shutil.copy(
                os.path.join(pdir, "secret.key"),
                os.path.join(rdir, "secret.key"),
            )
            with ReplicaApplier(
                rdir, *server.address, chunk_config=CHUNK
            ) as applier:
                assert applier.sync_once() is True
                first = applier.stats_snapshot()["heads_mirrored"]
                populate_objects(server, 10, start=10)
                assert applier.sync_once() is True
                assert applier.stats_snapshot()["heads_mirrored"] > first
                assert applier.sync_once() is False  # converged
        finally:
            server.stop()
            db.close()


class TestTools:
    def _make_db(self, tmp_path, count=10):
        directory = os.path.join(str(tmp_path), "db")
        db = Database.create(directory)
        store = db.chunk_store
        for i in range(count):
            cid = store.allocate_chunk_id()
            store.write(cid, f"tool-chunk-{i}".encode() * 2)
        db.close()
        return directory

    def test_stats_prints_head(self, tmp_path, capsys):
        from repro import tools

        directory = self._make_db(tmp_path)
        assert tools.main(["stats", directory]) == 0
        out = capsys.readouterr().out
        assert "head log length" in out
        assert "head root" in out

    def test_heads_lists_the_chain(self, tmp_path, capsys):
        from repro import tools

        directory = self._make_db(tmp_path)
        assert tools.main(["heads", directory]) == 0
        out = capsys.readouterr().out
        assert "signed head(s)" in out
        assert "head #0" in out

    def test_inspect_mentions_the_head(self, tmp_path, capsys):
        from repro import tools

        directory = self._make_db(tmp_path)
        assert tools.main(["inspect", directory]) == 0
        assert "signed head" in capsys.readouterr().out

    def test_audit_local_ok(self, tmp_path, capsys):
        from repro import tools

        directory = self._make_db(tmp_path)
        assert tools.main(["audit", directory]) == 0
        out = capsys.readouterr().out
        assert "AUDIT OK" in out
        assert "tip binding: OK" in out

    def test_audit_against_live_primary(self, tmp_path, capsys):
        from repro import tools

        directory = self._make_db(tmp_path)
        db = Database.open_existing(directory)
        server = TdbServer(db).start()
        try:
            host, port = server.address
            # Audit a mirror copy of the primary's directory against the
            # live server: one history, no forks.
            mirror = os.path.join(str(tmp_path), "mirror")
            shutil.copytree(directory, mirror)
            code = tools.main(
                ["audit", mirror, "--primary", f"{host}:{port}"]
            )
        finally:
            server.stop()
            db.close()
        out = capsys.readouterr().out
        assert code == 0, out
        assert "cross-check: OK" in out

    def test_audit_flags_truncated_log(self, tmp_path, capsys):
        from repro import tools
        from repro.platform import FileSecretStore, FileUntrustedStore

        directory = self._make_db(tmp_path)
        # Push the database a few generations forward so truncating the
        # log back to its first head lags the master past the one-
        # checkpoint crash window.
        db = Database.open_existing(directory)
        store = db.chunk_store
        for _ in range(3):
            cid = store.allocate_chunk_id()
            store.write(cid, b"advance" * 4)
            store.checkpoint(force=True)
        uuid = store.db_uuid
        hash_size = store.hash_size
        db.close()
        untrusted = FileUntrustedStore(os.path.join(directory, "data"))
        secret = FileSecretStore(
            os.path.join(directory, "secret.key"), create=False
        )
        log = TransparencyLog.load(
            untrusted, secret, uuid, hash_size, writable=True
        )
        assert len(log) > 2
        log.truncate_to(0)
        code = tools.main(["audit", directory])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL binding" in out
