"""Group-commit coordinator: batching, fairness, and crash atomicity.

The unit tests pin the coordinator's contract (one chunk-store commit
per batch, no batching tax on a lone committer, guilty-member isolation,
bounded queue).  The sweep at the end enumerates every media-operation
boundary inside a genuinely merged 4-member batch commit and crashes at
each one: after recovery the batch must be all-or-nothing — either all
four members' chunks are present with their exact payloads, or none is —
and the pre-batch state must be intact either way.
"""

from __future__ import annotations

import threading
import time
from functools import lru_cache

import pytest

from repro.chunkstore import ChunkStore
from repro.config import ChunkStoreConfig
from repro.db import Database
from repro.errors import (
    ChunkNotFoundError,
    ChunkStoreError,
    ServerBusyError,
    TDBError,
)
from repro.platform import MemoryOneWayCounter, MemorySecretStore
from repro.server.groupcommit import GroupCommitCoordinator
from repro.testing import FaultSchedule, FaultyUntrustedStore
from repro.testing.faults import InjectedCrash

_SECRET = b"groupcommit-test-secret-01234567"


def _config() -> ChunkStoreConfig:
    return ChunkStoreConfig(
        segment_size=4096,
        initial_segments=3,
        map_fanout=8,
        fsync=True,
    )


def _member_payload(i: int) -> bytes:
    # Same length for every member: the sweep's op boundaries then line
    # up regardless of which thread reaches the batch first.  Sized so
    # the 4-member merged record rolls the 4 KiB segments — the sweep
    # then crosses segment-header and master-record writes, not just the
    # single commit-record append.
    return (b"member-%d-" % i) * 110


def _fresh_store(schedule=None):
    untrusted = FaultyUntrustedStore(schedule=schedule)
    counter = MemoryOneWayCounter()
    store = ChunkStore.format(
        untrusted, MemorySecretStore(_SECRET), counter, _config()
    )
    return untrusted, counter, store


def _run_merged_batch(coordinator, chunk_ids, payloads=None, durable=True):
    """Push one commit per chunk id through the coordinator, all at once.

    ``max_batch`` equal to the member count plus a barrier guarantees a
    single merged batch.  Returns the per-member exception list.
    """
    n = len(chunk_ids)
    payloads = payloads or [_member_payload(i) for i in range(n)]
    barrier = threading.Barrier(n)
    errors: list = [None] * n

    def worker(i: int) -> None:
        barrier.wait()
        try:
            coordinator.commit({chunk_ids[i]: payloads[i]}, durable=durable)
        except BaseException as exc:  # noqa: BLE001 — InjectedCrash included
            errors[i] = exc

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(n)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
        assert not t.is_alive(), "a committer never returned"
    return errors


class TestBatching:
    def test_concurrent_commits_share_one_chunk_commit(self):
        untrusted, counter, store = _fresh_store()
        ids = [store.allocate_chunk_id() for _ in range(4)]
        coordinator = GroupCommitCoordinator(store, max_batch=4, max_delay=30.0)
        coordinator.concurrency_hint = 4

        commits_before = store.stats().commits_total
        syncs_before = untrusted.total_syncs
        counter_before = counter.read()

        errors = _run_merged_batch(coordinator, ids)
        assert errors == [None] * 4

        stats = coordinator.stats_snapshot()
        assert stats.requests == 4
        assert stats.batches == 1
        assert stats.batch_sizes == {4: 1}
        assert stats.max_batch_size == 4
        assert stats.mean_batch_size == 4.0

        # The whole batch cost exactly one chunk-store commit: the syncs
        # and the counter advanced as for ONE durable commit, not four.
        assert store.stats().commits_total == commits_before + 1
        assert counter.read() == counter_before + 1
        single_commit_syncs = untrusted.total_syncs - syncs_before
        assert single_commit_syncs >= 1

        for i, chunk_id in enumerate(ids):
            assert store.read(chunk_id) == _member_payload(i)
        store.close()

    def test_lone_committer_skips_the_batching_window(self):
        untrusted, counter, store = _fresh_store()
        chunk_id = store.allocate_chunk_id()
        coordinator = GroupCommitCoordinator(store, max_batch=8, max_delay=10.0)
        coordinator.concurrency_hint = 1  # nobody to wait for

        started = time.monotonic()
        coordinator.commit({chunk_id: b"solo"}, durable=True)
        elapsed = time.monotonic() - started
        assert elapsed < 2.0, "a lone committer paid the batching delay"
        assert store.read(chunk_id) == b"solo"
        store.close()

    def test_quorum_seals_without_waiting_out_the_window(self):
        # 4 active sessions against max_batch=32: the batch can never
        # grow past 4, so the leader must seal the moment the 4th
        # member joins instead of sleeping max_delay (the 8-client
        # throughput dip).  The long window makes the test fail loudly
        # if sealing regresses.
        untrusted, counter, store = _fresh_store()
        ids = [store.allocate_chunk_id() for _ in range(4)]
        coordinator = GroupCommitCoordinator(store, max_batch=32, max_delay=30.0)
        coordinator.concurrency_hint = 4

        started = time.monotonic()
        errors = _run_merged_batch(coordinator, ids)
        elapsed = time.monotonic() - started
        assert errors == [None] * 4
        assert elapsed < 5.0, "leader waited out max_delay despite a full quorum"

        stats = coordinator.stats_snapshot()
        assert stats.batches == 1
        assert stats.quorum_seals == 1
        assert stats.batch_sizes == {4: 1}
        store.close()

    def test_quorum_seal_can_be_disabled(self):
        untrusted, counter, store = _fresh_store()
        ids = [store.allocate_chunk_id() for _ in range(3)]
        coordinator = GroupCommitCoordinator(
            store, max_batch=32, max_delay=0.3, quorum_seal=False
        )
        coordinator.concurrency_hint = 3

        started = time.monotonic()
        errors = _run_merged_batch(coordinator, ids)
        elapsed = time.monotonic() - started
        assert errors == [None] * 3
        assert elapsed >= 0.3, "disabled quorum sealing should wait the window"
        assert coordinator.stats_snapshot().quorum_seals == 0
        store.close()

    def test_empty_commit_is_a_noop(self):
        untrusted, counter, store = _fresh_store()
        coordinator = GroupCommitCoordinator(store)
        coordinator.commit({}, deallocs=())
        assert coordinator.stats_snapshot().requests == 0
        store.close()

    def test_guilty_member_does_not_poison_the_batch(self):
        untrusted, counter, store = _fresh_store()
        good_id = store.allocate_chunk_id()
        bad_id = 999_999  # never allocated: the chunk store rejects it
        coordinator = GroupCommitCoordinator(store, max_batch=2, max_delay=30.0)
        coordinator.concurrency_hint = 2

        errors = _run_merged_batch(
            coordinator, [good_id, bad_id], payloads=[b"good", b"bad"]
        )
        assert errors[0] is None, f"innocent member failed: {errors[0]}"
        assert isinstance(errors[1], ChunkStoreError)
        assert store.read(good_id) == b"good"
        stats = coordinator.stats_snapshot()
        assert stats.failed_batches == 1
        assert stats.individual_retries == 1
        store.close()

    def test_full_queue_rejects_with_transient_busy(self):
        untrusted, counter, store = _fresh_store()
        chunk_id = store.allocate_chunk_id()
        coordinator = GroupCommitCoordinator(store, max_pending=1)
        with coordinator._mutex:
            coordinator._pending = coordinator.max_pending
        with pytest.raises(ServerBusyError):
            coordinator.commit({chunk_id: b"x"})
        assert coordinator.stats_snapshot().rejected == 1
        with coordinator._mutex:
            coordinator._pending = 0
        coordinator.commit({chunk_id: b"x"})  # back under the bound
        store.close()

    def test_closed_coordinator_refuses_commits(self):
        untrusted, counter, store = _fresh_store()
        chunk_id = store.allocate_chunk_id()
        coordinator = GroupCommitCoordinator(store)
        coordinator.close()
        with pytest.raises(ServerBusyError):
            coordinator.commit({chunk_id: b"x"})
        store.close()


class TestDatabaseIntegration:
    def test_enable_routes_transaction_commits_through_coordinator(self):
        from repro.server.server import RemoteRecord

        db = Database.in_memory()
        db.register_class(RemoteRecord)
        coordinator = db.enable_group_commit(max_delay=0.0)
        assert db.group_commit is coordinator
        assert db.enable_group_commit() is coordinator  # idempotent
        with db.transaction() as txn:
            oid = txn.insert(RemoteRecord({"n": 1}))
        assert coordinator.stats_snapshot().requests == 1
        db.disable_group_commit()
        assert db.group_commit is None
        with db.transaction() as txn:
            assert txn.open_readonly(oid, RemoteRecord).deref().value == {"n": 1}
        assert coordinator.stats_snapshot().requests == 1  # untouched
        db.close()

    def test_database_close_is_idempotent_and_thread_safe(self):
        db = Database.in_memory()
        db.enable_group_commit()
        errors = []

        def closer():
            try:
                db.close()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert errors == []
        db.close()  # still fine afterwards


# ---------------------------------------------------------------------------
# Crash-during-group-commit sweep
# ---------------------------------------------------------------------------

_SETUP_PAYLOADS = {0: b"setup-zero" * 8, 1: b"setup-one-" * 8}


def _batched_workload(schedule=None):
    """Setup commit, then a 4-member merged batch over a faulty medium.

    Returns everything a sweep point needs to judge the aftermath:
    the medium, the (trusted, surviving) counter, the chunk ids, the
    per-member outcomes, and the (writes, syncs) marker taken right
    before the batch.
    """
    untrusted, counter, store = _fresh_store(schedule)
    setup_ids = [store.allocate_chunk_id() for _ in range(2)]
    store.commit(
        {setup_ids[i]: _SETUP_PAYLOADS[i] for i in range(2)}, durable=True
    )
    marker = (untrusted.total_writes, untrusted.total_syncs)
    batch_ids = [store.allocate_chunk_id() for _ in range(4)]
    coordinator = GroupCommitCoordinator(store, max_batch=4, max_delay=30.0)
    coordinator.concurrency_hint = 4
    errors = _run_merged_batch(coordinator, batch_ids)
    return untrusted, counter, setup_ids, batch_ids, errors, marker


@lru_cache(maxsize=None)
def _profile():
    """(write points, torn points, sync points) of the batch commit."""
    untrusted, _, _, _, errors, (w0, s0) = _batched_workload()
    assert errors == [None] * 4
    w1, s1 = untrusted.total_writes, untrusted.total_syncs
    write_points = list(range(w0 + 1, w1 + 1))
    torn_points = [
        (index, nbytes)
        for index in write_points
        for kind, _name, nbytes in [untrusted.op_log[index - 1]]
        if kind == "write" and nbytes >= 2
    ]
    sync_points = list(range(s0 + 1, s1 + 1))
    assert write_points, "the batch commit performed no media writes?"
    return write_points, torn_points, sync_points


def _sweep_point(schedule: FaultSchedule) -> None:
    untrusted, counter, setup_ids, batch_ids, errors, _ = _batched_workload(
        schedule
    )
    assert untrusted.crashed, "the scheduled crash point never fired"
    # Every member of the merged batch observed the crash — nobody got a
    # false success or a spurious library error.
    for error in errors:
        assert isinstance(error, InjectedCrash), f"unexpected outcome: {error!r}"

    untrusted.heal()
    store = ChunkStore.open(
        untrusted, MemorySecretStore(_SECRET), counter, _config()
    )
    present = 0
    for i, chunk_id in enumerate(batch_ids):
        try:
            data = store.read(chunk_id)
        except (ChunkNotFoundError, TDBError):
            continue
        assert data == _member_payload(i)
        present += 1
    assert present in (0, 4), (
        f"torn batch after recovery: {present}/4 members survived"
    )
    # The committed pre-batch state is never collateral damage.
    for i, chunk_id in enumerate(setup_ids):
        assert store.read(chunk_id) == _SETUP_PAYLOADS[i]
    store.close()


def _write_param_ids():
    return [pytest.param(i, id=f"write{i}") for i in _profile()[0]]


def _torn_param_ids():
    return [
        pytest.param(i, n, id=f"torn{i}") for i, n in _profile()[1]
    ]


def _sync_param_ids():
    return [pytest.param(i, id=f"sync{i}") for i in _profile()[2]]


class TestCrashDuringGroupCommit:
    """All-or-nothing at every operation boundary of a merged batch."""

    @pytest.mark.parametrize("index", _write_param_ids())
    def test_crash_after_write(self, index):
        _sweep_point(FaultSchedule().crash_after_write(index))

    @pytest.mark.parametrize("index,nbytes", _torn_param_ids())
    def test_torn_write(self, index, nbytes):
        _sweep_point(FaultSchedule().crash_mid_write(index, nbytes // 2))

    @pytest.mark.parametrize("index", _sync_param_ids())
    def test_crash_after_sync(self, index):
        _sweep_point(FaultSchedule().crash_after_sync(index))
