"""Systematic crash-point injection for the chunk store.

A crash can interrupt persistence at any moment.  These tests cut the
log (and master files) at many byte positions and require, at every cut:

* recovery either succeeds or raises a *security* error — never
  corruption, never a crash of the recovery code itself,
* when recovery succeeds, the recovered state is exactly a prefix of the
  committed history: every *durably* committed value up to some point,
  with the guarantee that a commit acknowledged durable at counter value
  ``c`` can only be missing if the cut also regressed the counter
  evidence (which the counter check flags as replay/tamper).

The FailingStore variant injects write failures *during* operation,
checking that a store whose underlying writes start failing raises
rather than acknowledging commits it did not persist.
"""

from __future__ import annotations

import pytest

from repro.chunkstore import ChunkStore
from repro.config import ChunkStoreConfig, SecurityProfile
from repro.errors import (
    ChunkStoreError,
    RecoveryError,
    ReplayDetectedError,
    StoreError,
    TamperDetectedError,
    TDBError,
)
from repro.platform import (
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)

SECRET = b"crash-injection-secret-012345678"


def make_config(secure=True):
    return ChunkStoreConfig(
        segment_size=4 * 1024,
        initial_segments=3,
        checkpoint_residual_bytes=8 * 1024,
        map_fanout=8,
        security=SecurityProfile() if secure else SecurityProfile.insecure(),
    )


def run_history(store):
    """A small history with overwrites, deletes, and a checkpoint.

    Returns the expected durable state after each durable commit, as a
    list of (counter_value, {cid: value}) pairs.
    """
    states = []
    model = {}
    pending_nondurable = {}

    def nondurable(writes):
        store.commit(writes, durable=False)
        pending_nondurable.update(writes)

    def durable(writes, deallocs=()):
        store.commit(writes, deallocs, durable=True)
        # A durable commit also makes every earlier nondurable commit
        # durable (paper section 3.2.2).
        model.update(pending_nondurable)
        pending_nondurable.clear()
        for cid, value in writes.items():
            model[cid] = value
        for cid in deallocs:
            model.pop(cid, None)
        states.append((store.stats().counter_value, dict(model)))

    cids = [store.allocate_chunk_id() for _ in range(6)]
    durable({cids[0]: b"alpha", cids[1]: b"beta"})
    durable({cids[2]: b"gamma" * 20})
    nondurable({cids[3]: b"volatile"})  # durable once the next commit lands
    durable({cids[0]: b"alpha-2", cids[4]: b"delta"})
    store.checkpoint()
    durable({cids[5]: b"epsilon"}, deallocs=[cids[1]])
    # Nondurable tail: cuts through this region are plain crashes (no
    # counter evidence is lost) and must recover to the last durable state.
    nondurable({cids[3]: b"tail-volatile-1"})
    nondurable({cids[3]: b"tail-volatile-2"})
    return states


def clone_files(untrusted):
    return {name: untrusted.read(name) for name in untrusted.list_files()}


def restore_files(untrusted, image):
    for name in untrusted.list_files():
        if name not in image:
            untrusted.delete(name)
    for name, data in image.items():
        if untrusted.exists(name):
            untrusted.truncate(name, 0)
        untrusted.write(name, 0, data)


@pytest.mark.parametrize("secure", [True, False])
def test_log_cut_at_every_position_is_safe(secure):
    """Truncate the final segment at every offset; recovery must never
    produce non-prefix state or crash."""
    untrusted = MemoryUntrustedStore()
    counter = MemoryOneWayCounter()
    secret = MemorySecretStore(SECRET)
    config = make_config(secure)
    store = ChunkStore.format(untrusted, secret, counter, config)
    states = run_history(store)
    full_image = clone_files(untrusted)
    counter_value = counter.read()

    # Cut the segment holding the log tail at a spread of positions.
    tail_name = f"seg-{store.segments.tail_segment:08d}"
    tail_size = untrusted.size(tail_name)
    outcomes = {"recovered": 0, "flagged": 0}
    for cut in list(range(0, tail_size, 7)) + [tail_size]:
        restore_files(untrusted, full_image)
        untrusted.truncate(tail_name, cut)
        fresh_counter = MemoryOneWayCounter(counter_value)
        try:
            recovered = ChunkStore.open(untrusted, secret, fresh_counter, config)
        except (TamperDetectedError, ReplayDetectedError, RecoveryError,
                ChunkStoreError):
            outcomes["flagged"] += 1
            continue
        # Validation may also trip lazily, on first access to a damaged
        # region (the chunk store validates on access, not exhaustively
        # at open).
        try:
            recovered_state = {
                cid: recovered.read(cid) for cid in recovered.chunk_ids()
            }
        except TDBError:
            outcomes["flagged"] += 1
            continue
        outcomes["recovered"] += 1
        # Whatever came back must equal SOME durable prefix state.
        assert any(
            recovered_state == state for _counter, state in states
        ), f"cut at {cut} produced a non-prefix state"
        recovered.close()

    # Both behaviours must actually occur across the sweep: early cuts in
    # a secure store regress durable history (flagged), and the untouched
    # image recovers.
    restore_files(untrusted, full_image)
    final = ChunkStore.open(
        untrusted, secret, MemoryOneWayCounter(counter_value), config
    )
    final_state = {cid: final.read(cid) for cid in final.chunk_ids()}
    assert final_state == states[-1][1]
    if secure:
        assert outcomes["flagged"] > 0
    assert outcomes["recovered"] >= 1


def test_master_file_cuts_are_safe():
    """Truncating either master file must fall back or flag, never crash."""
    untrusted = MemoryUntrustedStore()
    counter = MemoryOneWayCounter()
    secret = MemorySecretStore(SECRET)
    config = make_config()
    store = ChunkStore.format(untrusted, secret, counter, config)
    states = run_history(store)
    image = clone_files(untrusted)
    counter_value = counter.read()

    for master in ("master-a", "master-b"):
        size = len(image[master])
        for cut in range(0, size, max(1, size // 17)):
            restore_files(untrusted, image)
            untrusted.truncate(master, cut)
            try:
                recovered = ChunkStore.open(
                    untrusted, secret, MemoryOneWayCounter(counter_value), config
                )
                state = {cid: recovered.read(cid) for cid in recovered.chunk_ids()}
            except TDBError:
                continue  # flagged: acceptable
            assert any(state == expected for _c, expected in states)
            recovered.close()


def test_deleting_one_master_file_still_recovers():
    untrusted = MemoryUntrustedStore()
    counter = MemoryOneWayCounter()
    secret = MemorySecretStore(SECRET)
    config = make_config()
    store = ChunkStore.format(untrusted, secret, counter, config)
    states = run_history(store)
    image = clone_files(untrusted)
    counter_value = counter.read()
    for master in ("master-a", "master-b"):
        restore_files(untrusted, image)
        untrusted.delete(master)
        try:
            recovered = ChunkStore.open(
                untrusted, secret, MemoryOneWayCounter(counter_value), config
            )
            state = {cid: recovered.read(cid) for cid in recovered.chunk_ids()}
        except TDBError:
            # Deleting the newer master may legally flag (the older one
            # binds an older counter value / map root).
            continue
        assert any(state == expected for _c, expected in states)
        recovered.close()


class FailingStore(MemoryUntrustedStore):
    """Untrusted store whose writes start failing after a fuse burns."""

    def __init__(self, fuse: int) -> None:
        super().__init__()
        self.fuse = fuse

    def write(self, name, offset, data):
        if self.fuse <= 0:
            raise StoreError("injected write failure")
        self.fuse -= 1
        super().write(name, offset, data)


def test_write_failures_surface_not_corrupt():
    """Once the medium starts failing, operations raise; data written
    before the failure stays readable after recovery on a healed store."""
    config = make_config()
    secret = MemorySecretStore(SECRET)
    survived_any = False
    for fuse in range(3, 40, 3):
        untrusted = FailingStore(fuse=10_000)
        counter = MemoryOneWayCounter()
        store = ChunkStore.format(untrusted, secret, counter, config)
        cid = store.allocate_chunk_id()
        store.write(cid, b"pre-failure state")
        untrusted.fuse = fuse
        wrote = []
        try:
            for index in range(50):
                extra = store.allocate_chunk_id()
                store.write(extra, b"x%d" % index)
                wrote.append(extra)
        except TDBError:
            pass
        except StoreError:
            pass
        # Heal the medium and recover from whatever reached it.
        untrusted.fuse = 10 ** 9
        try:
            recovered = ChunkStore.open(untrusted, secret, counter, config)
        except TDBError:
            continue  # detected inconsistency: acceptable
        survived_any = True
        assert recovered.read(cid) == b"pre-failure state"
        recovered.close()
    assert survived_any
