"""Exhaustive crash-point enumeration for the chunk store.

Built on :mod:`repro.testing`: a TPC-B-style workload is profiled once to
count its media operations, then pytest parametrizes one test per
operation boundary — crash after every mutating op (write, truncate,
delete), a torn variant of every multi-byte write, and crash after every
sync.  At each point recovery must land exactly on a committed prefix of
the history (the last durable state, or the in-flight commit): never an
invented state, never a lost acknowledged commit, and a pure crash must
never be flagged as tampering.

The FailingStore test keeps the seed's orthogonal failure mode: media
that starts *erroring* (not crashing) mid-operation must surface errors,
not acknowledge commits it did not persist.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.chunkstore import ChunkStore
from repro.errors import StoreError, TDBError
from repro.platform import MemoryOneWayCounter, MemoryUntrustedStore
from repro.testing import ChunkStoreCrashScenario, CrashSweeper, FaultSchedule


def make_sweeper(secure: bool) -> CrashSweeper:
    return CrashSweeper(lambda: ChunkStoreCrashScenario(secure=secure))


@lru_cache(maxsize=None)
def profile_ops(secure: bool):
    """(mutating op descriptions, sync count) of the sample workload."""
    store = make_sweeper(secure).profile()
    ops = [op for op in store.op_log if op[0] != "sync"]
    return ops, store.total_syncs


def _op_points(secure):
    ops, _ = profile_ops(secure)
    return [
        pytest.param(index, id=f"{'sec' if secure else 'ins'}-{kind}{index}-{name}")
        for index, (kind, name, _nbytes) in enumerate(ops, start=1)
    ]


def _torn_points(secure):
    ops, _ = profile_ops(secure)
    return [
        pytest.param(index, nbytes,
                     id=f"{'sec' if secure else 'ins'}-torn{index}-{name}")
        for index, (kind, name, nbytes) in enumerate(ops, start=1)
        if kind == "write" and nbytes >= 2
    ]


def _sync_points(secure):
    _, syncs = profile_ops(secure)
    return [
        pytest.param(index, id=f"{'sec' if secure else 'ins'}-sync{index}")
        for index in range(1, syncs + 1)
    ]


class TestEveryCrashBoundarySecure:
    """One test per operation boundary of the secure-mode workload."""

    @pytest.mark.parametrize("index", _op_points(True))
    def test_crash_after_mutating_op(self, index):
        fault = FaultSchedule().crash_after_write(index).faults[0]
        result = make_sweeper(True).run_point(fault, f"crash after op#{index}")
        assert result.outcome != "failed", result.detail

    @pytest.mark.parametrize("index,nbytes", _torn_points(True))
    def test_torn_write(self, index, nbytes):
        fault = FaultSchedule().crash_mid_write(index, nbytes // 2).faults[0]
        result = make_sweeper(True).run_point(fault, f"torn write#{index}")
        assert result.outcome != "failed", result.detail

    @pytest.mark.parametrize("index", _sync_points(True))
    def test_crash_after_sync(self, index):
        fault = FaultSchedule().crash_after_sync(index).faults[0]
        result = make_sweeper(True).run_point(fault, f"crash after sync#{index}")
        assert result.outcome != "failed", result.detail


def test_full_sweep_insecure_mode():
    """Insecure mode (CRC tags, no MAC/counter) sweeps clean too."""
    report = make_sweeper(False).sweep()
    report.assert_ok()
    assert report.total_writes > 0 and report.total_syncs > 0
    assert report.recovered > 0


def test_sweep_is_exhaustive_and_crashes_recover():
    """The report covers every boundary and post-format crashes recover.

    Every mutating op gets a crash point, every multi-byte write a torn
    point, every sync a crash point — nothing sampled away — and with
    the in-memory store (writes durable at write) *no* post-format crash
    may be flagged, so all flags come from mid-format points.
    """
    report = make_sweeper(True).sweep()
    report.assert_ok()
    ops, syncs = profile_ops(True)
    torn = sum(1 for kind, _n, nbytes in ops if kind == "write" and nbytes >= 2)
    assert len(report.points) == len(ops) + torn + syncs
    assert report.recovered + report.flagged == len(report.points)
    assert report.recovered > report.flagged


def test_replay_sweep_every_durable_image_detected():
    """Rolling media back to any earlier durable image trips the counter."""
    report = make_sweeper(True).sweep_replays()
    report.assert_ok()
    # The workload makes several durable commits, each a rollback target.
    assert report.detected >= 3
    # The final image itself must have opened cleanly, not been flagged.
    assert any(p.outcome == "current" for p in report.points)


def test_mutation_guard_sweep_catches_lost_commits(monkeypatch):
    """Meta-test: a deliberately broken recovery MUST fail the sweep.

    Drops the last applied commit record during residual-log replay —
    the classic lost-commit recovery bug.  If the sweep passes with this
    bug active, the harness has no teeth and this test fails.
    """
    import repro.chunkstore.store as store_mod

    real_scan = store_mod.scan_residual_log

    def lossy_scan(*args, **kwargs):
        scan = real_scan(*args, **kwargs)
        if scan.records:
            scan.records = scan.records[:-1]
        return scan

    monkeypatch.setattr(store_mod, "scan_residual_log", lossy_scan)
    report = make_sweeper(True).sweep()
    assert report.failures, (
        "sweep accepted a recovery that drops the last log record — "
        "the harness failed its mutation test"
    )


def test_mutation_guard_replay_sweep_catches_disabled_counter(monkeypatch):
    """Meta-test: with the counter check disabled, replays must surface."""
    monkeypatch.setattr(ChunkStore, "_check_counter", lambda self: None)
    report = make_sweeper(True).sweep_replays()
    assert report.failures, (
        "replay sweep accepted rollbacks with the counter check disabled — "
        "the harness failed its mutation test"
    )


class FailingStore(MemoryUntrustedStore):
    """Untrusted store whose writes start failing after a fuse burns."""

    def __init__(self, fuse: int) -> None:
        super().__init__()
        self.fuse = fuse

    def write(self, name, offset, data):
        if self.fuse <= 0:
            raise StoreError("injected write failure")
        self.fuse -= 1
        super().write(name, offset, data)


def test_write_failures_surface_not_corrupt():
    """Once the medium starts failing, operations raise; data written
    before the failure stays readable after recovery on a healed store."""
    scenario = ChunkStoreCrashScenario()
    config, secret = scenario.config, scenario.secret_store
    survived_any = False
    for fuse in range(3, 40, 3):
        untrusted = FailingStore(fuse=10_000)
        counter = MemoryOneWayCounter()
        store = ChunkStore.format(untrusted, secret, counter, config)
        cid = store.allocate_chunk_id()
        store.write(cid, b"pre-failure state")
        untrusted.fuse = fuse
        try:
            for index in range(50):
                extra = store.allocate_chunk_id()
                store.write(extra, b"x%d" % index)
        except (TDBError, StoreError):
            pass
        # Heal the medium and recover from whatever reached it.
        untrusted.fuse = 10 ** 9
        try:
            recovered = ChunkStore.open(untrusted, secret, counter, config)
        except TDBError:
            continue  # detected inconsistency: acceptable
        survived_any = True
        assert recovered.read(cid) == b"pre-failure state"
        recovered.close()
    assert survived_any
