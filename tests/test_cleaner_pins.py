"""Cleaner vs. snapshot/shipment pins: pinned bytes are inviolable.

A replication shipment is anchored in a pinned snapshot precisely so the
cleaner cannot recycle a segment a slow replica is still fetching.  The
property under test: while a pin is live, every anchored segment keeps
its anchored prefix byte-for-byte, no matter what mix of commits,
overwrites, cleaning passes, and checkpoints runs concurrently — and
once the pin is released the cleaner is free again.
"""

from __future__ import annotations

import threading

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.chunkstore import ChunkStore
from repro.config import ChunkStoreConfig, SecurityProfile
from repro.platform import (
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)

SECRET = b"0123456789abcdef0123456789abcdef"


def fresh_store(**overrides):
    defaults = dict(
        segment_size=4096,
        initial_segments=4,
        checkpoint_residual_bytes=8 * 1024,
        map_fanout=8,
        security=SecurityProfile(),
    )
    defaults.update(overrides)
    store = ChunkStore.format(
        MemoryUntrustedStore(),
        MemorySecretStore(SECRET),
        MemoryOneWayCounter(),
        ChunkStoreConfig(**defaults),
    )
    return store


def capture_anchor(store):
    """Anchor a shipment and copy every anchored prefix."""
    anchor = store.begin_shipment()
    assert anchor is not None
    frozen = {
        info.number: store.read_segment_bytes(info.number, 0, info.file_bytes)
        for info in anchor.segments
    }
    return anchor, frozen


def check_anchor_intact(store, anchor, frozen):
    for info in anchor.segments:
        assert not store.segments.segments[info.number].is_free, (
            f"segment {info.number} was recycled under an active pin"
        )
        got = store.read_segment_bytes(info.number, 0, info.file_bytes)
        assert got == frozen[info.number], (
            f"segment {info.number} anchored bytes changed under a pin"
        )


class TestPinProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        ops=st.lists(
            st.sampled_from(["write", "overwrite", "clean", "checkpoint"]),
            min_size=4,
            max_size=24,
        ),
        payload=st.integers(min_value=100, max_value=900),
    )
    def test_pinned_prefixes_survive_any_schedule(self, ops, payload):
        store = fresh_store()
        chunks = []
        try:
            # Seed enough data that cleaning has something to chew on.
            seed_writes = {}
            for _ in range(8):
                cid = store.allocate_chunk_id()
                seed_writes[cid] = b"s" * payload
                chunks.append(cid)
            store.commit(seed_writes)

            anchor, frozen = capture_anchor(store)
            try:
                for op in ops:
                    if op == "write":
                        cid = store.allocate_chunk_id()
                        store.write(cid, b"w" * payload)
                        chunks.append(cid)
                    elif op == "overwrite" and chunks:
                        store.write(chunks[0], b"o" * payload)
                    elif op == "clean":
                        store.clean()
                    elif op == "checkpoint":
                        store.checkpoint(force=True)
                    check_anchor_intact(store, anchor, frozen)
            finally:
                anchor.snapshot.release()

            # With the pin gone, churn plus cleaning must be able to
            # reclaim: run a few rounds and require no pin-skip stalls.
            for _ in range(4):
                store.write(chunks[0], b"z" * payload)
                store.clean()
            live = {
                locator.segment for _cid, locator in store.location_map.iterate()
            }
            assert store.segments.tail_segment is not None
            assert live  # store still functions after release + cleaning
        finally:
            store.close()


class TestPinsUnderConcurrentCommits:
    def test_shipment_anchor_survives_committer_and_cleaner_threads(self):
        store = fresh_store()
        stop = threading.Event()
        errors = []

        def committer():
            cid = store.allocate_chunk_id()
            n = 0
            try:
                while not stop.is_set():
                    store.write(cid, f"v{n}".encode() * 100)
                    n += 1
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def cleaner():
            try:
                while not stop.is_set():
                    store.clean()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        try:
            seed = []
            seed_writes = {}
            for _ in range(10):
                cid = store.allocate_chunk_id()
                seed_writes[cid] = b"seed" * 200
                seed.append(cid)
            store.commit(seed_writes)
            anchor, frozen = capture_anchor(store)

            threads = [
                threading.Thread(target=committer),
                threading.Thread(target=committer),
                threading.Thread(target=cleaner),
            ]
            for thread in threads:
                thread.start()
            try:
                for _ in range(50):
                    check_anchor_intact(store, anchor, frozen)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30)
            assert not errors, errors
            check_anchor_intact(store, anchor, frozen)
            anchor.snapshot.release()

            # Release + churn: previously pinned segments become fair
            # game again (they at least may be freed; no assertion that
            # they must be, since liveness depends on the workload).
            store.commit({cid: b"churn" * 100 for cid in seed})
            store.clean()
            store.read_segment_bytes(
                store.segments.tail_segment, 0, 0
            )  # store still coherent
        finally:
            store.close()

    def test_released_pins_allow_reclaim(self):
        store = fresh_store()
        try:
            cids = []
            writes = {}
            for _ in range(12):
                cid = store.allocate_chunk_id()
                writes[cid] = b"d" * 800
                cids.append(cid)
            store.commit(writes)
            anchor, _frozen = capture_anchor(store)
            pinned = {info.number for info in anchor.segments}

            # Kill all the data so the pinned segments become pure dead
            # weight, then verify the cleaner honors the pin...
            store.commit({}, deallocs=cids)
            store.checkpoint(force=True)
            store.clean(max_segments=16)
            still_held = {
                number
                for number in pinned
                if not store.segments.segments[number].is_free
            }
            assert still_held == pinned

            # ...and reclaims once released.
            anchor.snapshot.release()
            freed_total = 0
            for _ in range(8):
                freed_total += store.clean(max_segments=16)
                store.checkpoint(force=True)
            freed_pinned = {
                number
                for number in pinned
                if store.segments.segments.get(number) is None
                or store.segments.segments[number].is_free
            }
            assert freed_pinned, "cleaner never reclaimed released segments"
        finally:
            store.close()
