"""Tests for the shared LRU cache (paper section 4.2.2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import SharedLruCache


class TestBasics:
    def test_put_get_roundtrip(self):
        cache = SharedLruCache(1024)
        cache.put("obj", 1, "value", 10)
        assert cache.get("obj", 1) == "value"

    def test_get_missing_returns_none_and_counts_miss(self):
        cache = SharedLruCache(1024)
        assert cache.get("obj", 42) is None
        assert cache.stats.misses == 1

    def test_namespaces_are_disjoint(self):
        cache = SharedLruCache(1024)
        cache.put("obj", 1, "object", 10)
        cache.put("map", 1, "node", 10)
        assert cache.get("obj", 1) == "object"
        assert cache.get("map", 1) == "node"

    def test_replace_updates_charge(self):
        cache = SharedLruCache(1024)
        cache.put("obj", 1, "small", 10)
        cache.put("obj", 1, "bigger", 100)
        assert cache.stats.charged_bytes == 100
        assert cache.get("obj", 1) == "bigger"

    def test_remove(self):
        cache = SharedLruCache(1024)
        cache.put("obj", 1, "v", 10)
        cache.remove("obj", 1)
        assert cache.get("obj", 1) is None
        assert cache.stats.charged_bytes == 0

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            SharedLruCache(0)

    def test_negative_charge_rejected(self):
        cache = SharedLruCache(100)
        with pytest.raises(ValueError):
            cache.put("obj", 1, "v", -1)


class TestEviction:
    def test_lru_order_eviction(self):
        cache = SharedLruCache(30)
        cache.put("obj", 1, "a", 10)
        cache.put("obj", 2, "b", 10)
        cache.put("obj", 3, "c", 10)
        cache.get("obj", 1)  # touch 1, making 2 the coldest
        cache.put("obj", 4, "d", 10)
        assert cache.get("obj", 2) is None
        assert cache.get("obj", 1) == "a"

    def test_eviction_callback_runs(self):
        evicted = []
        cache = SharedLruCache(20)
        cache.put("obj", 1, "a", 10, on_evict=lambda k, v: evicted.append((k, v)))
        cache.put("obj", 2, "b", 10)
        cache.put("obj", 3, "c", 10)
        assert evicted == [(1, "a")]

    def test_pinned_entries_survive_eviction(self):
        cache = SharedLruCache(20)
        cache.put("obj", 1, "dirty", 10)
        cache.pin("obj", 1)
        cache.put("obj", 2, "b", 10)
        cache.put("obj", 3, "c", 10)
        assert cache.get("obj", 1) == "dirty"  # pinned: never evicted
        assert cache.get("obj", 2) is None

    def test_unpin_makes_evictable(self):
        cache = SharedLruCache(20)
        cache.put("obj", 1, "a", 10)
        cache.pin("obj", 1)
        cache.unpin("obj", 1)
        cache.put("obj", 2, "b", 10)
        cache.put("obj", 3, "c", 10)
        assert cache.get("obj", 1) is None

    def test_pin_is_reference_counted(self):
        cache = SharedLruCache(20)
        cache.put("obj", 1, "a", 10)
        cache.pin("obj", 1)
        cache.pin("obj", 1)
        cache.unpin("obj", 1)
        cache.put("obj", 2, "b", 10)
        cache.put("obj", 3, "c", 10)
        assert cache.get("obj", 1) == "a"  # one pin still held
        assert cache.pin_count("obj", 1) == 1

    def test_unbalanced_unpin_raises(self):
        cache = SharedLruCache(20)
        cache.put("obj", 1, "a", 10)
        with pytest.raises(ValueError):
            cache.unpin("obj", 1)

    def test_pin_missing_raises(self):
        cache = SharedLruCache(20)
        with pytest.raises(KeyError):
            cache.pin("obj", 404)

    def test_replace_preserves_pins(self):
        cache = SharedLruCache(100)
        cache.put("obj", 1, "a", 10)
        cache.pin("obj", 1)
        cache.put("obj", 1, "a2", 10)
        assert cache.pin_count("obj", 1) == 1

    def test_budget_can_be_exceeded_by_pins_only(self):
        cache = SharedLruCache(15)
        cache.put("obj", 1, "a", 10)
        cache.pin("obj", 1)
        cache.put("obj", 2, "b", 10)
        cache.pin("obj", 2)
        # Both pinned: charged bytes exceed the budget, by design.
        assert cache.stats.charged_bytes == 20
        cache.put("obj", 3, "c", 10)
        cache.put("obj", 4, "d", 10)
        # The freshly inserted entry is protected from its own insertion's
        # eviction pass, but becomes the victim of the next one.
        assert cache.get("obj", 3) is None
        assert cache.get("obj", 4) == "d"


class TestMaintenance:
    def test_update_charge(self):
        cache = SharedLruCache(100)
        cache.put("obj", 1, "a", 10)
        cache.update_charge("obj", 1, 50)
        assert cache.stats.charged_bytes == 50

    def test_update_charge_missing_raises(self):
        cache = SharedLruCache(100)
        with pytest.raises(KeyError):
            cache.update_charge("obj", 1, 50)

    def test_items_filters_namespace(self):
        cache = SharedLruCache(100)
        cache.put("a", 1, "x", 1)
        cache.put("b", 2, "y", 1)
        cache.put("a", 3, "z", 1)
        assert dict(cache.items("a")) == {1: "x", 3: "z"}

    def test_clear_namespace(self):
        cache = SharedLruCache(100)
        cache.put("a", 1, "x", 10)
        cache.put("b", 2, "y", 10)
        cache.clear_namespace("a")
        assert cache.get("a", 1) is None
        assert cache.get("b", 2) == "y"
        assert cache.stats.charged_bytes == 10

    def test_peek_does_not_touch(self):
        cache = SharedLruCache(20)
        cache.put("obj", 1, "a", 10)
        cache.put("obj", 2, "b", 10)
        cache.peek("obj", 1)  # must NOT promote 1
        cache.put("obj", 3, "c", 10)
        assert cache.get("obj", 1) is None

    @given(
        st.lists(
            st.tuples(st.integers(0, 10), st.integers(1, 20)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=40)
    def test_property_charged_bytes_consistent(self, operations):
        cache = SharedLruCache(64)
        for key, charge in operations:
            cache.put("ns", key, f"v{key}", charge)
        total = sum(
            entry.charge for entry in cache._entries.values()
        )
        assert cache.stats.charged_bytes == total
        assert cache.stats.charged_bytes <= 64  # nothing pinned here
