"""The sharded service: layout, routing, virtual oids, cross-shard 2PC,
worker crash recovery, and the protocol-version handshake.

Every test runs real worker *processes* behind the asyncio front door —
nothing is mocked — so the suite doubles as the integration harness for
the multi-process commit protocol.  The crash sweep at the bottom kills
a worker at every two-phase-commit boundary and asserts the acceptance
invariant: all-or-nothing, zero duplicate commits.
"""

from __future__ import annotations

import contextlib
import os
import signal
import socket
import struct
import threading
import time

import pytest

from repro.errors import (
    LockTimeoutError,
    ObjectNotFoundError,
    ProtocolError,
    ServerError,
    SessionStateError,
    TDBError,
    TransientStoreError,
)
from repro.server import (
    BackpressureConfig,
    ShardedTdbServer,
    ShardLayout,
    TdbClient,
    TdbServer,
)
from repro.server import protocol
from repro.server.coordinator import CommitStage
from repro.server.sharding import decode_oid, encode_oid, shard_of_key


@contextlib.contextmanager
def sharded_server(tmp_path, shards=2, **kwargs):
    kwargs.setdefault(
        "backpressure",
        BackpressureConfig(
            idle_timeout=15.0, request_timeout=10.0, resume_grace=1.5
        ),
    )
    server = ShardedTdbServer(str(tmp_path / "db"), shards=shards, **kwargs)
    server.start()
    try:
        yield server
    finally:
        server.stop()


def connect(server, **kwargs) -> TdbClient:
    host, port = server.address
    kwargs.setdefault("timeout", 10.0)
    return TdbClient(host, port, **kwargs)


# ---------------------------------------------------------------------------
# Pure routing / layout units (no processes involved)
# ---------------------------------------------------------------------------

class TestShardingPrimitives:
    def test_virtual_oid_round_trip(self):
        for shards in (1, 2, 4, 7):
            for local in (0, 1, 17, 123456):
                for shard in range(shards):
                    void = encode_oid(local, shard, shards)
                    assert decode_oid(void, shards) == (local, shard)

    def test_virtual_oids_are_disjoint_across_shards(self):
        seen = set()
        for local in range(64):
            for shard in range(4):
                seen.add(encode_oid(local, shard, 4))
        assert len(seen) == 64 * 4

    def test_key_routing_is_stable_and_bounded(self):
        for key in ("alpha", "beta", "__2pc:ledger", "", "café"):
            first = shard_of_key(key, 4)
            assert 0 <= first < 4
            assert shard_of_key(key, 4) == first

    def test_layout_pins_the_shard_count(self, tmp_path):
        root = str(tmp_path / "db")
        ShardLayout.create(root, 3)
        assert ShardLayout.open(root).shards == 3
        assert ShardLayout.open_or_create(root, 3).shards == 3
        with pytest.raises(ServerError, match="created with 3"):
            ShardLayout.open(root, shards=4)

    def test_layout_refuses_unsharded_directory(self, tmp_path):
        root = tmp_path / "db"
        (root / "data").mkdir(parents=True)
        with pytest.raises(ServerError, match="unsharded"):
            ShardLayout.create(str(root), 2)


# ---------------------------------------------------------------------------
# Data path through real worker processes
# ---------------------------------------------------------------------------

class TestShardedDataPath:
    def test_object_round_trip_and_names(self, tmp_path):
        with sharded_server(tmp_path) as server:
            with connect(server) as client:
                with client.transaction() as txn:
                    oid = txn.put({"title": "So What", "plays": 1})
                    txn.bind("track", oid)
                with client.transaction() as txn:
                    assert txn.lookup("track") == oid
                    assert txn.get(oid) == {"title": "So What", "plays": 1}
                    txn.put({"title": "So What", "plays": 2}, oid=oid)
                with client.transaction() as txn:
                    assert txn.get(oid)["plays"] == 2
                    txn.remove(oid)
                with client.transaction() as txn:
                    with pytest.raises(ObjectNotFoundError):
                        txn.get(oid)

    def test_inserts_land_on_both_shards(self, tmp_path):
        with sharded_server(tmp_path, shards=2) as server:
            with connect(server) as client:
                with client.transaction() as txn:
                    oids = [txn.put({"i": i}) for i in range(8)]
                shards_hit = {decode_oid(oid, 2)[1] for oid in oids}
                assert shards_hit == {0, 1}, "round-robin placement broke"
                with client.transaction() as txn:
                    for i, oid in enumerate(oids):
                        assert txn.get(oid) == {"i": i}

    def test_collections_live_wholly_on_one_shard(self, tmp_path):
        with sharded_server(tmp_path, shards=2) as server:
            with connect(server) as client:
                with client.transaction("collection") as ct:
                    ct.create_collection("tracks", "title", unique=True)
                    for title in ("a", "b", "c"):
                        ct.insert("tracks", {"title": title})
                with client.transaction("collection") as ct:
                    rows = ct.iterate("tracks")
                    assert [r["title"] for r in rows] == ["a", "b", "c"]
                    assert ct.get_match("tracks", "b")[0]["title"] == "b"

    def test_cross_shard_abort_is_atomic(self, tmp_path):
        with sharded_server(tmp_path, shards=2) as server:
            with connect(server) as client:
                with pytest.raises(RuntimeError):
                    with client.transaction() as txn:
                        for i in range(4):  # touches both shards
                            txn.put({"doomed": i})
                        raise RuntimeError("bail out")
                with client.transaction() as txn:
                    oids = [txn.put({"kept": i}) for i in range(4)]
                with client.transaction() as txn:
                    for oid in oids:
                        assert "kept" in txn.get(oid)

    def test_restart_preserves_all_shards(self, tmp_path):
        with sharded_server(tmp_path, shards=2) as server:
            with connect(server) as client:
                with client.transaction() as txn:
                    oids = [txn.put({"i": i}) for i in range(6)]
                    txn.bind("anchor", oids[0])
        # Reopen the same layout: shard count comes from the manifest.
        server = ShardedTdbServer(str(tmp_path / "db"))
        server.start()
        try:
            with connect(server) as client:
                with client.transaction() as txn:
                    assert txn.lookup("anchor") == oids[0]
                    for i, oid in enumerate(oids):
                        assert txn.get(oid) == {"i": i}
        finally:
            server.stop()

    def test_strict_2pl_conflicts_surface_as_lock_timeouts(self, tmp_path):
        with sharded_server(tmp_path, shards=2) as server:
            with connect(server) as c1, connect(server) as c2:
                with c1.transaction() as txn:
                    oid = txn.put({"v": 0})
                with c1.transaction() as txn1:
                    txn1.put({"v": 1}, oid=oid)  # exclusive lock held
                    with pytest.raises((LockTimeoutError, TransientStoreError)):
                        with c2.transaction() as txn2:
                            txn2.put({"v": 2}, oid=oid)
                            txn2.commit()
                with c1.transaction() as txn:
                    assert txn.get(oid)["v"] == 1

    def test_mode_mismatch_and_no_txn_errors_match_threaded(self, tmp_path):
        with sharded_server(tmp_path) as server:
            with connect(server) as client:
                with pytest.raises(SessionStateError, match="no open transaction"):
                    client.call("obj.get", oid=1)
                with client.transaction("collection"):
                    with pytest.raises(SessionStateError, match="needs a object"):
                        client.call("obj.get", oid=1)


# ---------------------------------------------------------------------------
# hello / protocol-version negotiation (both directions)
# ---------------------------------------------------------------------------

@contextlib.contextmanager
def v1_server():
    """A protocol-version-1 impostor: answers ``hello`` the way the old
    threaded server did — with an unknown-verb ProtocolError."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(4)
    stop = threading.Event()

    def serve():
        while not stop.is_set():
            try:
                conn, _ = listener.accept()
            except OSError:
                return
            with conn:
                while True:
                    try:
                        request = protocol.read_frame(conn, 5.0, 5.0)
                    except (OSError, ProtocolError):
                        break
                    if request is None:
                        break
                    protocol.write_frame(conn, protocol.error_payload(
                        request.get("id"),
                        ProtocolError(f"unknown verb {request.get('op')!r}"),
                    ))

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    try:
        yield listener.getsockname()
    finally:
        stop.set()
        listener.close()
        thread.join(timeout=2.0)


class TestHello:
    def test_new_client_vs_threaded_server(self):
        from repro.db import Database

        db = Database.in_memory()
        server = TdbServer(db).start()
        try:
            with connect(server) as client:
                info = client.hello()
                assert info["protocol"] == protocol.PROTOCOL_VERSION
                assert info["sharded"] is False
                assert info["shards"] == 1
                assert "commit-tokens" in info["features"]
                assert client.hello() is info  # cached
        finally:
            server.stop()
            db.close()

    def test_new_client_vs_sharded_server(self, tmp_path):
        with sharded_server(tmp_path, shards=2) as server:
            with connect(server) as client:
                info = client.hello()
                assert info["protocol"] == protocol.PROTOCOL_VERSION
                assert info["sharded"] is True
                assert info["shards"] == 2
                assert "cross-shard-commit" in info["features"]

    def test_new_client_vs_v1_server_falls_back(self):
        with v1_server() as (host, port):
            with TdbClient(host, port, timeout=5.0) as client:
                info = client.hello()
                assert info["protocol"] == 1
                assert info["features"] == []

    def test_old_client_needs_no_hello(self, tmp_path):
        """A v1 client never sends ``hello``; raw v1 frames must work
        against both server modes unchanged."""

        def v1_conversation(address):
            sock = socket.create_connection(address, timeout=5.0)
            try:
                for i, frame in enumerate(
                    [
                        {"id": 1, "op": "begin", "mode": "object"},
                        {"id": 2, "op": "obj.put", "oid": None,
                         "value": {"legacy": True}},
                        {"id": 3, "op": "commit"},
                    ]
                ):
                    protocol.write_frame(sock, frame)
                    response = protocol.read_frame(sock, 5.0, 5.0)
                    assert response["ok"], response
                    if i == 1:
                        oid = response["result"]["oid"]
                return oid
            finally:
                sock.close()

        with sharded_server(tmp_path) as server:
            oid = v1_conversation(server.address)
            with connect(server) as client:
                with client.transaction() as txn:
                    assert txn.get(oid) == {"legacy": True}

        from repro.db import Database

        db = Database.in_memory()
        threaded = TdbServer(db).start()
        try:
            v1_conversation(threaded.address)
        finally:
            threaded.stop()
            db.close()


# ---------------------------------------------------------------------------
# Worker crash: transient surfacing, respawn, session resume
# ---------------------------------------------------------------------------

class TestWorkerCrash:
    def wait_for_respawn(self, server, shard, old_pid, deadline=15.0):
        end = time.monotonic() + deadline
        while time.monotonic() < end:
            pid = server.worker_pid(shard)
            if pid is not None and pid != old_pid:
                return pid
            time.sleep(0.05)
        raise AssertionError(f"shard {shard} worker never respawned")

    def test_kill_between_txns_is_invisible_after_respawn(self, tmp_path):
        with sharded_server(tmp_path, shards=2) as server:
            with connect(server) as client:
                with client.transaction() as txn:
                    oids = [txn.put({"i": i}) for i in range(4)]
                victim = decode_oid(oids[0], 2)[1]
                old_pid = server.worker_pid(victim)
                server.kill_worker(victim)
                self.wait_for_respawn(server, victim, old_pid)

                def check(txn):
                    for i, oid in enumerate(oids):
                        assert txn.get(oid) == {"i": i}

                client.run_transaction(check, attempts=6)

    def test_kill_mid_txn_poisons_then_retry_succeeds(self, tmp_path):
        with sharded_server(tmp_path, shards=2) as server:
            with connect(server) as client:
                attempts = {"n": 0}

                def work(txn):
                    attempts["n"] += 1
                    oid = txn.put({"attempt": attempts["n"]})
                    if attempts["n"] == 1:
                        shard = decode_oid(oid, 2)[1]
                        old_pid = server.worker_pid(shard)
                        server.kill_worker(shard)
                        self.wait_for_respawn(server, shard, old_pid)
                    txn.bind("survivor", oid)
                    return oid

                oid = client.run_transaction(work, attempts=6)
                assert attempts["n"] >= 2, "first attempt should have failed"
                with client.transaction() as txn:
                    assert txn.lookup("survivor") == oid
                resilience = client.stats()["resilience"]
                assert resilience["worker_restarts"] >= 1
                assert resilience["poisoned_sessions"] >= 1


# ---------------------------------------------------------------------------
# The acceptance crash sweep: kill a worker at every 2PC boundary
# ---------------------------------------------------------------------------

def name_for_shard(shard, shards=2, prefix="mark"):
    """A name whose hash routes to ``shard``."""
    i = 0
    while True:
        name = f"{prefix}:{i}"
        if shard_of_key(name, shards) == shard:
            return name
        i += 1


def put_on_both_shards(txn):
    """Write one object and bind one name per shard, so the commit is
    cross-shard and carries a catalog mutation on each participant —
    the sweep then also proves recovered *catalog* state survives, not
    just fresh object chunks."""
    oids = [txn.put({"n": i}) for i in range(2)]
    by_shard = {decode_oid(oid, 2)[1]: oid for oid in oids}
    assert set(by_shard) == {0, 1}
    for shard, oid in sorted(by_shard.items()):
        txn.bind(name_for_shard(shard), oid)
    return oids


SWEEP_STAGES = [
    (CommitStage.BEFORE_PREPARE, 0),
    (CommitStage.BEFORE_PREPARE, 1),
    (CommitStage.AFTER_PREPARE, 0),
    (CommitStage.AFTER_PREPARE, 1),
    (CommitStage.BEFORE_DECISION, None),
    (CommitStage.AFTER_DECISION, None),
    (CommitStage.BEFORE_DECIDE, 0),
    (CommitStage.BEFORE_DECIDE, 1),
    (CommitStage.AFTER_DECIDE, 0),
]


class TestCrossShardCrashSweep:
    """Kill one worker at each commit boundary; the outcome must be
    all-or-nothing with zero duplicates, and the retried client must
    converge to exactly one commit."""

    @pytest.mark.parametrize("stage,stage_shard", SWEEP_STAGES)
    def test_kill_at_boundary_is_all_or_nothing(
        self, tmp_path, stage, stage_shard
    ):
        with sharded_server(tmp_path, shards=2) as server:
            fired = {"done": False}

            def hook(hook_stage, token, shard):
                if fired["done"] or hook_stage != stage:
                    return
                if stage_shard is not None and shard != stage_shard:
                    return
                fired["done"] = True
                # Kill the stage's shard (or shard 0 for the global
                # decision boundaries, where shard is None).
                server.kill_worker(shard if shard is not None else 0)

            server.on_stage = hook
            with connect(server, resolve_timeout=10.0) as client:
                marker_oids = client.run_transaction(
                    put_on_both_shards, attempts=8
                )
                assert fired["done"], f"stage {stage} never fired"
            server.on_stage = None

            # Judge over a clean connection after workers settle: the
            # committed transaction must be fully present on both
            # shards, exactly once per shard.
            with connect(server) as judge:

                def verify(txn):
                    values = sorted(
                        txn.get(oid)["n"] for oid in marker_oids
                    )
                    assert values == [0, 1]
                    for oid in marker_oids:
                        shard = decode_oid(oid, 2)[1]
                        assert txn.lookup(name_for_shard(shard)) == oid

                judge.run_transaction(verify, attempts=8)
                stats = judge.stats()
            commits = stats["resilience"]["cross_shard_commits"]
            assert commits >= 1
            for shard, payload in stats["per_shard"].items():
                assert payload is not None, f"shard {shard} still down"

    def test_recovered_bind_survives_later_catalog_write(self, tmp_path):
        """A name bound in a commit that was recovered from a redo
        record must survive a *later* catalog write on the same shard:
        the respawned worker's cached catalog (populated while opening
        the ledger) must not be re-committed over the recovered state."""
        with sharded_server(tmp_path, shards=2) as server:
            fired = {"done": False}

            def hook(stage, token, shard):
                # Decision logged, shard 1 killed before its decide: the
                # respawned worker replays the redo record — including
                # its name bind — straight into the chunk store.
                if (
                    not fired["done"]
                    and stage == CommitStage.BEFORE_DECIDE
                    and shard == 1
                ):
                    fired["done"] = True
                    server.kill_worker(1)

            server.on_stage = hook
            with connect(server, resolve_timeout=10.0) as client:
                oids = client.run_transaction(put_on_both_shards, attempts=8)
                assert fired["done"]
            server.on_stage = None
            with connect(server) as client:
                # A later, unrelated catalog write on each shard: with a
                # stale cached catalog this would silently erase the
                # recovered bind when the stale copy is re-committed.
                def later_binds(txn):
                    for oid in oids:
                        shard = decode_oid(oid, 2)[1]
                        assert txn.lookup(name_for_shard(shard)) == oid
                        txn.bind(name_for_shard(shard, prefix="later"), oid)

                client.run_transaction(later_binds, attempts=8)

                def verify(txn):
                    for oid in oids:
                        shard = decode_oid(oid, 2)[1]
                        assert txn.lookup(name_for_shard(shard)) == oid
                        assert txn.lookup(
                            name_for_shard(shard, prefix="later")
                        ) == oid

                client.run_transaction(verify, attempts=8)

    def test_abandoned_prepare_resolves_by_presumed_abort(self, tmp_path):
        """A prepare whose coordinator never logs a decision must abort
        at respawn — the redo record may not leak into the store."""
        with sharded_server(tmp_path, shards=2) as server:
            killed = {"done": False}

            def hook(stage, token, shard):
                # After shard 0 prepared, kill shard 1 *before* its
                # prepare: the round aborts with no decision record.
                if (
                    not killed["done"]
                    and stage == CommitStage.BEFORE_PREPARE
                    and shard == 1
                ):
                    killed["done"] = True
                    server.kill_worker(1)

            server.on_stage = hook
            with connect(server, resolve_timeout=10.0) as client:
                oids = client.run_transaction(put_on_both_shards, attempts=8)
                assert killed["done"]
            server.on_stage = None
            with connect(server) as judge:

                def verify(txn):
                    assert sorted(txn.get(o)["n"] for o in oids) == [0, 1]

                judge.run_transaction(verify, attempts=8)


# ---------------------------------------------------------------------------
# Single-shard commit tokens: truthful settlement from the worker ledger
# ---------------------------------------------------------------------------

class TestSingleShardTokenSettlement:
    """A worker death during a forwarded single-shard commit must not
    strand the client in-doubt: the commit token rides the write set
    into the worker's durable ledger, so the respawned worker's state
    answers the true outcome."""

    def test_death_after_durable_commit_settles_as_committed(self, tmp_path):
        """Worker exits between the durable commit and the ack: the
        front door consults the recovered ledger and reports success —
        a blind retry here would double-apply the update."""
        with sharded_server(tmp_path, shards=2) as server:
            with connect(server, timeout=30.0, resolve_timeout=20.0) as client:
                with client.transaction() as txn:
                    oid = txn.put({"v": 1})
                shard = decode_oid(oid, 2)[1]
                server.inject_worker_fault(shard, "exit_after_commit")
                calls = {"n": 0}

                def bump(txn):
                    calls["n"] += 1
                    txn.put({"v": txn.get(oid)["v"] + 1}, oid=oid)

                client.run_transaction(bump, attempts=6)
                assert calls["n"] == 1, "durable commit must not be retried"
                with client.transaction() as txn:
                    assert txn.get(oid)["v"] == 2  # exactly once
            with connect(server) as judge:
                resilience = judge.stats()["resilience"]
            assert resilience["commit_settlements"] >= 1
            assert resilience["worker_restarts"] >= 1

    def test_death_before_durable_commit_settles_as_retry(self, tmp_path):
        """Worker dies with the commit accepted but not yet applied: the
        token is absent from the ledger, so the front door reports a
        retryable failure (not in-doubt forever) and the retry lands
        exactly once."""
        with sharded_server(tmp_path, shards=2) as server:
            with connect(server, timeout=30.0, resolve_timeout=20.0) as client:
                attempts = {"n": 0}

                def work(txn):
                    attempts["n"] += 1
                    oid = txn.put({"attempt": attempts["n"]})
                    if attempts["n"] == 1:
                        shard = decode_oid(oid, 2)[1]
                        pid = server.worker_pid(shard)
                        # Freeze the worker so the commit frame is never
                        # processed, then kill it mid-flight.
                        os.kill(pid, signal.SIGSTOP)
                        timer = threading.Timer(
                            0.5, os.kill, args=(pid, signal.SIGKILL)
                        )
                        timer.daemon = True
                        timer.start()
                    return oid

                oid = client.run_transaction(work, attempts=6)
                assert attempts["n"] >= 2, "first commit cannot have landed"
                with client.transaction() as txn:
                    assert txn.get(oid)["attempt"] == attempts["n"]
            with connect(server) as judge:
                resilience = judge.stats()["resilience"]
            assert resilience["commit_settlements"] >= 1


# ---------------------------------------------------------------------------
# Decision-log bounds and the one-front-door guard
# ---------------------------------------------------------------------------

class TestDecisionLogBounds:
    def test_done_marks_prune_and_compaction_bounds_the_file(self, tmp_path):
        from repro.server.coordinator import DecisionLog

        path = str(tmp_path / "coord" / "decisions.log")
        log = DecisionLog(path, compact_every=4)
        for i in range(8):
            log.record_commit(f"tok{i}", [0, 1])
        for i in range(8):
            log.mark_done(f"tok{i}")
        # Every decision acknowledged: the live map is empty and the
        # second compaction rewrote the file down to nothing.
        assert log._decisions == {}
        assert os.path.getsize(path) == 0
        # Recently acknowledged tokens stay answerable until compaction.
        log.record_commit("pending", [0])
        log.record_commit("acked", [1])
        log.mark_done("acked")
        assert log.committed("acked")
        assert log.committed("pending")
        assert not log.committed("never-seen")
        log.close()
        # Reload: pending decisions survive, acknowledged ones are not
        # re-driven at any shard.
        log2 = DecisionLog(path, compact_every=4)
        assert log2.committed("pending")
        assert log2.pending_for_shard(0) == ["pending"]
        assert log2.pending_for_shard(1) == []
        log2.close()


class TestSingleWriterGuard:
    def test_second_front_door_on_same_layout_is_refused(self, tmp_path):
        with sharded_server(tmp_path, shards=2) as server:
            dup = ShardedTdbServer(str(tmp_path / "db"), shards=2)
            with pytest.raises(ServerError, match="already served"):
                dup.start()
            # The refusal must not have broken the live server.
            with connect(server) as client:
                with client.transaction() as txn:
                    txn.put({"still": "serving"})
        # A clean stop releases the layout for the next server.
        server2 = ShardedTdbServer(str(tmp_path / "db"))
        server2.start()
        try:
            with connect(server2) as client:
                with client.transaction() as txn:
                    txn.put({"again": True})
        finally:
            server2.stop()


# ---------------------------------------------------------------------------
# Resilience plumbing: parking/resume and unsupported verbs
# ---------------------------------------------------------------------------

class TestFrontDoorResilience:
    def test_dropped_connection_parks_and_resumes(self, tmp_path):
        with sharded_server(tmp_path, shards=2) as server:
            with connect(server) as client:
                with client.transaction() as txn:
                    oid = txn.put({"v": 1})
                    # Sever the TCP connection under the client with an
                    # RST (a clean FIN would read as a deliberate close);
                    # the session parks server-side with its worker txns,
                    # and the client's next call trips over the dead
                    # socket and transparently resumes.
                    client._sock.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_LINGER,
                        struct.pack("ii", 1, 0),
                    )
                    client._sock.close()
                    assert txn.get(oid) == {"v": 1}  # resumes + replays
                assert client.counters["session_resumes"] >= 1
                with client.transaction() as txn:
                    assert txn.get(oid) == {"v": 1}
            stats_client = connect(server)
            with stats_client:
                resilience = stats_client.stats()["resilience"]
            assert resilience["sessions_parked"] >= 1
            assert resilience["sessions_resumed"] >= 1

    def test_unsupported_verbs_fail_cleanly(self, tmp_path):
        with sharded_server(tmp_path) as server:
            with connect(server) as client:
                with pytest.raises(ServerError, match="unavailable"):
                    client.call("repl.master")
                with pytest.raises(ServerError, match="unavailable"):
                    client.call("log.head")
                with pytest.raises(ProtocolError, match="unknown verb"):
                    client.call("no.such.verb")

    def test_stats_aggregates_every_shard(self, tmp_path):
        with sharded_server(tmp_path, shards=2) as server:
            with connect(server) as client:
                with client.transaction() as txn:
                    txn.put({"x": 1})
                stats = client.stats()
            assert stats["sharded"] is True
            assert stats["shards"] == 2
            assert set(stats["per_shard"]) == {"0", "1"}
            for payload in stats["per_shard"].values():
                assert payload["chunk_store"]["live_bytes"] >= 0
                assert "counters" in payload
            assert "single_shard_commits" in stats["resilience"]
            assert stats["sessions"]["max_sessions"] > 0


# ---------------------------------------------------------------------------
# CLI entry point
# ---------------------------------------------------------------------------

class TestServeShardsCli:
    def test_serve_shards_round_trip(self, tmp_path):
        from repro.tools import serve_sharded_database

        ready = threading.Event()
        stop = threading.Event()
        bound = {}

        def on_ready(host, port):
            bound["address"] = (host, port)
            ready.set()

        thread = threading.Thread(
            target=serve_sharded_database,
            args=(str(tmp_path / "db"), "127.0.0.1", 0, 2),
            kwargs={"ready_callback": on_ready, "stop_event": stop},
            daemon=True,
        )
        thread.start()
        try:
            assert ready.wait(timeout=60.0), "server never became ready"
            with TdbClient(*bound["address"], timeout=10.0) as client:
                assert client.hello()["shards"] == 2
                with client.transaction() as txn:
                    oid = txn.put({"cli": True})
                with client.transaction() as txn:
                    assert txn.get(oid) == {"cli": True}
        finally:
            stop.set()
            thread.join(timeout=30.0)
        assert not thread.is_alive()
