"""Tests for the benchmark harness (metrics, TPC-B drivers, footprint)."""

from __future__ import annotations

import pytest

from repro.bench.footprint import GROUPS, measure_footprint
from repro.bench.metrics import DiskModel, LatencyStats, Stopwatch, TxnMetrics
from repro.bench.tpcb import (
    AccountRec,
    BaselineTpcbDriver,
    HistoryRec,
    TdbTpcbDriver,
    TpcbScale,
)
from repro.platform.iostats import IOStats


class TestDiskModel:
    def test_sequential_sync_costs_rotation(self):
        model = DiskModel()
        stats = IOStats(sync_calls=2)
        assert model.cost_ms(stats) == pytest.approx(2 * model.rotational_ms)

    def test_random_writes_cost_damped_seeks(self):
        model = DiskModel()
        stats = IOStats(random_writes=4)
        expected = (
            4
            * (model.write_seek_ms + model.rotational_ms)
            * model.random_write_absorption
        )
        assert model.cost_ms(stats) == pytest.approx(expected)

    def test_counter_bumps_priced_separately(self):
        model = DiskModel()
        assert model.cost_ms(IOStats(), counter_bumps=3) == pytest.approx(
            3 * model.counter_write_ms
        )

    def test_transfer_cost_scales_with_bytes(self):
        model = DiskModel(bandwidth_mb_s=10.0)
        stats = IOStats(bytes_written=10_000)
        assert model.cost_ms(stats) == pytest.approx(1.0)


class TestLatencyStats:
    def test_mean_and_percentiles(self):
        stats = LatencyStats()
        for value in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10):
            stats.record(value / 1000.0)  # seconds
        assert stats.mean == pytest.approx(5.5)
        assert stats.p50 == pytest.approx(6.0)
        assert stats.p95 == pytest.approx(10.0)

    def test_empty_stats_are_zero(self):
        stats = LatencyStats()
        assert stats.mean == 0.0
        assert stats.p50 == 0.0

    def test_stopwatch_records(self):
        stats = LatencyStats()
        with Stopwatch(stats):
            pass
        assert stats.count == 1
        assert stats.samples_ms[0] >= 0.0

    def test_txn_metrics_per_txn_division(self):
        latency = LatencyStats()
        latency.record(0.001)
        latency.record(0.003)
        io = IOStats(bytes_written=2000, write_calls=4, sync_calls=2)
        metrics = TxnMetrics.collect("x", latency, io, DiskModel(), 1234)
        assert metrics.bytes_written_per_txn == pytest.approx(1000.0)
        assert metrics.sync_calls_per_txn == pytest.approx(1.0)
        assert metrics.db_size_bytes == 1234
        assert "x" in metrics.row()


class TestTpcbRecords:
    def test_balance_record_roundtrip_and_size(self):
        record = AccountRec(42, balance=-500)
        payload = record.pickle()
        clone = AccountRec.unpickle(payload)
        assert (clone.rec_id, clone.balance) == (42, -500)
        assert 90 <= len(payload) <= 110  # the paper's ~100-byte records

    def test_history_record_roundtrip(self):
        record = HistoryRec(1, 2, 3, 4, -99)
        clone = HistoryRec.unpickle(record.pickle())
        assert (clone.hist_id, clone.account, clone.teller, clone.branch,
                clone.delta) == (1, 2, 3, 4, -99)

    def test_paper_scale_matches_figure9(self):
        scale = TpcbScale.paper()
        assert (scale.accounts, scale.tellers, scale.branches) == (
            100_000,
            1_000,
            100,
        )


class TestDrivers:
    def test_tdb_driver_runs_consistently(self):
        driver = TdbTpcbDriver(TpcbScale.tiny(), secure=False)
        driver.load()
        driver.run(20)
        # All balances must net to the same total across A/T/B (each txn
        # applies one delta to each collection).
        totals = {}
        ct = driver.store.transaction()
        for name in ("account", "teller", "branch"):
            handle = ct.read_collection(name)
            iterator = handle.query(driver._indexers[name])
            total = 0
            while not iterator.end():
                total += iterator.read().balance
                iterator.next()
            iterator.close()
            totals[name] = total
        history = ct.read_collection("history")
        assert history.count == 20
        ct.abort()
        assert totals["account"] == totals["teller"] == totals["branch"]
        driver.close()

    def test_tdb_secure_driver_encrypts(self):
        driver = TdbTpcbDriver(TpcbScale.tiny(), secure=True)
        driver.load()
        driver.run(3)
        from repro.platform import Attacker

        assert Attacker(driver.untrusted).search_plaintext(b"\x2e" * 40) == []
        driver.close()

    def test_baseline_driver_runs_consistently(self):
        driver = BaselineTpcbDriver(TpcbScale.tiny())
        driver.load()
        driver.run(20)
        with driver.db.begin() as txn:
            account_total = sum(
                driver.decode_balance(value) for _, value in txn.scan("account")
            )
            teller_total = sum(
                driver.decode_balance(value) for _, value in txn.scan("teller")
            )
            history_rows = sum(1 for _ in txn.scan("history"))
        assert account_total == teller_total
        assert history_rows == 20
        driver.close()

    def test_drivers_are_deterministic_given_seed(self):
        first = TdbTpcbDriver(TpcbScale.tiny(), secure=False, seed=9)
        second = TdbTpcbDriver(TpcbScale.tiny(), secure=False, seed=9)
        for driver in (first, second):
            driver.load()
            driver.run(10)
        ct1 = first.store.transaction()
        ct2 = second.store.transaction()
        h1 = ct1.read_collection("account")
        h2 = ct2.read_collection("account")
        it1, it2 = h1.query(first._indexers["account"]), h2.query(
            second._indexers["account"]
        )
        while not it1.end():
            assert it1.read().balance == it2.read().balance
            it1.next()
            it2.next()
        it1.close()
        it2.close()
        ct1.abort()
        ct2.abort()
        first.close()
        second.close()


class TestFootprint:
    def test_groups_cover_disjoint_modules(self):
        seen = set()
        for entries in GROUPS.values():
            for entry in entries:
                assert entry not in seen
                seen.add(entry)

    def test_measurement_structure(self):
        results = measure_footprint()
        assert results["TDB - all modules"].source_lines == sum(
            results[name].source_lines for name in GROUPS
        )
        assert results["chunk store"].bytecode_bytes == max(
            results[name].bytecode_bytes for name in GROUPS
        )
        minimal = results["TDB minimal configuration"]
        full = results["TDB - all modules"]
        assert 0 < minimal.bytecode_bytes < full.bytecode_bytes


class TestFigureHarnesses:
    def test_run_figure10_smoke(self):
        from repro.bench.figure10 import print_report, run_figure10

        results = run_figure10(
            txns=30,
            warmup=10,
            accounts=60,
            tellers=10,
            branches=2,
            cache_bytes=32 * 1024,
        )
        assert set(results) == {"TDB", "TDB-S", "BerkeleyDB"}
        for metrics in results.values():
            assert metrics.transactions == 30
            assert metrics.bytes_written_per_txn > 0
        # The headline mechanism: TDB writes fewer bytes per transaction
        # than the baseline once the cache cannot hold the database.
        assert (
            results["TDB"].bytes_written_per_txn
            < results["BerkeleyDB"].bytes_written_per_txn
        )
        print_report(results)  # must not raise

    def test_run_figure11_smoke(self):
        from repro.bench.figure11 import print_report, run_figure11

        result = run_figure11(
            txns=30,
            warmup=10,
            accounts=60,
            tellers=10,
            branches=2,
            cache_bytes=32 * 1024,
            utilizations=(0.5, 0.9),
        )
        points = result["points"]
        assert [p.max_utilization for p in points] == [0.5, 0.9]
        for point in points:
            assert point.metrics.transactions == 30
            assert 0.0 < point.achieved_utilization <= 1.0
        print_report(result)  # must not raise

    def test_ablations_smoke(self):
        from repro.bench.ablation import (
            ablate_cache,
            ablate_chunking,
            ablate_crypto,
            ablate_index,
        )

        crypto = ablate_crypto(operations=5, payload=64)
        assert any(row["profile"] == "insecure" for row in crypto)
        chunking = ablate_chunking(objects=16, object_size=50, rounds=5)
        assert chunking[0]["objects_per_chunk"] == 1
        # Packing more objects per chunk costs more bytes per update.
        assert chunking[-1]["bytes_per_update"] > chunking[0]["bytes_per_update"]
        cache = ablate_cache(objects=200, reads=100)
        assert len(cache) == 4
        index = ablate_index(members=100, lookups=20)
        assert {row["kind"] for row in index} == {"btree", "hash", "list"}
