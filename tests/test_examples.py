"""The examples are part of the public contract: they must keep running.

Each example executes as a real subprocess (fresh interpreter, no shared
state) and must exit 0 with its expected markers in the output.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{name} exited {result.returncode}\n"
        f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "recovered after crash" in out
        assert "read-only ref enforced" in out
        assert "stale ref enforced" in out

    def test_drm_metering(self):
        out = run_example("drm_metering.py")
        assert "unique index enforced at insert" in out
        assert "free view" in out
        assert "index maintained" in out

    def test_tamper_detection(self):
        out = run_example("tamper_detection.py")
        assert "all five attacks detected." in out
        assert "UNDETECTED" not in out

    def test_backup_restore(self):
        out = run_example("backup_restore.py")
        assert "has 2 views (expect 2)" in out
        assert "out-of-sequence restore rejected" in out
        assert "corrupted backup rejected" in out

    def test_tpcb_demo(self):
        out = run_example("tpcb_demo.py")
        assert "TDB" in out and "BerkeleyDB" in out
        assert "modeled disk time" in out
