"""The digest pool: parallel verification that can only cost time.

The pool fans whole-payload digest/decrypt jobs across worker
processes, and its contract has two halves:

* **equivalence** — every pooled result is byte-identical to the serial
  path (same digests, same verdicts, same scrub reports), and
* **fail-safe degradation** — a crashed or flaky worker pool retreats to
  the serial path and re-runs the *same* jobs, so real damage is always
  reported; injection via
  :class:`~repro.testing.faults.FaultyDigestPool` proves it.

The memo-gate acceptance test at the bottom pins the interaction with
the digest memo: pooled or not, an incremental scrub of an unchanged
store re-hashes nothing.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.chunkstore import ChunkStore
from repro.config import ChunkStoreConfig, SecurityProfile
from repro.crypto import DigestPool
from repro.perf import PerfStats
from repro.platform import (
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)
from repro.testing import FaultyDigestPool

SECRET = b"digest-pool-secret-0123456789abc"


def pooled_config(pool_workers=2, **overrides):
    defaults = dict(
        segment_size=8 * 1024,
        initial_segments=4,
        checkpoint_residual_bytes=16 * 1024,
        map_fanout=8,
        security=SecurityProfile(pool_workers=pool_workers),
    )
    defaults.update(overrides)
    return ChunkStoreConfig(**defaults)


def fresh_store(pool_workers=2, chunks=24):
    untrusted = MemoryUntrustedStore()
    secret = MemorySecretStore(SECRET)
    counter = MemoryOneWayCounter()
    store = ChunkStore.format(
        untrusted, secret, counter, pooled_config(pool_workers)
    )
    expected = {}
    for i in range(chunks):
        cid = store.allocate_chunk_id()
        expected[cid] = bytes((i * 17 + j) % 256 for j in range(60 + 13 * i))
    store.commit(expected, durable=True)
    store.checkpoint(force=True)
    return store, untrusted, expected


def corrupt_chunk(store, untrusted, chunk_id):
    """Flip one media byte inside the stored payload of ``chunk_id``."""
    from repro.chunkstore.segments import segment_file_name

    loc = store.location_map.lookup(chunk_id)
    name = segment_file_name(loc.segment)
    offset = loc.offset + loc.length // 2
    original = untrusted.read(name, offset, 1)
    untrusted.write(name, offset, bytes([original[0] ^ 0x40]))
    return loc


# ---------------------------------------------------------------------------
# Pool primitives: parallel == serial
# ---------------------------------------------------------------------------


class TestPoolEquivalence:
    def test_parallel_matches_serial_digests(self):
        blobs = [bytes((i * j) % 256 for j in range(997)) for i in range(40)]
        serial = DigestPool(max_workers=1)
        with DigestPool(max_workers=2, batch_size=4) as parallel:
            assert parallel.parallel
            assert parallel.sha256_many(blobs) == serial.sha256_many(blobs)
            assert parallel.hmac_sha256_many(b"k", blobs) == (
                serial.hmac_sha256_many(b"k", blobs)
            )
        assert serial.sha256_many([]) == []

    def test_verify_payloads_verdicts(self):
        key = b"verify-key-0123456789abcdef01234"
        spec = ("aes-128", key, "native", "sha1")
        from repro.crypto import create_hash_engine, create_payload_cipher

        cipher = create_payload_cipher("aes-128", key, kernel="native")
        hasher = create_hash_engine("sha1")
        good = cipher.encrypt(b"clean payload")
        tampered = bytearray(good)
        tampered[-1] ^= 0x01
        jobs = [
            (good, hasher.digest(good)),
            (good, b"\x00" * 20),                       # forged digest
            (bytes(tampered), hasher.digest(bytes(tampered))),  # bad padding
        ]
        for workers in (1, 2):
            with DigestPool(max_workers=workers, batch_size=2) as pool:
                ok, forged, padding = pool.verify_payloads(spec, jobs)
                assert ok is None
                assert "hash" in forged
                assert padding is not None

    def test_perf_counters_meter_parallel_dispatch(self):
        perf = PerfStats()
        blobs = [b"x" * 100] * 10
        with DigestPool(max_workers=2, perf=perf, batch_size=3) as pool:
            pool.sha256_many(blobs)
        assert perf.counter("pool.dispatches") == 1
        assert perf.counter("pool.jobs") == 10
        assert perf.counter("pool.bytes") == 1000
        assert perf.counter("pool.fallbacks") == 0
        # Serial pools never touch the pool counters.
        serial_perf = PerfStats()
        DigestPool(max_workers=1, perf=serial_perf).sha256_many(blobs)
        assert serial_perf.counter("pool.dispatches") == 0

    def test_zero_workers_means_cpu_count(self):
        import os

        pool = DigestPool(max_workers=0)
        assert pool.max_workers == (os.cpu_count() or 1)
        pool.close()


# ---------------------------------------------------------------------------
# Fault injection: crashes and transient errors degrade, never lie
# ---------------------------------------------------------------------------


class TestPoolFaults:
    def test_worker_crash_falls_back_serially(self):
        perf = PerfStats()
        blobs = [bytes([i]) * 64 for i in range(20)]
        pool = FaultyDigestPool(max_workers=2, perf=perf, crash_dispatches=1)
        # The crashed dispatch is redone serially: results still correct.
        assert pool.sha256_many(blobs) == [
            hashlib.sha256(b).hexdigest() for b in blobs
        ]
        assert perf.counter("pool.fallbacks") == 1
        assert perf.counter("pool.dispatches") == 0
        assert not pool.parallel  # broken pools stay serial
        # Later calls run serially without another dispatch attempt.
        assert pool.sha256_many(blobs[:3]) == [
            hashlib.sha256(b).hexdigest() for b in blobs[:3]
        ]
        assert pool.dispatch_attempts == 1
        pool.close()

    def test_transient_error_falls_back_serially(self):
        perf = PerfStats()
        pool = FaultyDigestPool(
            max_workers=2,
            perf=perf,
            crash_dispatches=1,
            transient_error=OSError("injected: pipe exhausted"),
        )
        assert pool.hmac_sha256_many(b"k", [b"a", b"b"]) == (
            DigestPool(max_workers=1).hmac_sha256_many(b"k", [b"a", b"b"])
        )
        assert perf.counter("pool.fallbacks") == 1
        pool.close()

    @pytest.mark.parametrize(
        "transient", [None, OSError("injected transient")],
        ids=["worker-crash", "transient-error"],
    )
    def test_scrub_reports_damage_despite_pool_failure(self, transient):
        """A dying pool must never let scrub report a clean tree."""
        store, untrusted, expected = fresh_store(pool_workers=2)
        victim = sorted(expected)[3]
        loc = corrupt_chunk(store, untrusted, victim)
        # Swap in a pool whose first dispatch fails.
        store.digest_pool.close()
        store.digest_pool = FaultyDigestPool(
            max_workers=2,
            perf=store.perf,
            crash_dispatches=1,
            transient_error=transient,
        )
        report = store.scrub(deep=True)
        assert not report.clean
        assert [d.chunk_id for d in report.damaged_chunks] == [victim]
        assert report.damaged_chunks[0].segment == loc.segment
        assert report.verified_chunks == len(expected) - 1
        assert store.perf.counter("pool.fallbacks") == 1
        store.close()


# ---------------------------------------------------------------------------
# Store integration: pooled scrub == serial scrub
# ---------------------------------------------------------------------------


class TestPooledScrub:
    def test_pooled_scrub_matches_serial_scrub(self):
        pooled, _, expected = fresh_store(pool_workers=2)
        serial, _, _ = fresh_store(pool_workers=1)
        assert pooled.digest_pool.parallel
        assert not serial.digest_pool.parallel
        r_pooled, r_serial = pooled.scrub(deep=True), serial.scrub(deep=True)
        assert r_pooled.clean and r_serial.clean
        assert r_pooled.verified_chunks == r_serial.verified_chunks == len(expected)
        assert r_pooled.verified_nodes == r_serial.verified_nodes
        assert pooled.perf.counter("pool.dispatches") >= 1
        assert pooled.perf.counter("pool.jobs") == len(expected)
        pooled.close()
        serial.close()

    def test_pooled_scrub_localizes_damage(self):
        store, untrusted, expected = fresh_store(pool_workers=2)
        victims = sorted(expected)[:2]
        for victim in victims:
            corrupt_chunk(store, untrusted, victim)
        report = store.scrub(deep=True)
        assert sorted(d.chunk_id for d in report.damaged_chunks) == victims
        assert report.verified_chunks == len(expected) - 2
        assert all("hash" in d.error for d in report.damaged_chunks)
        store.close()

    def test_payload_digest_counter_counts_pooled_work(self):
        store, _, expected = fresh_store(pool_workers=2)
        store.perf.reset()
        store.scrub(deep=True)
        # Every chunk re-hash is visible in the counter, pooled or not
        # (map nodes are digested serially on top of that).
        assert store.perf.counter("payload_digests") >= len(expected)
        store.close()

    def test_memo_gate_holds_with_pool_and_native_engine(self):
        """Incremental scrub of an unchanged store re-hashes nothing."""
        store, _, expected = fresh_store(pool_workers=2)
        deep = store.scrub(deep=True)
        assert deep.clean and deep.verified_chunks == len(expected)
        store.perf.reset()
        incremental = store.scrub(deep=False)
        assert incremental.clean
        assert incremental.memo_skipped_chunks == len(expected)
        assert incremental.verified_chunks == 0
        assert store.perf.counter("payload_digests") == 0
        assert store.perf.counter("pool.dispatches") == 0
        store.close()

    def test_close_shuts_down_pool(self):
        store, _, _ = fresh_store(pool_workers=2)
        pool = store.digest_pool
        store.close()
        assert not pool.parallel
