"""Tests for the backup store: full/incremental creation, validated restore."""

from __future__ import annotations

import pytest

from repro.backupstore import BACKUP_FULL, BACKUP_INCREMENTAL, BackupStore
from repro.chunkstore import ChunkStore
from repro.config import ChunkStoreConfig
from repro.errors import (
    BackupError,
    ReplayDetectedError,
    RestoreSequenceError,
    TamperDetectedError,
)
from repro.platform import (
    MemoryArchivalStore,
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)

SECRET = b"0123456789abcdef0123456789abcdef"


def make_config():
    return ChunkStoreConfig(
        segment_size=8 * 1024,
        initial_segments=4,
        checkpoint_residual_bytes=16 * 1024,
        map_fanout=8,
    )


@pytest.fixture
def env():
    untrusted = MemoryUntrustedStore()
    secret = MemorySecretStore(SECRET)
    counter = MemoryOneWayCounter()
    archival = MemoryArchivalStore()
    store = ChunkStore.format(untrusted, secret, counter, make_config())
    backup_store = BackupStore(archival, secret)
    return store, backup_store, archival, secret


def restore_target(secret):
    return MemoryUntrustedStore(), secret, MemoryOneWayCounter()


def populate(store, count=10):
    ids = [store.allocate_chunk_id() for _ in range(count)]
    store.commit({cid: f"state-{cid}".encode() for cid in ids})
    return ids


class TestFullBackup:
    def test_full_backup_and_restore(self, env):
        store, backups, archival, secret = env
        ids = populate(store)
        info = backups.create_full(store, "full-1")
        assert info.is_full
        assert info.entry_count == len(ids)
        untrusted2, secret2, counter2 = restore_target(secret)
        restored = backups.restore(
            ["full-1"], untrusted2, secret2, counter2, make_config()
        )
        for cid in ids:
            assert restored.read(cid) == f"state-{cid}".encode()
        assert set(restored.chunk_ids()) == set(ids)

    def test_restored_store_is_fully_usable(self, env):
        store, backups, archival, secret = env
        ids = populate(store, 5)
        backups.create_full(store, "full-1")
        untrusted2, secret2, counter2 = restore_target(secret)
        restored = backups.restore(
            ["full-1"], untrusted2, secret2, counter2, make_config()
        )
        new_cid = restored.allocate_chunk_id()
        assert new_cid not in ids  # adopted ids are reserved
        restored.write(new_cid, b"fresh data")
        assert restored.read(new_cid) == b"fresh data"
        reopened = ChunkStore.open(untrusted2, secret2, counter2, make_config())
        assert reopened.read(new_cid) == b"fresh data"

    def test_backup_snapshot_does_not_block_store(self, env):
        store, backups, archival, secret = env
        ids = populate(store)
        backups.create_full(store, "full-1")
        # The store continues to run with the retained snapshot pinned.
        store.write(ids[0], b"post-backup update")
        assert store.read(ids[0]) == b"post-backup update"
        backups.close()

    def test_inspect_reports_metadata(self, env):
        store, backups, archival, secret = env
        populate(store, 7)
        backups.create_full(store, "full-1")
        info = backups.inspect("full-1")
        assert info.backup_type == BACKUP_FULL
        assert info.entry_count == 7
        assert info.stream_bytes > 0

    def test_backup_stream_is_encrypted(self, env):
        store, backups, archival, secret = env
        cid = store.allocate_chunk_id()
        store.write(cid, b"SECRET-BACKUP-BODY")
        backups.create_full(store, "full-1")
        with archival.open_stream("full-1") as stream:
            blob = stream.read()
        assert b"SECRET-BACKUP-BODY" not in blob

    def test_empty_store_backup(self, env):
        store, backups, archival, secret = env
        backups.create_full(store, "full-empty")
        untrusted2, secret2, counter2 = restore_target(secret)
        restored = backups.restore(
            ["full-empty"], untrusted2, secret2, counter2, make_config()
        )
        assert restored.chunk_ids() == []


class TestIncrementalBackup:
    def test_incremental_contains_only_changes(self, env):
        store, backups, archival, secret = env
        ids = populate(store, 20)
        backups.create_full(store, "full-1")
        store.write(ids[3], b"updated-3")
        extra = store.allocate_chunk_id()  # fresh id, taken before dealloc
        store.write(extra, b"added")
        store.deallocate(ids[7])
        info = backups.create_incremental(store, "incr-1")
        assert info.backup_type == BACKUP_INCREMENTAL
        assert info.entry_count == 3  # one change, one add, one removal

    def test_incremental_chain_restores_exactly(self, env):
        store, backups, archival, secret = env
        ids = populate(store, 15)
        backups.create_full(store, "full-1")
        store.write(ids[0], b"gen-1")
        backups.create_incremental(store, "incr-1")
        store.write(ids[1], b"gen-2")
        store.deallocate(ids[2])
        backups.create_incremental(store, "incr-2")
        untrusted2, secret2, counter2 = restore_target(secret)
        restored = backups.restore(
            ["full-1", "incr-1", "incr-2"],
            untrusted2,
            secret2,
            counter2,
            make_config(),
        )
        assert restored.read(ids[0]) == b"gen-1"
        assert restored.read(ids[1]) == b"gen-2"
        assert not restored.contains(ids[2])
        for cid in ids[3:]:
            assert restored.read(cid) == f"state-{cid}".encode()

    def test_incremental_without_full_rejected(self, env):
        store, backups, archival, secret = env
        populate(store)
        with pytest.raises(BackupError):
            backups.create_incremental(store, "incr-orphan")

    def test_incrementals_are_small(self, env):
        store, backups, archival, secret = env
        ids = populate(store, 50)
        full = backups.create_full(store, "full-1")
        store.write(ids[0], b"tiny change")
        incr = backups.create_incremental(store, "incr-1")
        assert incr.stream_bytes < full.stream_bytes / 5


class TestRestoreValidation:
    def _chain(self, env):
        store, backups, archival, secret = env
        ids = populate(store, 10)
        backups.create_full(store, "full-1")
        store.write(ids[0], b"delta-1")
        backups.create_incremental(store, "incr-1")
        store.write(ids[1], b"delta-2")
        backups.create_incremental(store, "incr-2")
        return ids

    def test_out_of_order_incrementals_rejected(self, env):
        store, backups, archival, secret = env
        self._chain(env)
        untrusted2, secret2, counter2 = restore_target(secret)
        with pytest.raises(RestoreSequenceError):
            backups.restore(
                ["full-1", "incr-2", "incr-1"],
                untrusted2,
                secret2,
                counter2,
                make_config(),
            )

    def test_skipped_incremental_rejected(self, env):
        store, backups, archival, secret = env
        self._chain(env)
        untrusted2, secret2, counter2 = restore_target(secret)
        with pytest.raises(RestoreSequenceError):
            backups.restore(
                ["full-1", "incr-2"], untrusted2, secret2, counter2, make_config()
            )

    def test_restore_starting_from_incremental_rejected(self, env):
        store, backups, archival, secret = env
        self._chain(env)
        untrusted2, secret2, counter2 = restore_target(secret)
        with pytest.raises(RestoreSequenceError):
            backups.restore(
                ["incr-1"], untrusted2, secret2, counter2, make_config()
            )

    def test_full_in_middle_rejected(self, env):
        store, backups, archival, secret = env
        self._chain(env)
        untrusted2, secret2, counter2 = restore_target(secret)
        with pytest.raises(RestoreSequenceError):
            backups.restore(
                ["full-1", "full-1"], untrusted2, secret2, counter2, make_config()
            )

    def test_empty_restore_list_rejected(self, env):
        store, backups, archival, secret = env
        with pytest.raises(BackupError):
            backups.restore([], MemoryUntrustedStore(), secret, MemoryOneWayCounter())

    def test_corrupted_body_rejected_as_tampering(self, env):
        store, backups, archival, secret = env
        populate(store)
        backups.create_full(store, "full-1")
        # Flip encrypted-body bytes (past the 87-byte header).
        archival.corrupt("full-1", 120, b"\xff\xff\xff\xff")
        untrusted2, secret2, counter2 = restore_target(secret)
        with pytest.raises(TamperDetectedError):
            backups.restore(
                ["full-1"], untrusted2, secret2, counter2, make_config()
            )

    def test_corrupted_header_rejected(self, env):
        from repro.errors import TDBError

        store, backups, archival, secret = env
        populate(store)
        backups.create_full(store, "full-1")
        # Corrupt the plaintext header (length fields are validated
        # structurally before the MAC can be checked).
        archival.corrupt("full-1", 80, b"\xff\xff\xff\xff")
        untrusted2, secret2, counter2 = restore_target(secret)
        with pytest.raises(TDBError):
            backups.restore(
                ["full-1"], untrusted2, secret2, counter2, make_config()
            )

    def test_truncated_backup_rejected(self, env):
        store, backups, archival, secret = env
        populate(store)
        backups.create_full(store, "full-1")
        with archival.open_stream("full-1") as stream:
            blob = stream.read()
        archival.delete_stream("full-1")
        writer = archival.create_stream("full-1")
        writer.write(blob[:-10])
        writer.close()
        untrusted2, secret2, counter2 = restore_target(secret)
        with pytest.raises(BackupError):
            backups.restore(
                ["full-1"], untrusted2, secret2, counter2, make_config()
            )

    def test_wrong_secret_cannot_read_backup(self, env):
        store, backups, archival, secret = env
        populate(store)
        backups.create_full(store, "full-1")
        other_backups = BackupStore(
            archival, MemorySecretStore(b"another-secret-another-secret!!!")
        )
        with pytest.raises(TamperDetectedError):
            other_backups.inspect("full-1")

    def test_backup_from_other_database_rejected_in_chain(self, env):
        store, backups, archival, secret = env
        populate(store)
        backups.create_full(store, "full-1")
        backups.create_incremental(store, "incr-1")
        # A second database, backed up through the same backup store.
        untrusted_b = MemoryUntrustedStore()
        counter_b = MemoryOneWayCounter()
        store_b = ChunkStore.format(untrusted_b, secret, counter_b, make_config())
        populate(store_b, 3)
        backups_b = BackupStore(archival, secret)
        backups_b.create_full(store_b, "full-B")
        store_b.write(store_b.chunk_ids()[0], b"update")
        backups_b.create_incremental(store_b, "incr-B")
        untrusted2, secret2, counter2 = restore_target(secret)
        with pytest.raises(RestoreSequenceError):
            backups.restore(
                ["full-1", "incr-B"], untrusted2, secret2, counter2, make_config()
            )


class TestReplayAttackAndBackupCrash:
    """Backups vs the paper's replay attack, and crashes mid-backup.

    Rolling the raw untrusted media back to an old image must trip the
    one-way counter (``ReplayDetectedError``); restoring an old *backup*
    through :meth:`BackupStore.restore` is the legitimate rollback path,
    because restore reformats the store bound to the counter's current
    value.
    """

    def test_raw_image_replay_rejected_backup_restore_accepted(self):
        from repro.testing import FaultyUntrustedStore

        untrusted = FaultyUntrustedStore()
        secret = MemorySecretStore(SECRET)
        counter = MemoryOneWayCounter()
        archival = MemoryArchivalStore()
        backups = BackupStore(archival, secret)
        store = ChunkStore.format(untrusted, secret, counter, make_config())
        ids = populate(store, 8)
        backups.create_full(store, "full-old")
        store.close()
        stale_image = untrusted.save_image()
        # The database moves on: more durable commits bump the counter.
        store = ChunkStore.open(untrusted, secret, counter, make_config())
        store.write(ids[0], b"newer-0")
        store.write(ids[1], b"newer-1")
        store.close()
        # Attack: roll the raw media back to the stale image.  The
        # counter is now ahead of the stale MACed master record.
        untrusted.load_image(stale_image)
        with pytest.raises(ReplayDetectedError):
            ChunkStore.open(untrusted, secret, counter, make_config())
        # The legitimate way back to the old state: restore the backup,
        # against the very same (advanced) counter.
        untrusted2 = MemoryUntrustedStore()
        restored = backups.restore(
            ["full-old"], untrusted2, secret, counter, make_config()
        )
        for cid in ids:
            assert restored.read(cid) == f"state-{cid}".encode()
        # The restored store is bound to the current counter value and
        # survives a full close/reopen cycle.
        restored.write(ids[0], b"post-restore")
        restored.close()
        reopened = ChunkStore.open(untrusted2, secret, counter, make_config())
        assert reopened.read(ids[0]) == b"post-restore"
        reopened.close()

    def test_crash_mid_backup_stream(self):
        from repro.testing import FaultSchedule, FaultyArchivalStore, InjectedCrash

        untrusted = MemoryUntrustedStore()
        secret = MemorySecretStore(SECRET)
        counter = MemoryOneWayCounter()
        archival = FaultyArchivalStore(
            MemoryArchivalStore(),
            schedule=FaultSchedule().crash_mid_write(1, keep=200),
        )
        backups = BackupStore(archival, secret)
        store = ChunkStore.format(untrusted, secret, counter, make_config())
        ids = populate(store, 10)
        with pytest.raises(InjectedCrash):
            backups.create_full(store, "full-torn")
        # The source store is unharmed by the archival crash...
        store.write(ids[0], b"after the backup crash")
        assert store.read(ids[0]) == b"after the backup crash"
        archival.heal()
        # ...the torn stream prefix is rejected at restore...
        assert archival.exists("full-torn")
        with pytest.raises((BackupError, TamperDetectedError)):
            backups.restore(
                ["full-torn"], MemoryUntrustedStore(), secret,
                MemoryOneWayCounter(), make_config(),
            )
        # ...and a retried backup on the healed media round-trips.
        info = backups.create_full(store, "full-retry")
        assert info.entry_count == len(ids)
        restored = backups.restore(
            ["full-retry"], MemoryUntrustedStore(), secret,
            MemoryOneWayCounter(), make_config(),
        )
        assert restored.read(ids[0]) == b"after the backup crash"


class TestStreamFuzzing:
    """No mutated backup stream may decode successfully."""

    def _blob(self, env):
        store, backups, archival, secret = env
        populate(store, 6)
        backups.create_full(store, "full-1")
        with archival.open_stream("full-1") as stream:
            return backups, stream.read()

    def test_every_truncation_rejected(self, env):
        from repro.backupstore.stream import decode_backup

        backups, blob = self._blob(env)
        for cut in range(0, len(blob), max(1, len(blob) // 40)):
            with pytest.raises((BackupError, TamperDetectedError)):
                decode_backup(blob[:cut], backups._encryption_key, backups._mac)

    def test_single_byte_mutations_rejected(self, env):
        from repro.backupstore.stream import decode_backup

        backups, blob = self._blob(env)
        import random as rnd

        rng = rnd.Random(13)
        for _ in range(60):
            position = rng.randrange(len(blob))
            mutated = bytearray(blob)
            mutated[position] ^= 1 + rng.randrange(255)
            with pytest.raises((BackupError, TamperDetectedError)):
                decode_backup(bytes(mutated), backups._encryption_key, backups._mac)

    def test_appended_garbage_rejected(self, env):
        from repro.backupstore.stream import decode_backup

        backups, blob = self._blob(env)
        with pytest.raises((BackupError, TamperDetectedError)):
            decode_backup(blob + b"extra", backups._encryption_key, backups._mac)

    def test_pristine_blob_decodes(self, env):
        from repro.backupstore.stream import decode_backup

        backups, blob = self._blob(env)
        header, writes, removes = decode_backup(
            blob, backups._encryption_key, backups._mac
        )
        assert header.entry_count == len(writes) + len(removes) == 6
