"""Unit tests for chunk-store internals: location map and segments.

The integration suite exercises these through the facade; here the
structures are driven directly so their invariants (tree growth, dirty
tracking, checkpoint bottom-up ordering, segment accounting) are pinned
at the unit level.
"""

from __future__ import annotations

import pytest

from repro.cache import SharedLruCache
from repro.chunkstore.format import Locator, RecordCodec, RecordKind
from repro.chunkstore.locmap import LocationMap, MapNode, NodeIO
from repro.chunkstore.segments import SegmentManager, segment_file_name
from repro.errors import ChunkStoreError, TamperDetectedError
from repro.platform import MemoryUntrustedStore

HASH_SIZE = 0  # insecure-style locators keep these tests small


class InMemoryNodeIO(NodeIO):
    """Stores serialized nodes in a dict keyed by fake locators."""

    def __init__(self) -> None:
        self.blobs = {}
        self.appends = []
        self._next = 0

    def load_node(self, locator, level, index):
        node = MapNode.deserialize(self.blobs[locator.offset], HASH_SIZE)
        if (node.level, node.index) != (level, index):
            raise TamperDetectedError("node identity mismatch")
        return node

    def append_node(self, level, index, plaintext):
        self._next += 1
        self.blobs[self._next] = plaintext
        self.appends.append((level, index))
        return Locator(segment=1, offset=self._next, length=len(plaintext))


def make_map(fanout=4, **kwargs):
    io = InMemoryNodeIO()
    cache = SharedLruCache(1024 * 1024)
    return LocationMap(io, fanout, HASH_SIZE, cache, **kwargs), io


def loc(n: int) -> Locator:
    return Locator(segment=9, offset=n, length=n + 1)


class TestLocationMap:
    def test_empty_map_lookups(self):
        lmap, _ = make_map()
        assert lmap.lookup(0) is None
        assert lmap.lookup(10 ** 6) is None
        assert list(lmap.iterate()) == []
        assert lmap.count() == 0

    def test_set_and_lookup(self):
        lmap, _ = make_map()
        assert lmap.set(2, loc(2)) is None
        assert lmap.lookup(2) == loc(2)
        assert 2 in lmap

    def test_set_returns_previous(self):
        lmap, _ = make_map()
        lmap.set(1, loc(1))
        assert lmap.set(1, loc(99)) == loc(1)
        assert lmap.lookup(1) == loc(99)

    def test_remove(self):
        lmap, _ = make_map()
        lmap.set(3, loc(3))
        assert lmap.remove(3) == loc(3)
        assert lmap.lookup(3) is None
        assert lmap.remove(3) is None
        assert lmap.remove(10 ** 9) is None

    def test_tree_grows_for_large_ids(self):
        lmap, _ = make_map(fanout=4)
        assert lmap.depth == 1
        lmap.set(3, loc(3))
        assert lmap.depth == 1
        lmap.set(4, loc(4))  # beyond fanout^1
        assert lmap.depth == 2
        lmap.set(100, loc(100))  # beyond fanout^2 = 16
        assert lmap.depth >= 4  # 4^4 = 256 covers 100
        assert lmap.lookup(3) == loc(3)
        assert lmap.lookup(4) == loc(4)
        assert lmap.lookup(100) == loc(100)

    def test_iterate_is_sorted_and_complete(self):
        lmap, _ = make_map(fanout=4)
        ids = [0, 3, 4, 17, 63, 200]
        for chunk_id in ids:
            lmap.set(chunk_id, loc(chunk_id))
        assert [cid for cid, _ in lmap.iterate()] == sorted(ids)

    def test_checkpoint_writes_bottom_up(self):
        lmap, io = make_map(fanout=4)
        for chunk_id in (0, 5, 21):
            lmap.set(chunk_id, loc(chunk_id))
        assert lmap.has_dirty_nodes()
        root, retired = lmap.checkpoint(io.append_node)
        assert not lmap.has_dirty_nodes()
        assert root is not None
        assert retired == []  # first checkpoint retires nothing
        levels = [level for level, _ in io.appends]
        assert levels == sorted(levels)  # leaves before parents

    def test_checkpoint_retires_old_node_versions(self):
        lmap, io = make_map(fanout=4)
        lmap.set(0, loc(0))
        lmap.checkpoint(io.append_node)
        first_appends = len(io.appends)
        lmap.set(1, loc(1))  # dirties the same leaf again
        _, retired = lmap.checkpoint(io.append_node)
        assert len(retired) >= 1  # the old leaf version died
        assert len(io.appends) > first_appends

    def test_survives_checkpoint_and_reload(self):
        lmap, io = make_map(fanout=4)
        for chunk_id in (1, 7, 30):
            lmap.set(chunk_id, loc(chunk_id))
        root, _ = lmap.checkpoint(io.append_node)
        fresh = LocationMap(
            io, 4, HASH_SIZE, SharedLruCache(1024 * 1024),
            depth=lmap.depth, root_locator=root,
        )
        assert fresh.lookup(7) == loc(7)
        assert [cid for cid, _ in fresh.iterate()] == [1, 7, 30]

    def test_frozen_map_rejects_mutation(self):
        lmap, io = make_map()
        lmap.set(0, loc(0))
        root, _ = lmap.checkpoint(io.append_node)
        frozen = LocationMap(
            io, 4, HASH_SIZE, SharedLruCache(1024 * 1024),
            depth=lmap.depth, root_locator=root, frozen=True,
        )
        with pytest.raises(ChunkStoreError):
            frozen.set(1, loc(1))
        with pytest.raises(ChunkStoreError):
            frozen.remove(0)

    def test_relocate_node_if_current(self):
        lmap, io = make_map(fanout=4)
        lmap.set(0, loc(0))
        root, _ = lmap.checkpoint(io.append_node)
        node = lmap._walk_to(0, 0)
        locator = node.disk_locator
        assert lmap.relocate_node_if_current(
            0, 0, locator.segment, locator.offset, locator.length
        )
        assert lmap.has_dirty_nodes()
        # Wrong position: no relocation.
        assert not lmap.relocate_node_if_current(0, 0, 999, 0, 1)
        assert not lmap.relocate_node_if_current(7, 0, 1, 0, 1)

    def test_eviction_and_reload_through_parent(self):
        lmap, io = make_map(fanout=4)
        for chunk_id in range(40):
            lmap.set(chunk_id, loc(chunk_id))
        lmap.checkpoint(io.append_node)
        lmap.cache.clear_namespace("map")  # evict everything clean
        for chunk_id in range(40):
            assert lmap.lookup(chunk_id) == loc(chunk_id)

    def test_negative_ids_rejected(self):
        lmap, _ = make_map()
        with pytest.raises(ChunkStoreError):
            lmap.lookup(-1)
        with pytest.raises(ChunkStoreError):
            lmap.set(-1, loc(0))


class TestSegmentManager:
    def make(self, segment_size=1024):
        untrusted = MemoryUntrustedStore()
        codec = RecordCodec()  # insecure: CRC tags
        manager = SegmentManager(untrusted, codec, segment_size)
        manager.create_first_segment()
        return manager, untrusted

    def test_append_and_read_back(self):
        manager, untrusted = self.make()
        segment, offset = manager.append_record(
            RecordKind.COMMIT, b"body-bytes", accountable_bytes=10
        )
        assert segment == manager.tail_segment
        raw = manager.read(segment, offset, manager.codec.record_size(10))
        kind, body = RecordCodec().verify_and_advance(raw)
        # (chain irrelevant for insecure codec on a fresh reader)
        assert body == b"body-bytes"

    def test_tail_switch_links_segments(self):
        manager, untrusted = self.make(segment_size=512)
        first_tail = manager.tail_segment
        for _ in range(10):
            manager.append_record(RecordKind.COMMIT, bytes(100), 100)
        assert manager.tail_segment != first_tail
        assert len(manager.segments) >= 2

    def test_oversized_record_accepted_in_fresh_segment(self):
        manager, untrusted = self.make(segment_size=512)
        manager.append_record(RecordKind.COMMIT, bytes(2000), 2000)
        name = segment_file_name(manager.tail_segment)
        assert untrusted.size(name) > 512

    def test_accounting_live_dead_overhead(self):
        manager, _ = self.make()
        manager.append_record(RecordKind.COMMIT, bytes(100), accountable_bytes=80)
        info = manager.segments[manager.tail_segment]
        assert info.accountable_bytes == 80
        assert info.overhead_bytes > 0
        manager.mark_dead(manager.tail_segment, 30)
        assert info.live_bytes == 50
        assert 0.0 < manager.utilization() < 1.0

    def test_dead_overflow_rejected(self):
        manager, _ = self.make()
        manager.append_record(RecordKind.COMMIT, bytes(10), accountable_bytes=10)
        with pytest.raises(ChunkStoreError):
            manager.mark_dead(manager.tail_segment, 50)

    def test_free_and_reuse_slot(self):
        manager, untrusted = self.make(segment_size=512)
        for _ in range(10):
            manager.append_record(RecordKind.COMMIT, bytes(100), 100)
        manager.end_checkpoint()  # everything but the tail leaves residual
        victim = next(
            info.number
            for info in manager.segments.values()
            if not info.is_tail and info.number not in manager.residual_segments
        )
        live = manager.segments[victim].live_bytes
        manager.mark_dead(victim, live)
        manager.free_segment(victim)
        assert manager.segments[victim].is_free
        assert untrusted.size(segment_file_name(victim)) == 0
        # The free slot is recycled by the next tail switch.
        for _ in range(10):
            manager.append_record(RecordKind.COMMIT, bytes(100), 100)
        assert not manager.segments[victim].is_free

    def test_cannot_free_tail_or_residual(self):
        manager, _ = self.make()
        with pytest.raises(ChunkStoreError):
            manager.free_segment(manager.tail_segment)

    def test_drop_slot_shrinks(self):
        manager, untrusted = self.make()
        manager.preallocate_free_slots(2)
        before = len(manager.segments)
        free_number = next(
            info.number for info in manager.segments.values() if info.is_free
        )
        manager.drop_slot(free_number)
        assert len(manager.segments) == before - 1
        assert not untrusted.exists(segment_file_name(free_number))

    def test_cleanable_excludes_tail_free_residual(self):
        manager, _ = self.make(segment_size=512)
        for _ in range(10):
            manager.append_record(RecordKind.COMMIT, bytes(100), 100)
        # Without a checkpoint, every written segment is residual.
        assert manager.cleanable_segments() == []
        manager.end_checkpoint()
        candidates = manager.cleanable_segments()
        assert candidates
        assert all(not info.is_tail and not info.is_free for info in candidates)
