"""Unit tests for the fault-injection harness itself.

The sweeps in test_crash_injection / test_tamper_matrix only mean
something if the harness plumbing is exact: faults must fire at the
precise 1-based operation index, torn writes must leave exactly the
requested prefix, the region mapper must partition every byte of a
media image, and the commit ledger must expose exactly the legal
recovery candidates.
"""

from __future__ import annotations

import pytest

from repro.errors import TDBError
from repro.platform import MemoryArchivalStore, MemoryUntrustedStore
from repro.testing import (
    ChunkStoreCrashScenario,
    CommitLedger,
    FaultSchedule,
    FaultyArchivalStore,
    FaultyUntrustedStore,
    InjectedCrash,
    Region,
    TamperMatrix,
    map_image_regions,
)


class TestFaultSchedule:
    def test_builders_chain_and_describe(self):
        schedule = (
            FaultSchedule()
            .crash_after_write(3)
            .crash_mid_write(5, keep=7)
            .crash_after_sync(2)
            .flip_after_write(1, "f", offset=4, mask=0x80)
            .zero_after_write(2, "f", offset=0, length=16)
        )
        assert len(schedule.faults) == 5
        assert schedule.matching("write", 3)[0].action == "crash"
        assert schedule.matching("write", 5)[0].keep == 7
        assert schedule.matching("sync", 2)
        assert not schedule.matching("write", 4)
        assert "mask 0x80" in schedule.describe()
        assert len(schedule.unfired()) == 5

    def test_rejects_bad_triggers(self):
        from repro.testing import Fault
        with pytest.raises(ValueError):
            FaultSchedule().crash_after_write(0)  # indices are 1-based
        with pytest.raises(ValueError):
            Fault(on="read", index=1, action="crash")
        with pytest.raises(ValueError):
            Fault(on="write", index=1, action="meltdown")


class TestFaultyUntrustedStore:
    def test_injected_crash_is_not_a_tdb_error(self):
        assert not issubclass(InjectedCrash, TDBError)

    def test_crash_fires_at_exact_write_index(self):
        store = FaultyUntrustedStore(
            schedule=FaultSchedule().crash_after_write(3)
        )
        store.write("f", 0, b"one")
        store.write("f", 3, b"two")
        with pytest.raises(InjectedCrash):
            store.write("f", 6, b"three")
        # The crashing write itself still reached the media (crash is
        # *after* the op); everything later is dead.
        assert store.inner.read("f") == b"onetwothree"
        with pytest.raises(InjectedCrash):
            store.read("f")
        with pytest.raises(InjectedCrash):
            store.write("f", 0, b"x")
        store.heal()
        assert store.read("f") == b"onetwothree"

    def test_truncate_and_delete_count_as_mutating_ops(self):
        store = FaultyUntrustedStore(
            schedule=FaultSchedule().crash_after_write(2)
        )
        store.write("f", 0, b"abcdef")
        with pytest.raises(InjectedCrash):
            store.truncate("f", 3)
        store.heal()
        assert store.read("f") == b"abc"  # truncate completed, then crash
        assert store.total_writes == 2
        assert [op[0] for op in store.op_log] == ["write", "truncate"]

        store2 = FaultyUntrustedStore(
            schedule=FaultSchedule().crash_after_write(2)
        )
        store2.write("g", 0, b"data")
        with pytest.raises(InjectedCrash):
            store2.delete("g")
        store2.heal()
        assert not store2.exists("g")

    def test_torn_write_keeps_exact_prefix(self):
        store = FaultyUntrustedStore(
            schedule=FaultSchedule().crash_mid_write(2, keep=4)
        )
        store.write("f", 0, b"0123456789")
        with pytest.raises(InjectedCrash):
            store.write("f", 10, b"abcdefgh")
        store.heal()
        assert store.read("f") == b"0123456789abcd"

    def test_torn_truncate_never_reaches_media(self):
        store = FaultyUntrustedStore(
            schedule=FaultSchedule().crash_mid_write(2, keep=1)
        )
        store.write("f", 0, b"abcdef")
        with pytest.raises(InjectedCrash):
            store.truncate("f", 2)
        store.heal()
        assert store.read("f") == b"abcdef"  # the torn truncate was lost

    def test_crash_after_sync_index(self):
        store = FaultyUntrustedStore(
            schedule=FaultSchedule().crash_after_sync(2)
        )
        store.write("f", 0, b"x")
        store.sync("f")
        store.write("f", 1, b"y")
        with pytest.raises(InjectedCrash):
            store.sync("f")
        assert store.total_syncs == 2

    def test_flip_and_zero_faults_corrupt_media(self):
        store = FaultyUntrustedStore(
            schedule=(
                FaultSchedule()
                .flip_after_write(1, "f", offset=0, mask=0x01)
                .zero_after_write(2, "f", offset=2, length=2)
            )
        )
        store.write("f", 0, b"\x00\x00\xff\xff")
        assert store.read("f") == b"\x01\x00\xff\xff"
        store.write("g", 0, b"unrelated")
        assert store.read("f") == b"\x01\x00\x00\x00"

    def test_replay_fault_restores_recorded_image(self):
        store = FaultyUntrustedStore()
        store.write("f", 0, b"old-state")
        snapshot = store.save_image()
        store.write("f", 0, b"new-state")
        store.write("h", 0, b"extra")
        store.schedule = FaultSchedule().replay_after_write(
            store.total_writes + 1, snapshot
        )
        store.write("trigger", 0, b"x")
        assert store.read("f") == b"old-state"
        assert not store.exists("h")
        assert not store.exists("trigger")

    def test_image_roundtrip_and_offline_edits_not_counted(self):
        store = FaultyUntrustedStore()
        store.write("f", 0, b"abc")
        ops = store.total_writes
        image = store.save_image()
        store.flip_bits("f", 0, 0xFF)
        store.zero_region("f", 1, 2)
        assert store.read("f") == bytes([ord("a") ^ 0xFF, 0, 0])
        store.load_image(image)
        assert store.read("f") == b"abc"
        assert store.total_writes == ops  # offline edits are not operations

    def test_wraps_an_existing_store(self):
        inner = MemoryUntrustedStore()
        inner.write("pre", 0, b"existing")
        store = FaultyUntrustedStore(inner=inner)
        assert store.read("pre") == b"existing"
        store.write("pre", 0, b"EXISTING")
        assert inner.read("pre") == b"EXISTING"


class TestFaultyArchivalStore:
    def test_stream_crash_after_nth_write(self):
        archival = FaultyArchivalStore(
            MemoryArchivalStore(),
            schedule=FaultSchedule().crash_after_write(2),
        )
        stream = archival.create_stream("backup-1")
        stream.write(b"chunk-one")
        with pytest.raises(InjectedCrash):
            stream.write(b"chunk-two")
        with pytest.raises(InjectedCrash):
            archival.create_stream("backup-2")
        archival.heal()
        # The crashing write completed before the crash fired.
        with archival.open_stream("backup-1") as handle:
            assert handle.read() == b"chunk-onechunk-two"

    def test_torn_stream_write_keeps_prefix(self):
        archival = FaultyArchivalStore(
            MemoryArchivalStore(),
            schedule=FaultSchedule().crash_mid_write(2, keep=3),
        )
        stream = archival.create_stream("backup")
        stream.write(b"full-first-write")
        with pytest.raises(InjectedCrash):
            stream.write(b"SECOND")
        archival.heal()
        with archival.open_stream("backup") as handle:
            assert handle.read() == b"full-first-writeSEC"


class TestCommitLedger:
    def test_candidates_track_durable_prefix_and_in_flight(self):
        ledger = CommitLedger()
        assert ledger.candidates() == [{}]
        ledger.attempting({1: b"a"})
        assert ledger.candidates() == [{}, {1: b"a"}]
        ledger.acknowledged()
        assert ledger.candidates() == [{1: b"a"}]
        ledger.attempting({1: b"a", 2: b"b"})
        assert ledger.candidates() == [{1: b"a"}, {1: b"a", 2: b"b"}]
        # A second attempt replaces the first (only one call in flight).
        ledger.attempting({1: b"a", 3: b"c"})
        assert ledger.candidates() == [{1: b"a"}, {1: b"a", 3: b"c"}]

    def test_acknowledge_without_attempt_is_a_no_op(self):
        ledger = CommitLedger()
        ledger.acknowledged()
        assert ledger.durable_states == [{}]

    def test_acknowledge_callback_fires_per_barrier(self):
        fired = []
        ledger = CommitLedger(on_acknowledge=lambda: fired.append(1))
        ledger.attempting({1: b"a"})
        ledger.acknowledged()
        ledger.acknowledged()  # no attempt in flight: no callback
        assert len(fired) == 1


class TestRegionMapping:
    def test_partition_is_total_and_non_overlapping(self):
        """Every byte of every file belongs to exactly one region."""
        scenario = ChunkStoreCrashScenario(secure=True)
        image, _states = scenario.run_to_image(clean_close=False)
        regions = map_image_regions(image, scenario.tag_size)
        by_file = {}
        for region in regions:
            by_file.setdefault(region.file, []).append(region)
        for name, data in image.items():
            file_regions = sorted(
                by_file.get(name, []), key=lambda r: r.start
            )
            cursor = 0
            for region in file_regions:
                assert region.start == cursor, (
                    f"{name}: gap/overlap at {cursor} vs {region.describe()}"
                )
                cursor += region.length
            assert cursor == len(data), f"{name}: partition stops at {cursor}"

    def test_all_four_threat_model_kinds_present(self):
        scenario = ChunkStoreCrashScenario(secure=True)
        image, _ = scenario.run_to_image(clean_close=False)
        kinds = {r.kind for r in map_image_regions(image, scenario.tag_size)}
        assert {"master", "segment-header", "chunk-payload", "map-node"} <= kinds

    def test_unparsed_bytes_are_reported_not_dropped(self):
        image = {"seg-00000001": b"this is not a record header at all"}
        regions = map_image_regions(image, tag_size=4)
        assert [r.kind for r in regions] == ["unparsed"]
        assert regions[0].length == len(image["seg-00000001"])

    def test_flip_offsets_cover_edges_and_bound_count(self):
        matrix = TamperMatrix({"f": b"x" * 100}, tag_size=4, regions=[
            Region("f", 10, 80, "chunk-payload"),
            Region("f", 0, 3, "segment-header"),
        ], offsets_per_region=6)
        big, small = matrix.regions
        offs = matrix._flip_offsets(big)
        assert offs[0] == 10 and offs[-1] == 89  # both edges
        assert len(offs) <= 6
        assert matrix._flip_offsets(small) == [0, 1, 2]  # exhaustive

    def test_mutations_include_one_zero_per_region(self):
        matrix = TamperMatrix({"f": b"x" * 40}, tag_size=4, regions=[
            Region("f", 0, 40, "commit-record"),
        ], offsets_per_region=4)
        actions = [m.action for m in matrix.mutations()]
        assert actions.count("zero") == 1
        assert actions.count("flip") == 4

    def test_mutation_apply_does_not_touch_baseline(self):
        baseline = {"f": b"\x00" * 8}
        matrix = TamperMatrix(baseline, tag_size=4, regions=[
            Region("f", 0, 8, "master"),
        ], offsets_per_region=2)
        flip = [m for m in matrix.mutations() if m.action == "flip"][0]
        mutated = flip.apply(matrix.image)
        assert mutated["f"] != baseline["f"]
        assert matrix.image["f"] == b"\x00" * 8
