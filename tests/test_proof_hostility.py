"""Adversarial tests for the proof subsystem.

The property the transparency log and Merkle proofs must deliver: a
verifier that holds only the device secret and its own configuration
rejects *every* tampered proof, head, payload, or chain link with a
typed security error — and catches forked and rolled-back servers.
Hypothesis drives the single-bit-flip property; the fork and rollback
scenarios run over real servers and real directory copies.
"""

from __future__ import annotations

import contextlib
import os
import shutil

import pytest
from hypothesis import given, settings, strategies as st

from repro.chunkstore import ChunkStore
from repro.config import ChunkStoreConfig
from repro.crypto import create_hash_engine, create_payload_cipher
from repro.db import Database
from repro.errors import (
    ForkDetectedError,
    ProofError,
    RollbackDetectedError,
    TamperDetectedError,
)
from repro.platform import (
    FileSecretStore,
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)
from repro.proofs import (
    HEAD_LOG_FILE,
    ChunkProof,
    HeadVerifier,
    ProofService,
    VerifyingClient,
    verify_proof,
)
from repro.replication import ReplicaApplier
from repro.server import TdbClient, TdbServer

SECRET = b"hostile-proofs-secret-0123456789"

SECURITY_ERRORS = (TamperDetectedError, ProofError)


class ProofFixture:
    """One store, one served proof, one consistency chain — attack bait."""

    def __init__(self):
        self.untrusted = MemoryUntrustedStore()
        self.secret = MemorySecretStore(SECRET)
        self.counter = MemoryOneWayCounter()
        self.config = ChunkStoreConfig()
        self.store = ChunkStore.format(
            self.untrusted, self.secret, self.counter
        )
        self.ids = []
        for i in range(30):
            cid = self.store.allocate_chunk_id()
            self.store.write(cid, f"hostile-{i}-".encode() * 8)
            self.ids.append(cid)
        self.store.checkpoint(force=True)
        self.service = ProofService(self.store)
        self.head, self.proof = self.service.prove(self.ids[11])
        log = self.store.transparency
        self.chain_raws = self.service.consistency(0, len(log) - 1)
        profile = self.config.security
        self.engine = create_hash_engine(profile.hash_name)
        self.cipher = create_payload_cipher(
            profile.cipher_name,
            self.secret.derive_key("tdb-chunk-encryption", 32),
            kernel=profile.resolved_kernel,
        )
        self.verifier = HeadVerifier(
            self.secret, self.store.db_uuid, self.engine.digest_size
        )

    def verify(self, proof, head_raw):
        """Exactly what a verifying client does with served material."""
        head = self.verifier.verify_signature(head_raw)
        return verify_proof(
            proof,
            head,
            fanout=self.config.map_fanout,
            hash_size=self.engine.digest_size,
            digest=self.engine.digest,
            decrypt=self.cipher.decrypt,
        )


_FIXTURE = None


def fixture() -> ProofFixture:
    global _FIXTURE
    if _FIXTURE is None:
        _FIXTURE = ProofFixture()
    return _FIXTURE


def flip(data: bytes, position: float, bit: int) -> bytes:
    """Flip one bit at a position scaled into the buffer."""
    index = min(int(position * len(data)), len(data) - 1)
    out = bytearray(data)
    out[index] ^= 1 << bit
    return bytes(out)


class TestBitFlipProperty:
    def test_clean_material_verifies(self):
        fx = fixture()
        plaintext = fx.verify(fx.proof, fx.head.raw)
        assert plaintext == fx.store.read(fx.proof.chunk_id)
        assert fx.verifier.verify_chain(fx.chain_raws)

    @settings(max_examples=120, deadline=None)
    @given(position=st.floats(min_value=0.0, max_value=0.999),
           bit=st.integers(min_value=0, max_value=7))
    def test_any_flip_in_the_head_is_rejected(self, position, bit):
        fx = fixture()
        tampered = flip(fx.head.raw, position, bit)
        with pytest.raises(SECURITY_ERRORS):
            fx.verify(fx.proof, tampered)

    @settings(max_examples=120, deadline=None)
    @given(node=st.integers(min_value=0, max_value=10 ** 6),
           position=st.floats(min_value=0.0, max_value=0.999),
           bit=st.integers(min_value=0, max_value=7))
    def test_any_flip_in_a_proof_node_is_rejected(self, node, position, bit):
        fx = fixture()
        nodes = list(fx.proof.nodes)
        target = node % len(nodes)
        nodes[target] = flip(nodes[target], position, bit)
        tampered = ChunkProof(
            chunk_id=fx.proof.chunk_id,
            depth=fx.proof.depth,
            present=fx.proof.present,
            nodes=nodes,
            payload=fx.proof.payload,
        )
        with pytest.raises(SECURITY_ERRORS):
            fx.verify(tampered, fx.head.raw)

    @settings(max_examples=120, deadline=None)
    @given(position=st.floats(min_value=0.0, max_value=0.999),
           bit=st.integers(min_value=0, max_value=7))
    def test_any_flip_in_the_payload_is_rejected(self, position, bit):
        fx = fixture()
        tampered = ChunkProof(
            chunk_id=fx.proof.chunk_id,
            depth=fx.proof.depth,
            present=fx.proof.present,
            nodes=fx.proof.nodes,
            payload=flip(fx.proof.payload, position, bit),
        )
        with pytest.raises(SECURITY_ERRORS):
            fx.verify(tampered, fx.head.raw)

    @settings(max_examples=120, deadline=None)
    @given(entry=st.integers(min_value=0, max_value=10 ** 6),
           position=st.floats(min_value=0.0, max_value=0.999),
           bit=st.integers(min_value=0, max_value=7))
    def test_any_flip_in_a_chain_link_is_rejected(self, entry, position, bit):
        fx = fixture()
        raws = list(fx.chain_raws)
        target = entry % len(raws)
        raws[target] = flip(raws[target], position, bit)
        with pytest.raises(SECURITY_ERRORS):
            fx.verifier.verify_chain(raws)

    def test_forged_absence_is_rejected(self):
        # A server claiming a *present* chunk is absent cannot produce a
        # verifying proof: the nodes still walk to a live leaf.
        fx = fixture()
        forged = ChunkProof(
            chunk_id=fx.proof.chunk_id,
            depth=fx.proof.depth,
            present=False,
            nodes=fx.proof.nodes,
            payload=None,
        )
        with pytest.raises(SECURITY_ERRORS):
            fx.verify(forged, fx.head.raw)

    def test_swapped_payload_from_other_chunk_is_rejected(self):
        fx = fixture()
        _, other = fx.service.prove(fx.ids[12])
        forged = ChunkProof(
            chunk_id=fx.proof.chunk_id,
            depth=fx.proof.depth,
            present=True,
            nodes=fx.proof.nodes,
            payload=other.payload,
        )
        with pytest.raises(SECURITY_ERRORS):
            fx.verify(forged, fx.head.raw)


# ---------------------------------------------------------------------------
# Fork and rollback over real servers
# ---------------------------------------------------------------------------

def grow(db, count=5, tag="x"):
    store = db.chunk_store
    for i in range(count):
        cid = store.allocate_chunk_id()
        store.write(cid, f"{tag}-{i}-".encode() * 16)
    store.checkpoint(force=True)


@contextlib.contextmanager
def served(directory):
    db = Database.open_existing(directory)
    server = TdbServer(db).start()
    try:
        yield server, db
    finally:
        server.stop()
        db.close()


def repoint(vc: VerifyingClient, server) -> None:
    """Aim an existing verifying client (and its pin) at another server."""
    vc.client.close()
    vc.client = TdbClient(*server.address)


class TestForkAndRollback:
    def _fork_dirs(self, tmp_path):
        """Two databases sharing one history prefix, then diverging."""
        dir_a = os.path.join(str(tmp_path), "node-a")
        db = Database.create(dir_a)
        grow(db, 5, tag="common")
        db.close()
        dir_b = os.path.join(str(tmp_path), "node-b")
        shutil.copytree(dir_a, dir_b)
        db = Database.open_existing(dir_a)
        grow(db, 3, tag="fork-a")
        db.close()
        db = Database.open_existing(dir_b)
        grow(db, 3, tag="fork-b")
        db.close()
        return dir_a, dir_b

    def test_auditor_catches_divergent_signed_heads(self, tmp_path):
        dir_a, dir_b = self._fork_dirs(tmp_path)
        secret = FileSecretStore(
            os.path.join(dir_a, "secret.key"), create=False
        )
        with served(dir_a) as (server_a, _):
            with VerifyingClient(*server_a.address, secret) as vc:
                chain_a = vc.fetch_log()
        with served(dir_b) as (server_b, _):
            with VerifyingClient(*server_b.address, secret) as vc:
                chain_b = vc.fetch_log()
        divergence = VerifyingClient.compare_logs(chain_a, chain_b)
        assert divergence is not None
        # The shared prefix is honest; the divergence is after it.
        assert 0 < divergence <= min(len(chain_a), len(chain_b))

    def test_client_rejects_equivocating_server(self, tmp_path):
        dir_a, dir_b = self._fork_dirs(tmp_path)
        secret = FileSecretStore(
            os.path.join(dir_a, "secret.key"), create=False
        )
        vc = VerifyingClient("127.0.0.1", 1, secret, client=_DeadClient())
        try:
            with served(dir_a) as (server_a, _):
                repoint(vc, server_a)
                vc.latest_head()
                pinned = vc.pinned.index
            with served(dir_b) as (server_b, _):
                repoint(vc, server_b)
                with pytest.raises((ForkDetectedError,
                                    RollbackDetectedError)):
                    vc.latest_head()
            assert vc.pinned.index == pinned  # the pin never regressed
        finally:
            vc.client.close()

    def test_client_rejects_rolled_back_server(self, tmp_path):
        directory = os.path.join(str(tmp_path), "primary")
        db = Database.create(directory)
        grow(db, 5, tag="before")
        db.close()
        stale = os.path.join(str(tmp_path), "stale")
        shutil.copytree(directory, stale)  # the attacker's snapshot
        db = Database.open_existing(directory)
        grow(db, 5, tag="after")
        db.close()
        secret = FileSecretStore(
            os.path.join(directory, "secret.key"), create=False
        )
        vc = VerifyingClient("127.0.0.1", 1, secret, client=_DeadClient())
        try:
            with served(directory) as (server, _):
                repoint(vc, server)
                vc.latest_head()
                pinned = vc.pinned.index
            # The server comes back on the attacker's stale snapshot —
            # image, head log, and counter all rolled back together.
            with served(stale) as (server, _):
                repoint(vc, server)
                with pytest.raises(RollbackDetectedError):
                    vc.latest_head()
            assert vc.pinned.index == pinned
        finally:
            vc.client.close()

    def test_replica_applier_catches_forked_primary(self, tmp_path):
        dir_a, dir_b = self._fork_dirs(tmp_path)
        # node-b is ahead of node-a so the applier cannot dismiss it as
        # merely stale: it must fetch heads and hit the fork.
        db = Database.open_existing(dir_b)
        grow(db, 3, tag="fork-b-more")
        db.close()
        rdir = os.path.join(str(tmp_path), "replica")
        os.makedirs(rdir, exist_ok=True)
        shutil.copy(
            os.path.join(dir_a, "secret.key"),
            os.path.join(rdir, "secret.key"),
        )
        with served(dir_a) as (server_a, _):
            with ReplicaApplier(rdir, *server_a.address) as applier:
                assert applier.sync_once() is True
        with served(dir_b) as (server_b, _):
            with ReplicaApplier(rdir, *server_b.address) as applier:
                with pytest.raises(ForkDetectedError):
                    applier.sync_once()
                assert applier.stats_snapshot()["head_forks"] == 1


class _DeadClient:
    """Placeholder wire client; tests repoint before the first call."""

    def close(self) -> None:  # pragma: no cover - trivial
        pass


class TestHeadLogByteSweep:
    def test_every_flip_is_detected_or_healed(self, tmp_path):
        """Sweep bit-flips across the whole head.log of a closed store:
        each one must either raise a typed security error at open or
        open into the exact committed state (torn-tail healing)."""
        directory = os.path.join(str(tmp_path), "db")
        db = Database.create(directory)
        grow(db, 8, tag="sweep")
        db.close()
        data_dir = os.path.join(directory, "data")
        log_path = os.path.join(data_dir, HEAD_LOG_FILE)
        with open(log_path, "rb") as fh:
            baseline = fh.read()
        db = Database.open_existing(directory)
        expected_ids = sorted(db.chunk_store.chunk_ids())
        expected = {
            cid: db.chunk_store.read(cid) for cid in expected_ids[:3]
        }
        db.close()
        with open(log_path, "rb") as fh:
            baseline = fh.read()
        detected = healed = 0
        step = max(1, len(baseline) // 96)
        for offset in range(0, len(baseline), step):
            tampered = bytearray(baseline)
            tampered[offset] ^= 0x04
            with open(log_path, "wb") as fh:
                fh.write(bytes(tampered))
            try:
                db = Database.open_existing(directory)
            except (TamperDetectedError, ProofError):
                detected += 1
            else:
                for cid, payload in expected.items():
                    assert db.chunk_store.read(cid) == payload
                tip = db.chunk_store.transparency.tip()
                assert tip.generation == db.chunk_store.generation
                db.close()
                healed += 1
            finally:
                with open(log_path, "wb") as fh:
                    fh.write(baseline)
        # Flips in entry bodies must dominate; healing is only for the
        # few offsets that make the tail look torn (or dead header
        # bytes like the advisory scheme byte).
        assert detected > 0
        assert detected + healed == len(range(0, len(baseline), step))
