"""Property-based testing of insensitive iterators (paper section 5.2).

A random operation stream interleaves handle inserts with iterator
reads, writes, and deletes *while an iterator is open*, and checks the
store against a pure-Python model:

* **insensitivity** — the iterator observes exactly the objects its
  query materialized at open time; objects inserted mid-iteration never
  appear under the cursor,
* **deferred index maintenance** — index lookups keep returning
  pre-update keys until the iterator closes (so inserting a key that a
  pending write is about to vacate still raises ``DuplicateKeyError``),
* **deferred uniqueness resolution** — when pending writes collide on
  the unique key index at close, exactly the violators predicted by the
  model (two-phase apply, oid order) are removed and reported via
  ``IndexIntegrityError.removed_object_ids``,
* after every close the collection, both indexes, and the object count
  agree with the model.

The interpreter core is hypothesis-free; a seeded random driver always
runs, and a hypothesis wrapper shrinks failing op streams when the
library is available.
"""

from __future__ import annotations

import random

import pytest

from repro.chunkstore import ChunkStore
from repro.collectionstore import CollectionStore, Indexer
from repro.config import (
    ChunkStoreConfig,
    CollectionStoreConfig,
    ObjectStoreConfig,
    SecurityProfile,
)
from repro.errors import DuplicateKeyError, IndexIntegrityError
from repro.objectstore import (
    BufferReader,
    BufferWriter,
    ClassRegistry,
    ObjectStore,
    Persistent,
)
from repro.platform import (
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)

SECRET = b"iterator-property-secret-0123456"
KEYS = 12       # small domains provoke unique-key collisions
RANKS = 5


class Doc(Persistent):
    class_id = "iterprops.doc"

    def __init__(self, key=0, rank=0):
        self.key = key
        self.rank = rank

    def pickle(self) -> bytes:
        return BufferWriter().write_int(self.key).write_int(self.rank).getvalue()

    @classmethod
    def unpickle(cls, data: bytes) -> "Doc":
        reader = BufferReader(data)
        return cls(reader.read_int(), reader.read_int())


def key_indexer():
    return Indexer("by-key", Doc, lambda d: d.key, unique=True, kind="hash")


def rank_indexer():
    return Indexer("by-rank", Doc, lambda d: d.rank, unique=False, kind="btree")


class IteratorSession:
    """Interprets an op stream against the store and a pure-Python model.

    Ops (plain tuples, so hypothesis can generate and shrink them):

    * ``("insert", key, rank)`` — handle insert (also legal mid-iteration)
    * ``("open", kind, a, b)`` — open an iterator: kind 0 = full rank
      scan, 1 = key match on ``a``, 2 = rank range ``[a, b]``
    * ``("step", do_write, new_key, new_rank, do_delete)`` — observe the
      current object, optionally update it and/or delete it, advance
    * ``("close",)`` — close the iterator, apply deferred maintenance,
      then validate the whole collection against the model
    """

    def __init__(self):
        registry = ClassRegistry()
        registry.register(Doc)
        chunk_store = ChunkStore.format(
            MemoryUntrustedStore(),
            MemorySecretStore(SECRET),
            MemoryOneWayCounter(),
            ChunkStoreConfig(
                segment_size=16 * 1024,
                initial_segments=4,
                checkpoint_residual_bytes=64 * 1024,
                map_fanout=16,
                security=SecurityProfile.insecure(),
            ),
        )
        object_store = ObjectStore.create(
            chunk_store, ObjectStoreConfig(locking=False), registry
        )
        self.store = CollectionStore(
            object_store,
            CollectionStoreConfig(btree_order=4, list_node_capacity=4),
        )
        ct = self.store.transaction()
        handle = ct.create_collection("docs", key_indexer())
        handle.create_index(rank_indexer())
        ct.commit()

        self.model = {}        # oid -> [key, rank], committed + applied
        self.index_keys = {}   # key -> oid, what the UNIQUE INDEX holds
                               # (lags self.model changes until close)
        # open-iterator state
        self.ct = None
        self.handle = None
        self.iterator = None
        self.expected_oids = None
        self.observed = None
        self.inserted_while_open = None
        self.pending_writes = None   # oid -> (pre_key, post_key, post_rank)
        self.pending_deletes = None  # oid -> pre_key

    # -- ops ----------------------------------------------------------------

    def run(self, ops):
        try:
            for op in ops:
                getattr(self, "op_" + op[0])(*op[1:])
            if self.iterator is not None:
                self.op_close()
        finally:
            self.store.close()

    def op_insert(self, key, rank):
        if self.iterator is None:
            ct = self.store.transaction()
            handle = ct.write_collection("docs")
        else:
            handle = self.handle
        expect_duplicate = key in self.index_keys
        try:
            oid = handle.insert(Doc(key, rank))
        except DuplicateKeyError:
            assert expect_duplicate, (
                f"insert({key}) raised DuplicateKeyError but the unique "
                f"index holds {sorted(self.index_keys)}"
            )
            if self.iterator is None:
                ct.abort()
            return
        assert not expect_duplicate, (
            f"insert({key}) succeeded but {key} is already in the index"
        )
        self.model[oid] = [key, rank]
        self.index_keys[key] = oid
        if self.iterator is None:
            ct.commit()
        else:
            self.inserted_while_open.add(oid)

    def op_open(self, kind, a, b):
        if self.iterator is not None:
            return
        self.ct = self.store.transaction()
        self.handle = self.ct.write_collection("docs")
        if kind == 1:
            self.iterator = self.handle.query_match(key_indexer(), a % KEYS)
            self.expected_oids = {
                oid for oid, (key, _r) in self.model.items() if key == a % KEYS
            }
        elif kind == 2:
            low, high = sorted((a % RANKS, b % RANKS))
            self.iterator = self.handle.query_range(rank_indexer(), low, high)
            self.expected_oids = {
                oid
                for oid, (_k, rank) in self.model.items()
                if low <= rank <= high
            }
        else:
            self.iterator = self.handle.query(rank_indexer())
            self.expected_oids = set(self.model)
        self.observed = []
        self.inserted_while_open = set()
        self.pending_writes = {}
        self.pending_deletes = {}

    def op_step(self, do_write, new_key, new_rank, do_delete):
        if self.iterator is None or self.iterator.end():
            return
        oid = self.iterator._oids[self.iterator._position]
        item = self.iterator.read()
        # Each oid appears once in a materialized result set, so the
        # cursor must show this object's pre-open committed state.
        assert (item.key, item.rank) == tuple(self.model[oid]), (
            f"cursor shows ({item.key}, {item.rank}) for oid {oid}, "
            f"model holds {self.model[oid]}"
        )
        self.observed.append(oid)
        if do_write:
            ref = self.iterator.write()
            if oid not in self.pending_writes:
                pre_key = self.model[oid][0]
            else:
                pre_key = self.pending_writes[oid][0]
            ref.key = new_key % KEYS
            ref.rank = new_rank % RANKS
            self.pending_writes[oid] = (pre_key, new_key % KEYS, new_rank % RANKS)
        if do_delete:
            self.iterator.delete()
            if oid in self.pending_writes:
                pre_key = self.pending_writes.pop(oid)[0]
            else:
                pre_key = self.model[oid][0]
            self.pending_deletes[oid] = pre_key
        self.iterator.next()

    def op_close(self):
        if self.iterator is None:
            return
        expected_violators = self._apply_deferred_to_model()
        try:
            self.iterator.close()
        except IndexIntegrityError as exc:
            assert sorted(exc.removed_object_ids) == expected_violators, (
                f"violators {sorted(exc.removed_object_ids)} != "
                f"model prediction {expected_violators}"
            )
        else:
            assert expected_violators == [], (
                f"model predicted violators {expected_violators} but close "
                "raised nothing"
            )
        self.ct.commit()
        self._check_insensitivity()
        self.iterator = self.ct = self.handle = None
        self.validate()

    # -- model bookkeeping --------------------------------------------------

    def _apply_deferred_to_model(self):
        """Mirror CollectionHandle._apply_deferred exactly; return violators."""
        for oid in sorted(self.pending_deletes):
            pre_key = self.pending_deletes[oid]
            if self.index_keys.get(pre_key) == oid:
                del self.index_keys[pre_key]
            del self.model[oid]
        # Phase 1: every changed stale entry leaves the unique index.
        changed = {
            oid: (pre, post, rank)
            for oid, (pre, post, rank) in sorted(self.pending_writes.items())
            if pre != post
        }
        for oid, (pre, _post, _rank) in changed.items():
            if self.index_keys.get(pre) == oid:
                del self.index_keys[pre]
        # Phase 2, oid order: re-insert with uniqueness checks.
        violators = []
        for oid in sorted(changed):
            _pre, post, _rank = changed[oid]
            if post in self.index_keys:
                violators.append(oid)
                del self.model[oid]
            else:
                self.index_keys[post] = oid
        # Apply the surviving writes' values to the model.
        for oid, (_pre, post, rank) in self.pending_writes.items():
            if oid in self.model:
                self.model[oid] = [post, rank]
        return violators

    def _check_insensitivity(self):
        observed = set(self.observed)
        assert observed <= self.expected_oids, (
            "iterator observed objects outside its materialized result set"
        )
        assert not (observed & self.inserted_while_open), (
            "iterator observed an object inserted after it was opened"
        )

    # -- global invariant ---------------------------------------------------

    def validate(self):
        ct = self.store.transaction()
        handle = ct.read_collection("docs")
        assert handle.count == len(self.model)
        for oid, (key, rank) in self.model.items():
            with handle.query_match(key_indexer(), key) as it:
                assert not it.end(), f"key {key} vanished from the hash index"
                got = it.read()
                assert (got.key, got.rank) == (key, rank)
        with handle.query(rank_indexer()) as it:
            seen = []
            while not it.end():
                doc = it.read()
                seen.append((doc.key, doc.rank))
                it.next()
        assert sorted(seen) == sorted(
            (key, rank) for key, rank in self.model.values()
        )
        ranks = [rank for _k, rank in seen]
        assert ranks == sorted(ranks), "btree scan is not rank-ordered"
        ct.abort()


def random_ops(rng: random.Random, count: int):
    ops = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.30:
            ops.append(("insert", rng.randrange(KEYS), rng.randrange(RANKS)))
        elif roll < 0.45:
            ops.append(
                ("open", rng.randrange(3), rng.randrange(KEYS),
                 rng.randrange(KEYS))
            )
        elif roll < 0.85:
            ops.append(
                ("step", rng.random() < 0.5, rng.randrange(KEYS),
                 rng.randrange(RANKS), rng.random() < 0.25)
            )
        else:
            ops.append(("close",))
    return ops


@pytest.mark.parametrize("seed", range(10))
def test_seeded_random_iterator_sessions(seed):
    rng = random.Random(0xC0FFEE + seed)
    IteratorSession().run(random_ops(rng, 120))


def test_directed_unique_collision_at_close():
    """Two pending writes fight for one key: lower oid wins, higher is
    removed and reported."""
    session = IteratorSession()
    session.run([
        ("insert", 1, 0),
        ("insert", 2, 1),
        ("insert", 3, 2),
        ("open", 0, 0, 0),           # full scan: oids for keys 1, 2, 3
        ("step", True, 7, 0, False),  # key 1 -> 7
        ("step", True, 7, 1, False),  # key 2 -> 7 as well: collision
        ("step", False, 0, 0, False),
        ("close",),
    ])


def test_directed_deferred_duplicate_window():
    """A key vacated by a pending write is still taken until close."""
    session = IteratorSession()
    session.run([
        ("insert", 4, 0),
        ("open", 0, 0, 0),
        ("step", True, 9, 0, False),  # key 4 -> 9, deferred
        ("insert", 4, 3),             # must raise DuplicateKeyError (model
                                      # asserts it): index still holds 4
        ("close",),
    ])
    # After close the index finally frees key 4.
    session2 = IteratorSession()
    session2.run([
        ("insert", 4, 0),
        ("open", 0, 0, 0),
        ("step", True, 9, 0, False),
        ("close",),
        ("insert", 4, 3),             # now legal
    ])


def test_directed_insert_while_open_is_invisible():
    session = IteratorSession()
    session.run([
        ("insert", 0, 0),
        ("insert", 1, 1),
        ("open", 0, 0, 0),
        ("insert", 2, 2),   # mid-iteration: must not appear under cursor
        ("step", False, 0, 0, False),
        ("insert", 3, 3),
        ("step", False, 0, 0, False),
        ("step", False, 0, 0, False),
        ("close",),
    ])


hypothesis = pytest.importorskip("hypothesis", reason="hypothesis not installed")
from hypothesis import given, settings, strategies as st  # noqa: E402

op_strategy = st.one_of(
    st.tuples(st.just("insert"), st.integers(0, KEYS - 1),
              st.integers(0, RANKS - 1)),
    st.tuples(st.just("open"), st.integers(0, 2), st.integers(0, KEYS - 1),
              st.integers(0, KEYS - 1)),
    st.tuples(st.just("step"), st.booleans(), st.integers(0, KEYS - 1),
              st.integers(0, RANKS - 1), st.booleans()),
    st.tuples(st.just("close")),
)


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(op_strategy, max_size=60))
def test_hypothesis_iterator_sessions(ops):
    IteratorSession().run(ops)
