"""The networked service: protocol, sessions, 2PL across the wire,
timeouts, admission control, and the group-commit acceptance numbers.
"""

from __future__ import annotations

import contextlib
import socket
import threading
import time

import pytest

from repro.config import ChunkStoreConfig, ObjectStoreConfig
from repro.db import Database
from repro.errors import (
    LockTimeoutError,
    ObjectNotFoundError,
    ProtocolError,
    ServerBusyError,
    SessionStateError,
    TransientStoreError,
)
from repro.server import BackpressureConfig, TdbClient, TdbServer
from repro.server import protocol


@contextlib.contextmanager
def running_server(db=None, **server_kwargs):
    db = db or Database.in_memory()
    server = TdbServer(db, **server_kwargs).start()
    try:
        yield server
    finally:
        server.stop()
        db.close()


def connect(server, **kwargs) -> TdbClient:
    host, port = server.address
    return TdbClient(host, port, **kwargs)


class TestObjectVerbs:
    def test_roundtrip_and_names(self):
        with running_server() as server:
            with connect(server) as client:
                with client.transaction() as txn:
                    oid = txn.put({"title": "So What", "plays": 1})
                    txn.bind("track", oid)
                with client.transaction() as txn:
                    assert txn.lookup("track") == oid
                    assert txn.get(oid) == {"title": "So What", "plays": 1}
                    txn.put({"title": "So What", "plays": 2}, oid=oid)
                with client.transaction() as txn:
                    assert txn.get(oid)["plays"] == 2
                    txn.remove(oid)
                with client.transaction() as txn:
                    with pytest.raises(ObjectNotFoundError):
                        txn.get(oid)

    def test_abort_on_exception_discards_writes(self):
        with running_server() as server:
            with connect(server) as client:
                with client.transaction() as txn:
                    oid = txn.put({"v": 1})
                with pytest.raises(RuntimeError):
                    with client.transaction() as txn:
                        txn.put({"v": 2}, oid=oid)
                        raise RuntimeError("application bails out")
                with client.transaction() as txn:
                    assert txn.get(oid) == {"v": 1}


class TestCollectionVerbs:
    def test_create_insert_query_remove(self):
        with running_server() as server:
            with connect(server) as client:
                with client.transaction("collection") as ct:
                    ct.create_collection("tracks", "title", unique=True)
                    ct.insert("tracks", {"title": "a", "plays": 3})
                    ct.insert("tracks", {"title": "b", "plays": 5})
                    ct.insert("tracks", {"title": "c", "plays": 1})
                with client.transaction("collection") as ct:
                    assert ct.get_match("tracks", "b") == [
                        {"title": "b", "plays": 5}
                    ]
                    titles = [v["title"] for v in ct.iterate("tracks")]
                    assert titles == ["a", "b", "c"]  # btree order
                    ranged = ct.iterate("tracks", lo="a", hi="b")
                    assert [v["title"] for v in ranged] == ["a", "b"]
                with client.transaction("collection") as ct:
                    assert ct.remove_match("tracks", "b") == 1
                with client.transaction("collection") as ct:
                    assert ct.get_match("tracks", "b") == []

    def test_collections_survive_server_restart(self, tmp_path):
        directory = str(tmp_path / "db")
        db = Database.create(directory)
        with running_server(db=db) as server:
            with connect(server) as client:
                with client.transaction("collection") as ct:
                    ct.create_collection("meters", "device")
                    ct.insert("meters", {"device": "m1", "count": 7})

        # A brand-new process: fresh Database, fresh server, no in-memory
        # indexer registry — the field indexers must be reconstructed
        # from the persisted descriptor names alone.
        db2 = Database.open_existing(directory)
        with running_server(db=db2) as server:
            with connect(server) as client:
                with client.transaction("collection") as ct:
                    assert ct.get_match("meters", "m1") == [
                        {"device": "m1", "count": 7}
                    ]
                    ct.insert("meters", {"device": "m2", "count": 9})
                    assert len(ct.iterate("meters")) == 2


class TestProtocolErrors:
    def test_unknown_verb_and_state_machine(self):
        with running_server() as server:
            with connect(server) as client:
                with pytest.raises(ProtocolError):
                    client.call("drop.tables")
                with pytest.raises(SessionStateError):
                    client.call("commit")
                client.call("begin", mode="object")
                with pytest.raises(SessionStateError):
                    client.call("begin", mode="object")  # one txn per session
                with pytest.raises(SessionStateError):
                    client.call("col.insert", name="x", value={})  # wrong mode
                client.call("abort")

    def test_stats_verb_needs_no_transaction(self):
        with running_server() as server:
            with connect(server) as client:
                payload = client.stats()
                assert set(payload) >= {
                    "chunk_store", "io", "group_commit", "sessions",
                    "resilience",
                }
                assert payload["sessions"]["active_sessions"] == 1
                resilience = payload["resilience"]
                assert set(resilience) >= {
                    "sessions_parked", "sessions_resumed", "resume_failures",
                    "grace_expired", "request_replays", "commit_replays",
                    "indoubt_hits", "indoubt_misses", "parked_sessions",
                    "resume_grace", "epoch", "commit_tokens",
                }
                assert resilience["epoch"] == server.epoch

    def test_garbage_frame_drops_the_connection(self):
        with running_server() as server:
            host, port = server.address
            with socket.create_connection((host, port), timeout=5) as sock:
                sock.sendall(b"\x00\x00\x00\x04haha")
                # The server cannot parse the frame and hangs up.
                assert sock.recv(4096) == b""


class TestTwoPhaseLockingOverTheWire:
    def _db(self):
        return Database.in_memory(
            object_config=ObjectStoreConfig(lock_timeout=0.2)
        )

    def test_write_write_conflict_surfaces_lock_timeout(self):
        with running_server(db=self._db()) as server:
            with connect(server) as alice, connect(server) as bob:
                with alice.transaction() as txn:
                    oid = txn.put({"owner": "nobody"})

                alice.call("begin", mode="object")
                alice.call("obj.put", oid=oid, value={"owner": "alice"})
                bob.call("begin", mode="object")
                with pytest.raises(LockTimeoutError):
                    bob.call("obj.put", oid=oid, value={"owner": "bob"})
                # Bob's transaction survived the refused lock; once Alice
                # commits (releasing her exclusive lock) Bob proceeds.
                alice.call("commit")
                bob.call("obj.put", oid=oid, value={"owner": "bob"})
                bob.call("commit")

                with alice.transaction() as txn:
                    assert txn.get(oid) == {"owner": "bob"}

    def test_reader_blocks_writer_until_commit(self):
        with running_server(db=self._db()) as server:
            with connect(server) as alice, connect(server) as bob:
                with alice.transaction() as txn:
                    oid = txn.put({"n": 1})
                alice.call("begin", mode="object")
                alice.call("obj.get", oid=oid)  # shared lock until commit
                bob.call("begin", mode="object")
                with pytest.raises(LockTimeoutError):
                    bob.call("obj.put", oid=oid, value={"n": 2})
                alice.call("commit")
                bob.call("obj.put", oid=oid, value={"n": 2})
                bob.call("commit")


class TestBackpressure:
    def test_idle_timeout_aborts_and_releases_locks(self):
        config = BackpressureConfig(idle_timeout=0.3, request_timeout=5.0)
        db = Database.in_memory(object_config=ObjectStoreConfig(lock_timeout=2.0))
        with running_server(db=db, backpressure=config) as server:
            with connect(server) as alice:
                with alice.transaction() as txn:
                    oid = txn.put({"locked": "no"})
                alice.call("begin", mode="object")
                alice.call("obj.put", oid=oid, value={"locked": "by alice"})
                # Alice goes silent holding the exclusive lock.  The idle
                # timeout must abort her transaction so Bob's lock request
                # can be granted (well inside his 2 s lock budget).
                time.sleep(0.8)
                bob = connect(server).connect()
                bob.call("begin", mode="object")
                bob.call("obj.put", oid=oid, value={"locked": "by bob"})
                bob.call("commit")
                assert server.admission.as_dict()["timeout_aborts"] == 1
                # Alice's uncommitted write is gone, and her connection too.
                with bob.transaction() as txn:
                    assert txn.get(oid) == {"locked": "by bob"}
                bob.close()
                with pytest.raises(TransientStoreError):
                    alice.call("stats")

    def test_admission_control_rejects_excess_sessions(self):
        config = BackpressureConfig(max_sessions=1)
        with running_server(backpressure=config) as server:
            with connect(server) as first:
                first.stats()  # the one slot is taken
                second = connect(server)
                with pytest.raises(ServerBusyError) as excinfo:
                    second.stats()
                # Transient by design: a retrying client is correct.
                assert isinstance(excinfo.value, ServerBusyError)
                second.close()
            # The slot frees once the first session drains.
            deadline = time.monotonic() + 5
            while True:
                try:
                    with connect(server) as third:
                        third.stats()
                    break
                except ServerBusyError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.02)
            assert server.admission.as_dict()["rejected_total"] >= 1

    def test_run_transaction_retries_transient_rejection(self):
        config = BackpressureConfig(max_sessions=1)
        with running_server(backpressure=config) as server:
            hog = connect(server).connect()
            hog.stats()

            def release_soon():
                time.sleep(0.3)
                hog.close()

            threading.Thread(target=release_soon, daemon=True).start()
            with connect(server, connect_retries=5) as client:
                oid = client.run_transaction(
                    lambda txn: txn.put({"made": "it"}),
                    attempts=30,
                    retry_delay=0.05,
                )
            assert isinstance(oid, int)


class TestGroupCommitAcceptance:
    """ISSUE 3 acceptance: with 32 concurrent clients the mean commit
    batch exceeds 2 and the store performs strictly fewer durable syncs
    and counter advances than transaction commits."""

    CLIENTS = 32
    TXNS_PER_CLIENT = 5

    def test_32_clients_amortize_syncs_and_counter_advances(self):
        db = Database.in_memory(chunk_config=ChunkStoreConfig(fsync=True))
        config = BackpressureConfig(max_sessions=64)
        with running_server(
            db=db, backpressure=config, max_batch=32, max_delay=0.05
        ) as server:
            io_before = db.io_stats().snapshot()
            counter_before = db.stats().counter_value
            start = threading.Barrier(self.CLIENTS)
            failures = []

            def client_thread(i: int) -> None:
                try:
                    with connect(server, timeout=60) as client:
                        start.wait()
                        for n in range(self.TXNS_PER_CLIENT):
                            client.run_transaction(
                                lambda txn: txn.put({"client": i, "n": n}),
                                attempts=10,
                            )
                except Exception as exc:  # noqa: BLE001
                    failures.append((i, exc))

            threads = [
                threading.Thread(target=client_thread, args=(i,), daemon=True)
                for i in range(self.CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
                assert not t.is_alive(), "client thread hung"
            assert failures == [], f"clients failed: {failures[:3]}"

            commits = self.CLIENTS * self.TXNS_PER_CLIENT
            stats = server.coordinator.stats_snapshot()
            io_delta = db.io_stats().delta_since(io_before)
            counter_delta = db.stats().counter_value - counter_before

            assert stats.requests == commits
            assert stats.mean_batch_size > 2, stats.as_dict()
            # Strictly fewer durable syncs than commits: the whole point.
            assert 0 < io_delta.sync_calls < commits, io_delta
            # Strictly fewer anti-replay counter advances than commits.
            assert 0 < counter_delta < commits
            # And nothing was lost: every inserted object is readable.
            with connect(server) as client:
                payload = client.stats()
                assert payload["group_commit"]["batches"] == stats.batches


class TestProtocolUnit:
    def test_frame_roundtrip_and_limits(self):
        frame = protocol.encode_frame({"id": 1, "op": "stats"})
        assert frame[:4] == (len(frame) - 4).to_bytes(4, "big")
        with pytest.raises(ProtocolError):
            protocol.encode_frame({"bad": object()})

    def test_exception_reconstruction(self):
        payload = protocol.error_payload(7, LockTimeoutError("lock busy"))
        assert payload == {
            "id": 7,
            "ok": False,
            "error": "LockTimeoutError",
            "message": "lock busy",
            "transient": False,
        }
        exc = protocol.exception_from_payload(payload)
        assert isinstance(exc, LockTimeoutError)

        busy = protocol.error_payload(None, ServerBusyError("full"))
        assert busy["transient"] is True

        unknown = {"error": "NoSuchClass", "message": "m", "transient": True}
        assert isinstance(
            protocol.exception_from_payload(unknown), TransientStoreError
        )
