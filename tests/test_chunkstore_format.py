"""Tests for chunk-store record framing, locators, and the master codec."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.chunkstore.format import (
    CheckpointBody,
    CommitBody,
    CommitItem,
    LinkBody,
    Locator,
    MapNodeBody,
    RecordCodec,
    RecordKind,
    SegHeaderBody,
)
from repro.crypto import create_hash_engine, create_mac
from repro.errors import ChunkStoreError, TamperDetectedError

HASH_SIZE = 20


def secure_codec(chain=b"genesis-chain-value!"):
    engine = create_hash_engine("sha1")
    mac = create_mac(b"0123456789abcdef0123456789abcdef", "sha1")
    return RecordCodec(engine, mac, chain=chain)


def insecure_codec():
    return RecordCodec()


class TestLocator:
    def test_roundtrip_with_hash(self):
        locator = Locator(3, 4096, 100, b"\xab" * HASH_SIZE)
        encoded = locator.encode(HASH_SIZE)
        decoded, offset = Locator.decode(encoded, 0, HASH_SIZE)
        assert decoded == locator
        assert offset == len(encoded) == Locator.encoded_size(HASH_SIZE)

    def test_roundtrip_without_hash(self):
        locator = Locator(1, 2, 3)
        decoded, _ = Locator.decode(locator.encode(0), 0, 0)
        assert decoded == locator

    def test_wrong_hash_size_rejected(self):
        with pytest.raises(ChunkStoreError):
            Locator(1, 2, 3, b"short").encode(HASH_SIZE)

    def test_truncated_decode_rejected(self):
        locator = Locator(1, 2, 3, b"\x01" * HASH_SIZE)
        data = locator.encode(HASH_SIZE)[:-1]
        with pytest.raises(ChunkStoreError):
            Locator.decode(data, 0, HASH_SIZE)


class TestBodies:
    def test_commit_body_roundtrip(self):
        body = CommitBody(
            seqno=7,
            durable=True,
            from_cleaner=False,
            expected_counter=3,
            next_chunk_id=12,
            writes=[CommitItem(1, b"abc"), CommitItem(5, b"")],
            deallocs=[2, 9],
        )
        decoded = CommitBody.decode(body.encode(), body_offset_in_record=8)
        assert decoded.seqno == 7
        assert decoded.durable is True
        assert decoded.from_cleaner is False
        assert decoded.expected_counter == 3
        assert decoded.next_chunk_id == 12
        assert [(w.chunk_id, w.payload) for w in decoded.writes] == [
            (1, b"abc"),
            (5, b""),
        ]
        assert decoded.deallocs == [2, 9]

    def test_commit_payload_offsets_match_parse(self):
        body = CommitBody(
            seqno=1,
            durable=False,
            from_cleaner=True,
            expected_counter=0,
            next_chunk_id=2,
            writes=[CommitItem(0, b"xy"), CommitItem(1, b"z" * 10)],
            deallocs=[],
        )
        encoded = body.encode()
        predicted = body.encoded_payload_offsets(body_offset_in_record=8)
        decoded = CommitBody.decode(encoded, body_offset_in_record=8)
        assert decoded.payload_offsets == predicted
        # The offsets really do point at the payloads within the record.
        record = b"HHHHHHHH" + encoded  # fake 8-byte header
        for item, offset in zip(decoded.writes, decoded.payload_offsets):
            assert record[offset:offset + len(item.payload)] == item.payload

    def test_commit_truncated_rejected(self):
        body = CommitBody(1, True, False, 0, 1, [CommitItem(0, b"abcd")], []).encode()
        with pytest.raises(ChunkStoreError):
            CommitBody.decode(body[:-2], 8)

    def test_map_node_roundtrip(self):
        body = MapNodeBody(level=2, index=17, payload=b"node-bytes")
        decoded = MapNodeBody.decode(body.encode(), body_offset_in_record=8)
        assert (decoded.level, decoded.index, decoded.payload) == (2, 17, b"node-bytes")
        assert decoded.payload_offset == MapNodeBody.payload_offset_in_record(8)

    def test_checkpoint_roundtrip_with_and_without_root(self):
        root = Locator(1, 2, 3, b"\x07" * HASH_SIZE)
        with_root = CheckpointBody(5, 6, 7, 2, root)
        decoded = CheckpointBody.decode(with_root.encode(HASH_SIZE), HASH_SIZE)
        assert decoded.root == root
        assert (decoded.seqno, decoded.expected_counter) == (5, 6)
        empty = CheckpointBody(1, 0, 0, 1, None)
        assert CheckpointBody.decode(empty.encode(HASH_SIZE), HASH_SIZE).root is None

    def test_seg_header_and_link_roundtrip(self):
        assert SegHeaderBody.decode(SegHeaderBody(9).encode()).segment == 9
        assert LinkBody.decode(LinkBody(4).encode()).next_segment == 4


class TestSecureCodec:
    def test_frame_and_verify_roundtrip(self):
        writer = secure_codec()
        reader = secure_codec()
        record = writer.frame(RecordKind.LINK, LinkBody(2).encode())
        kind, body = reader.verify_and_advance(record)
        assert kind == RecordKind.LINK
        assert LinkBody.decode(body).next_segment == 2
        assert reader.chain == writer.chain

    def test_chain_orders_records(self):
        writer = secure_codec()
        first = writer.frame(RecordKind.LINK, LinkBody(1).encode())
        second = writer.frame(RecordKind.LINK, LinkBody(2).encode())
        reader = secure_codec()
        # Verifying the second record first must fail: its tag commits to
        # the chain value *after* the first record.
        with pytest.raises(TamperDetectedError):
            reader.verify_and_advance(second)
        reader = secure_codec()
        reader.verify_and_advance(first)
        reader.verify_and_advance(second)

    def test_bit_flip_detected(self):
        writer = secure_codec()
        record = bytearray(writer.frame(RecordKind.LINK, LinkBody(1).encode()))
        record[10] ^= 0x01
        with pytest.raises(TamperDetectedError):
            secure_codec().verify_and_advance(bytes(record))

    def test_wrong_chain_start_detected(self):
        writer = secure_codec(chain=b"one-chain-start-....")
        record = writer.frame(RecordKind.LINK, LinkBody(1).encode())
        reader = secure_codec(chain=b"another-chain-start!")
        with pytest.raises(TamperDetectedError):
            reader.verify_and_advance(record)

    def test_record_size_accounts_tag(self):
        codec = secure_codec()
        record = codec.frame(RecordKind.LINK, LinkBody(1).encode())
        assert len(record) == codec.record_size(LinkBody._FIXED.size)

    def test_bad_magic_rejected(self):
        codec = secure_codec()
        with pytest.raises(ChunkStoreError):
            codec.parse_header(b"XX\x02\x00\x00\x00\x00\x04")

    def test_unknown_kind_rejected(self):
        codec = secure_codec()
        with pytest.raises(ChunkStoreError):
            codec.parse_header(b"TR\x63\x00\x00\x00\x00\x04")


class TestInsecureCodec:
    def test_crc_roundtrip(self):
        writer = insecure_codec()
        record = writer.frame(RecordKind.SEG_HEADER, SegHeaderBody(1).encode())
        kind, body = insecure_codec().verify_and_advance(record)
        assert kind == RecordKind.SEG_HEADER

    def test_crc_detects_torn_write(self):
        writer = insecure_codec()
        record = bytearray(writer.frame(RecordKind.SEG_HEADER, SegHeaderBody(1).encode()))
        record[-1] ^= 0xFF
        with pytest.raises(TamperDetectedError):
            insecure_codec().verify_and_advance(bytes(record))

    @given(st.binary(max_size=64))
    @settings(max_examples=30)
    def test_property_any_body_roundtrips(self, payload):
        body = MapNodeBody(0, 0, payload).encode()
        writer = insecure_codec()
        record = writer.frame(RecordKind.MAP_NODE, body)
        kind, parsed = insecure_codec().verify_and_advance(record)
        assert kind == RecordKind.MAP_NODE
        assert MapNodeBody.decode(parsed, 8).payload == payload
