"""Tests for the Berkeley-DB-style baseline engine."""

from __future__ import annotations

import random
import struct

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baseline import BaselineDB
from repro.baseline.bufferpool import BufferPool, PageFile
from repro.baseline.page import (
    BTreeInternalPage,
    BTreeLeafPage,
    HashBucketPage,
    MetaPage,
    decode_page,
)
from repro.config import BaselineConfig
from repro.errors import BaselineError
from repro.platform import MemoryUntrustedStore


def key_of(value: int) -> bytes:
    return struct.pack(">I", value)


def small_config(**overrides):
    defaults = dict(page_size=2048, cache_bytes=64 * 1024)
    defaults.update(overrides)
    return BaselineConfig(**defaults)


@pytest.fixture
def db():
    database = BaselineDB.create(MemoryUntrustedStore(), small_config())
    database.create_table("t", "btree")
    yield database


class TestPages:
    def test_meta_page_roundtrip(self):
        page = MetaPage()
        page.next_page_no = 42
        page.free_pages = [3, 5]
        page.clean = True
        page.clean_log_size = 1000
        page.tables["a"] = {"method": "btree", "root": 7}
        page.tables["h"] = {
            "method": "hash",
            "root": 9,
            "level": 1,
            "split_pointer": 2,
            "entry_count": 30,
            "initial_buckets": 8,
            "buckets": [9, 10, 11],
        }
        decoded = decode_page(0, page.encode(2048))
        assert isinstance(decoded, MetaPage)
        assert decoded.next_page_no == 42
        assert decoded.clean and decoded.clean_log_size == 1000
        assert decoded.tables["a"] == {"method": "btree", "root": 7}
        assert decoded.tables["h"]["buckets"] == [9, 10, 11]

    def test_leaf_page_roundtrip(self):
        page = BTreeLeafPage(5)
        page.entries = [(b"a", b"1"), (b"b", b"2")]
        page.next_leaf = 9
        page.recompute_used()
        decoded = decode_page(5, page.encode(2048))
        assert decoded.entries == [(b"a", b"1"), (b"b", b"2")]
        assert decoded.next_leaf == 9

    def test_internal_page_roundtrip(self):
        page = BTreeInternalPage(4)
        page.keys = [b"m"]
        page.children = [2, 3]
        decoded = decode_page(4, page.encode(2048))
        assert decoded.keys == [b"m"]
        assert decoded.children == [2, 3]

    def test_bucket_page_roundtrip(self):
        page = HashBucketPage(6)
        page.entries = [(b"k", b"v")]
        page.overflow = 8
        decoded = decode_page(6, page.encode(2048))
        assert decoded.entries == [(b"k", b"v")]
        assert decoded.overflow == 8

    def test_oversized_page_rejected(self):
        page = BTreeLeafPage(1)
        page.entries = [(b"k" * 100, b"v" * 3000)]
        with pytest.raises(BaselineError):
            page.encode(2048)


class TestBufferPool:
    def test_eviction_writes_back_dirty_pages(self):
        untrusted = MemoryUntrustedStore()
        page_file = PageFile(untrusted, 2048)
        pool = BufferPool(page_file, capacity_pages=4)
        for page_no in range(1, 10):
            page = BTreeLeafPage(page_no)
            page.entries = [(key_of(page_no), b"x")]
            page.recompute_used()
            pool.put_new(page)
        assert pool.cached_pages() <= 4
        # Evicted pages must be readable back from disk.
        early = pool.get(1)
        assert early.entries == [(key_of(1), b"x")]

    def test_uncommitted_dirty_pages_are_pinned(self):
        untrusted = MemoryUntrustedStore()
        page_file = PageFile(untrusted, 2048)
        pool = BufferPool(page_file, capacity_pages=4)
        pinned_pages = []
        for page_no in range(1, 6):
            page = BTreeLeafPage(page_no)
            pool.put_new(page)
            pool.mark_dirty(page, txn_id=1)
            pinned_pages.append(page_no)
        # All pinned: the pool exceeds its budget rather than stealing.
        assert pool.cached_pages() == 5
        pool.release_txn(1)
        page = BTreeLeafPage(99)
        pool.put_new(page)
        assert pool.cached_pages() <= 4 + 1


class TestBasicOperations:
    def test_put_get_roundtrip(self, db):
        with db.begin() as txn:
            txn.put("t", b"key", b"value")
        with db.begin() as txn:
            assert txn.get("t", b"key") == b"value"

    def test_put_replaces(self, db):
        with db.begin() as txn:
            txn.put("t", b"k", b"v1")
            txn.put("t", b"k", b"v2")
        with db.begin() as txn:
            assert txn.get("t", b"k") == b"v2"

    def test_delete(self, db):
        with db.begin() as txn:
            txn.put("t", b"k", b"v")
        with db.begin() as txn:
            assert txn.delete("t", b"k")
            assert not txn.delete("t", b"k")
        with db.begin() as txn:
            assert txn.get("t", b"k") is None

    def test_scan_is_sorted(self, db):
        values = list(range(100))
        random.Random(2).shuffle(values)
        with db.begin() as txn:
            for value in values:
                txn.put("t", key_of(value), b"v%d" % value)
        with db.begin() as txn:
            keys = [key for key, _ in txn.scan("t")]
            assert keys == [key_of(v) for v in range(100)]

    def test_missing_table_rejected(self, db):
        with db.begin() as txn:
            with pytest.raises(BaselineError):
                txn.get("nope", b"k")

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(BaselineError):
            db.create_table("t")

    def test_single_active_transaction(self, db):
        txn = db.begin()
        with pytest.raises(BaselineError):
            db.begin()
        txn.commit()
        db.begin().commit()

    def test_create_table_inside_txn_rejected(self, db):
        txn = db.begin()
        with pytest.raises(BaselineError):
            db.create_table("other")
        txn.abort()

    def test_many_records_split_pages(self, db):
        with db.begin() as txn:
            for value in range(2000):
                txn.put("t", key_of(value), bytes(100))
        with db.begin() as txn:
            assert txn.get("t", key_of(1999)) == bytes(100)
            assert sum(1 for _ in txn.scan("t")) == 2000
        assert db.stats().page_count > 10


class TestHashTable:
    def test_hash_table_basris(self):
        db = BaselineDB.create(MemoryUntrustedStore(), small_config())
        db.create_table("h", "hash")
        with db.begin() as txn:
            for value in range(500):
                txn.put("h", key_of(value), b"v%d" % value)
        with db.begin() as txn:
            for value in range(500):
                assert txn.get("h", key_of(value)) == b"v%d" % value
            assert txn.get("h", key_of(9999)) is None
            scanned = sorted(key for key, _ in txn.scan("h"))
            assert scanned == sorted(key_of(v) for v in range(500))

    def test_hash_delete_and_replace(self):
        db = BaselineDB.create(MemoryUntrustedStore(), small_config())
        db.create_table("h", "hash")
        with db.begin() as txn:
            txn.put("h", b"a", b"1")
            txn.put("h", b"a", b"2")
            assert txn.get("h", b"a") == b"2"
            assert txn.delete("h", b"a")
        with db.begin() as txn:
            assert txn.get("h", b"a") is None


class TestTransactions:
    def test_abort_undoes_puts_and_deletes(self, db):
        with db.begin() as txn:
            txn.put("t", b"stable", b"original")
        txn = db.begin()
        txn.put("t", b"stable", b"mutated")
        txn.put("t", b"new", b"inserted")
        txn.delete("t", b"stable") if False else None
        txn.abort()
        with db.begin() as check:
            assert check.get("t", b"stable") == b"original"
            assert check.get("t", b"new") is None

    def test_abort_undoes_delete(self, db):
        with db.begin() as txn:
            txn.put("t", b"k", b"v")
        txn = db.begin()
        txn.delete("t", b"k")
        txn.abort()
        with db.begin() as check:
            assert check.get("t", b"k") == b"v"

    def test_exception_aborts_via_context_manager(self, db):
        with pytest.raises(RuntimeError):
            with db.begin() as txn:
                txn.put("t", b"x", b"1")
                raise RuntimeError("boom")
        with db.begin() as check:
            assert check.get("t", b"x") is None

    def test_finished_transaction_rejects_use(self, db):
        txn = db.begin()
        txn.commit()
        with pytest.raises(BaselineError):
            txn.put("t", b"k", b"v")

    def test_read_only_transaction_writes_no_log(self, db):
        with db.begin() as txn:
            txn.put("t", b"k", b"v")
        before = db.stats().log_records
        with db.begin() as txn:
            txn.get("t", b"k")
        assert db.stats().log_records == before


class TestRecovery:
    def test_crash_recovery_replays_committed(self):
        untrusted = MemoryUntrustedStore()
        db = BaselineDB.create(untrusted, small_config())
        db.create_table("t")
        with db.begin() as txn:
            for value in range(300):
                txn.put("t", key_of(value), bytes([value % 251]) * 50)
        # no close: crash
        recovered = BaselineDB.open(untrusted, small_config())
        with recovered.begin() as txn:
            for value in range(300):
                assert txn.get("t", key_of(value)) == bytes([value % 251]) * 50

    def test_uncommitted_work_not_recovered(self):
        untrusted = MemoryUntrustedStore()
        db = BaselineDB.create(untrusted, small_config())
        db.create_table("t")
        with db.begin() as txn:
            txn.put("t", b"committed", b"yes")
        txn = db.begin()
        txn.put("t", b"uncommitted", b"no")
        db.wal.flush()  # even flushed, a BEGIN without COMMIT must not redo
        recovered = BaselineDB.open(untrusted, small_config())
        with recovered.begin() as check:
            assert check.get("t", b"committed") == b"yes"
            assert check.get("t", b"uncommitted") is None

    def test_clean_close_fast_path(self):
        untrusted = MemoryUntrustedStore()
        db = BaselineDB.create(untrusted, small_config())
        db.create_table("t")
        with db.begin() as txn:
            txn.put("t", b"k", b"v")
        db.close()
        reopened = BaselineDB.open(untrusted, small_config())
        with reopened.begin() as txn:
            assert txn.get("t", b"k") == b"v"

    def test_crash_after_checkpoint_keeps_all_data(self):
        untrusted = MemoryUntrustedStore()
        db = BaselineDB.create(untrusted, small_config())
        db.create_table("t")
        with db.begin() as txn:
            txn.put("t", b"before", b"1")
        db.checkpoint()
        with db.begin() as txn:
            txn.put("t", b"after", b"2")
        # crash (no close); log was truncated at checkpoint
        recovered = BaselineDB.open(untrusted, small_config())
        with recovered.begin() as txn:
            assert txn.get("t", b"before") == b"1"
            assert txn.get("t", b"after") == b"2"

    def test_repeated_crash_cycles(self):
        untrusted = MemoryUntrustedStore()
        config = small_config()
        db = BaselineDB.create(untrusted, config)
        db.create_table("t")
        model = {}
        rng = random.Random(4)
        for cycle in range(4):
            for _ in range(100):
                key = key_of(rng.randrange(60))
                with db.begin() as txn:
                    if key in model and rng.random() < 0.2:
                        txn.delete("t", key)
                        del model[key]
                    else:
                        value = rng.randbytes(60)
                        txn.put("t", key, value)
                        model[key] = value
            db = BaselineDB.open(untrusted, config)
            with db.begin() as txn:
                stored = dict(txn.scan("t"))
            assert stored == model

    def test_checkpoint_truncates_log(self):
        untrusted = MemoryUntrustedStore()
        db = BaselineDB.create(untrusted, small_config())
        db.create_table("t")
        with db.begin() as txn:
            txn.put("t", b"k", b"v" * 200)
        assert db.stats().log_bytes > 0
        db.checkpoint()
        assert db.stats().log_bytes == 0


class TestWriteVolume:
    def test_log_carries_before_and_after_images(self):
        """The architectural signature the paper measures: updates log
        roughly 2x the record size."""
        untrusted = MemoryUntrustedStore()
        db = BaselineDB.create(untrusted, small_config())
        db.create_table("t")
        record = bytes(100)
        with db.begin() as txn:
            txn.put("t", b"acct", record)  # insert: after image only
        written_before = untrusted.stats.bytes_written
        with db.begin() as txn:
            txn.put("t", b"acct", record)  # update: before + after images
        update_bytes = untrusted.stats.bytes_written - written_before
        assert update_bytes >= 2 * len(record)

    def test_log_grows_without_checkpoint(self):
        untrusted = MemoryUntrustedStore()
        db = BaselineDB.create(untrusted, small_config())
        db.create_table("t")
        sizes = []
        for round_no in range(3):
            for _ in range(50):
                with db.begin() as txn:
                    txn.put("t", b"hot", bytes(100))
            sizes.append(db.stats().log_bytes)
        assert sizes[0] < sizes[1] < sizes[2]


class TestPropertyBased:
    @given(
        operations=st.lists(
            st.tuples(
                st.booleans(), st.integers(0, 15), st.binary(min_size=1, max_size=40)
            ),
            max_size=50,
        )
    )
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_matches_dict_model_across_recovery(self, operations):
        untrusted = MemoryUntrustedStore()
        db = BaselineDB.create(untrusted, small_config())
        db.create_table("t")
        model = {}
        for is_put, slot, value in operations:
            key = key_of(slot)
            with db.begin() as txn:
                if is_put:
                    txn.put("t", key, value)
                    model[key] = value
                elif key in model:
                    txn.delete("t", key)
                    del model[key]
        recovered = BaselineDB.open(untrusted, small_config())
        with recovered.begin() as txn:
            assert dict(txn.scan("t")) == model
