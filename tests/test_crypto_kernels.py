"""Fast crypto kernels versus the reference path.

The table-driven AES (:class:`~repro.crypto.aesfast.AesFast`) and the
whole-payload CBC/CTR kernels in :mod:`repro.crypto.modes` exist purely
for speed; their contract is byte-identical output to the per-block
reference path on every input.  This suite pins that contract three
ways: FIPS-197 vectors, hypothesis fuzzing across keys/IVs/lengths
(including every padding boundary), and an on-disk interoperability
guard that formats a chunk store with one kernel profile and reopens it
with the other.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.chunkstore import ChunkStore
from repro.config import ChunkStoreConfig, SecurityProfile
from repro.crypto import (
    Aes,
    AesFast,
    NativeAes,
    create_hash_engine,
    create_payload_cipher,
    modes,
)
from repro.errors import ConfigError, CryptoError
from repro.platform import (
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)

# Lengths that exercise every PKCS#7 / partial-block boundary.
BOUNDARY_LENGTHS = [0, 1, 15, 16, 17, 31, 32, 33, 255, 4096]

keys = st.one_of(st.binary(min_size=16, max_size=16),
                 st.binary(min_size=32, max_size=32))
ivs = st.binary(min_size=16, max_size=16)
payloads = st.one_of(
    st.sampled_from(BOUNDARY_LENGTHS).flatmap(
        lambda n: st.binary(min_size=n, max_size=n)
    ),
    st.binary(min_size=0, max_size=512),
)


# ---------------------------------------------------------------------------
# Block-level equivalence
# ---------------------------------------------------------------------------


class TestAesFastVectors:
    def test_fips197_aes128(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plain = bytes.fromhex("00112233445566778899aabbccddeeff")
        expect = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        fast = AesFast(key)
        assert fast.encrypt_block(plain) == expect
        assert fast.decrypt_block(expect) == plain

    def test_fips197_aes256(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f"
            "101112131415161718191a1b1c1d1e1f"
        )
        plain = bytes.fromhex("00112233445566778899aabbccddeeff")
        expect = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        fast = AesFast(key)
        assert fast.encrypt_block(plain) == expect
        assert fast.decrypt_block(expect) == plain

    def test_rejects_bad_key_sizes(self):
        for size in (0, 15, 17, 33):
            with pytest.raises(CryptoError):
                AesFast(b"k" * size)

    @given(key=keys, block=st.binary(min_size=16, max_size=16))
    @settings(max_examples=200, deadline=None)
    def test_matches_reference_per_block(self, key, block):
        fast, ref = AesFast(key), Aes(key)
        ct = fast.encrypt_block(block)
        assert ct == ref.encrypt_block(block)
        assert fast.decrypt_block(ct) == block
        assert ref.decrypt_block(ct) == block


# ---------------------------------------------------------------------------
# Whole-payload mode kernels
# ---------------------------------------------------------------------------


class TestModeKernels:
    @given(key=keys, iv=ivs, data=payloads)
    @settings(max_examples=150, deadline=None)
    def test_cbc_fast_equals_reference(self, key, iv, data):
        fast, ref = AesFast(key), Aes(key)
        ct_fast = modes.cbc_encrypt(fast, data, iv)
        ct_ref = modes.cbc_encrypt(ref, data, iv)
        assert ct_fast == ct_ref
        # Cross-decrypt both directions: one path's output is the
        # other's input on disk.
        assert modes.cbc_decrypt(ref, ct_fast) == data
        assert modes.cbc_decrypt(fast, ct_ref) == data

    @given(key=keys, nonce=st.binary(min_size=0, max_size=12), data=payloads)
    @settings(max_examples=150, deadline=None)
    def test_ctr_fast_equals_reference(self, key, nonce, data):
        fast, ref = AesFast(key), Aes(key)
        out_fast = modes.ctr_transform(fast, data, nonce)
        assert out_fast == modes.ctr_transform(ref, data, nonce)
        # CTR is an involution on either kernel.
        assert modes.ctr_transform(ref, out_fast, nonce) == data

    def test_boundary_lengths_round_trip(self):
        key = b"0123456789abcdef"
        iv = b"\xaa" * 16
        fast = AesFast(key)
        for n in BOUNDARY_LENGTHS:
            data = bytes(i % 251 for i in range(n))
            assert modes.cbc_decrypt(fast, modes.cbc_encrypt(fast, data, iv)) == data

    def test_unpad_rejects_corrupt_padding(self):
        key = b"0123456789abcdef"
        fast = AesFast(key)
        ct = bytearray(modes.cbc_encrypt(fast, b"hello world", b"\x11" * 16))
        ct[-1] ^= 0x01  # garble the final (padding-carrying) block
        with pytest.raises(CryptoError):
            modes.cbc_decrypt(fast, bytes(ct))

    def test_unpad_rejects_every_bad_tail(self):
        # pkcs7_unpad must reject any tail that is not n copies of n,
        # for the whole range of claimed lengths.
        for claimed in range(1, 17):
            block = bytearray(b"\x00" * (16 - claimed) + bytes([claimed]) * claimed)
            block[-2 if claimed > 1 else -1] ^= 0x80
            if claimed == 1:
                block[-1] = 0  # zero is never valid padding
            with pytest.raises(CryptoError):
                modes.pkcs7_unpad(bytes(block), 16)


# ---------------------------------------------------------------------------
# Hash engines vs hashlib
# ---------------------------------------------------------------------------


class TestHashEngines:
    @given(data=payloads)
    @settings(max_examples=100, deadline=None)
    def test_pure_sha1_matches_hashlib(self, data):
        import hashlib

        pure = create_hash_engine("sha1-pure")
        fast = create_hash_engine("sha1")
        expect = hashlib.sha1(data).digest()
        assert pure.digest(data) == expect
        assert fast.digest(data) == expect

    @given(parts=st.lists(st.binary(max_size=64), max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_digest_many_streams_like_concatenation(self, parts):
        # HashlibEngine.digest_many feeds parts incrementally; the
        # Merkle node digests must not depend on that optimization.
        for name in ("sha1", "sha256", "sha1-pure"):
            engine = create_hash_engine(name)
            assert engine.digest_many(*parts) == engine.digest(b"".join(parts))


# ---------------------------------------------------------------------------
# Profile-level interoperability (the on-disk guard)
# ---------------------------------------------------------------------------


def _config(kernel: str) -> ChunkStoreConfig:
    return ChunkStoreConfig(
        segment_size=8192,
        initial_segments=2,
        map_fanout=8,
        security=SecurityProfile(kernel=kernel),
    )


class TestKernelInterop:
    @pytest.mark.parametrize(
        "write_kernel,read_kernel",
        [
            ("fast", "reference"),
            ("reference", "fast"),
            ("native", "reference"),
            ("reference", "native"),
            ("native", "fast"),
            ("fast", "native"),
        ],
    )
    def test_cross_kernel_store_images(self, write_kernel, read_kernel):
        """A store written by one kernel opens clean under the other."""
        untrusted = MemoryUntrustedStore()
        secret = MemorySecretStore(b"interop-secret-0123456789abcdef0")
        counter = MemoryOneWayCounter()
        store = ChunkStore.format(
            untrusted, secret, counter, _config(write_kernel)
        )
        expected = {}
        for i in range(12):
            cid = store.allocate_chunk_id()
            expected[cid] = bytes((i * 13 + j) % 256 for j in range(50 + 37 * i))
        store.commit(expected, durable=True)
        store.close()

        reopened = ChunkStore.open(
            untrusted, secret, counter, _config(read_kernel)
        )
        for cid, payload in expected.items():
            assert reopened.read(cid) == payload
        assert reopened.scrub().clean
        reopened.close()

    def test_cipher_factory_kernel_selection(self):
        fast = create_payload_cipher("aes-128", b"k" * 16, kernel="fast")
        ref = create_payload_cipher("aes-128", b"k" * 16, kernel="reference")
        native = create_payload_cipher("aes-128", b"k" * 16, kernel="native")
        assert isinstance(fast._cipher, AesFast)
        assert isinstance(ref._cipher, Aes)
        assert isinstance(native._cipher, NativeAes)
        data = b"payload" * 37
        # Each profile decrypts the others' ciphertext.
        assert ref.decrypt(fast.encrypt(data)) == data
        assert fast.decrypt(ref.encrypt(data)) == data
        assert ref.decrypt(native.encrypt(data)) == data
        assert native.decrypt(fast.encrypt(data)) == data

    def test_profile_rejects_unknown_kernel(self):
        with pytest.raises(ValueError):
            SecurityProfile(kernel="turbo")
        with pytest.raises(ValueError):
            create_payload_cipher("aes-128", b"k" * 16, kernel="turbo")

    def test_profile_rejects_unknown_names_with_config_error(self):
        """Bad knobs fail at profile construction, naming the valid set."""
        with pytest.raises(ConfigError, match="valid: auto, native"):
            SecurityProfile(kernel="turbo")
        with pytest.raises(ConfigError, match="unknown cipher"):
            SecurityProfile(cipher_name="rot13")
        with pytest.raises(ConfigError, match="unknown hash"):
            SecurityProfile(hash_name="md5")
        with pytest.raises(ConfigError, match="pool_workers"):
            SecurityProfile(pool_workers=-1)
        with pytest.raises(ConfigError, match="unknown crypto engine"):
            create_payload_cipher("aes-128", b"k" * 16, kernel="turbo")

    def test_auto_kernel_resolves_via_environment(self, monkeypatch):
        profile = SecurityProfile()  # kernel="auto"
        monkeypatch.delenv("REPRO_CRYPTO_ENGINE", raising=False)
        assert profile.resolved_kernel == "native"
        monkeypatch.setenv("REPRO_CRYPTO_ENGINE", "reference")
        assert profile.resolved_kernel == "reference"
        monkeypatch.setenv("REPRO_CRYPTO_ENGINE", "turbo")
        with pytest.raises(ConfigError, match="REPRO_CRYPTO_ENGINE"):
            profile.resolved_kernel
        # An explicit kernel ignores the environment entirely.
        assert SecurityProfile(kernel="fast").resolved_kernel == "fast"
