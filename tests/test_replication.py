"""Verified log-shipping replication: sync, serve, seed, promote.

The acceptance bar from the issue: after a clean shipping run the
replica's Merkle root and counter state must match the primary's
(checked by *reopening* the replica store), the replica must serve
snapshot-consistent reads while refusing every mutating verb, and
catch-up/seeding/promotion must all work end to end.
"""

from __future__ import annotations

import contextlib
import os
import shutil
import threading

import pytest

from repro.config import ChunkStoreConfig
from repro.db import Database
from repro.errors import (
    ReadOnlyReplicaError,
    ReadOnlyStoreError,
    ReplicationError,
    StoreError,
    TamperDetectedError,
)
from repro.platform import FileArchivalStore, FileSecretStore, MirrorOneWayCounter
from repro.replication import (
    ReplicaApplier,
    TransactionGate,
    load_state,
    open_replica_database,
    promote_replica,
    seed_replica,
)
from repro.server import TdbClient, TdbServer
from repro.server.server import RemoteRecord

# Small segments so modest workloads span several of them and the
# cleaner/checkpoint machinery is actually exercised by shipping.
CHUNK = ChunkStoreConfig(
    segment_size=8192, checkpoint_residual_bytes=8192, initial_segments=4
)


@contextlib.contextmanager
def running_primary(tmp_path):
    pdir = os.path.join(str(tmp_path), "primary")
    db = Database.create(pdir, CHUNK)
    server = TdbServer(db).start()
    try:
        yield server, db, pdir
    finally:
        server.stop()
        db.close()


def make_replica_dir(tmp_path, pdir, name="replica"):
    rdir = os.path.join(str(tmp_path), name)
    os.makedirs(rdir, exist_ok=True)
    shutil.copy(
        os.path.join(pdir, "secret.key"), os.path.join(rdir, "secret.key")
    )
    return rdir


def populate(server, count=25, start=0, size=400):
    oids = {}
    with TdbClient(*server.address) as client:
        with client.transaction() as txn:
            for i in range(start, start + count):
                oid = txn.put({"n": i, "pad": "x" * size})
                txn.bind(f"obj-{i}", oid)
                oids[i] = oid
    return oids


def replica_master(rdir):
    secret = FileSecretStore(os.path.join(rdir, "secret.key"), create=False)
    state = load_state(rdir, secret)
    assert state is not None
    db = open_replica_database(rdir, state.counter, CHUNK)
    try:
        return db.chunk_store.master_io.load_latest(), state
    finally:
        db.close()


class TestCleanSync:
    def test_first_sync_matches_primary_bit_for_bit(self, tmp_path):
        with running_primary(tmp_path) as (server, db, pdir):
            oids = populate(server, 30)
            rdir = make_replica_dir(tmp_path, pdir)
            with ReplicaApplier(rdir, *server.address, chunk_config=CHUNK) as app:
                assert app.sync_once() is True

            # Every shipped file is a prefix-exact copy of the primary's
            # (the primary tail may have grown past the anchor since).
            data_dir = os.path.join(rdir, "data")
            for name in os.listdir(data_dir):
                with open(os.path.join(data_dir, name), "rb") as fh:
                    got = fh.read()
                with open(os.path.join(pdir, "data", name), "rb") as fh:
                    want = fh.read(len(got))
                assert got == want, f"{name} diverges from the primary"

            # Reopen the replica store: root, identity, and counter state
            # must authenticate to exactly the primary's.
            master, state = replica_master(rdir)
            primary = db.chunk_store.master_io.load_latest()
            assert master.db_uuid == primary.db_uuid
            assert master.generation == primary.generation
            assert master.root == primary.root
            assert master.expected_counter == primary.expected_counter
            assert state.counter == primary.expected_counter

            # And the data is readable through the replica stack.
            rdb = open_replica_database(rdir, state.counter, CHUNK)
            rdb.register_class(RemoteRecord)
            try:
                with rdb.transaction() as txn:
                    for i, oid in oids.items():
                        assert txn.open_readonly(oid).value["n"] == i
            finally:
                rdb.close()

    def test_second_sync_is_up_to_date(self, tmp_path):
        with running_primary(tmp_path) as (server, _db, pdir):
            populate(server, 10)
            rdir = make_replica_dir(tmp_path, pdir)
            with ReplicaApplier(rdir, *server.address, chunk_config=CHUNK) as app:
                assert app.sync_once() is True
                assert app.sync_once() is False
                stats = app.stats_snapshot()
                assert stats["up_to_date_polls"] == 1
                assert stats["lag_seqno"] == 0

    def test_incremental_sync_reuses_sealed_segments(self, tmp_path):
        with running_primary(tmp_path) as (server, _db, pdir):
            populate(server, 30)
            rdir = make_replica_dir(tmp_path, pdir)
            with ReplicaApplier(rdir, *server.address, chunk_config=CHUNK) as app:
                app.sync_once()
                populate(server, 10, start=100)
                assert app.sync_once() is True
                stats = app.stats_snapshot()
                assert stats["shipments_applied"] == 2
                assert stats["segments_reused"] >= 1

    def test_replica_heals_its_own_bit_rot(self, tmp_path):
        with running_primary(tmp_path) as (server, _db, pdir):
            populate(server, 20)
            rdir = make_replica_dir(tmp_path, pdir)
            with ReplicaApplier(rdir, *server.address, chunk_config=CHUNK) as app:
                app.sync_once()
            # Rot a local segment, then advance the primary and resync:
            # the digest mismatch must force a clean re-fetch, not wedge.
            data_dir = os.path.join(rdir, "data")
            victim = sorted(
                n for n in os.listdir(data_dir) if n.startswith("seg-")
            )[0]
            path = os.path.join(data_dir, victim)
            with open(path, "r+b") as fh:
                fh.seek(100)
                byte = fh.read(1)
                fh.seek(100)
                fh.write(bytes([byte[0] ^ 0xFF]))
            populate(server, 5, start=200)
            with ReplicaApplier(rdir, *server.address, chunk_config=CHUNK) as app:
                assert app.sync_once() is True
            master, _ = replica_master(rdir)  # reopens + authenticates


class TestReadOnlyServing:
    def test_replica_serves_reads_and_refuses_writes(self, tmp_path):
        with running_primary(tmp_path) as (server, _db, pdir):
            oids = populate(server, 10)
            rdir = make_replica_dir(tmp_path, pdir)
            with ReplicaApplier(rdir, *server.address, chunk_config=CHUNK) as app:
                app.sync_once()
                rserver = app.serve()
                with TdbClient(*rserver.address) as client:
                    with client.transaction() as txn:
                        assert txn.lookup("obj-3") == oids[3]
                        assert txn.get(oids[3])["n"] == 3
                    for verb, params in [
                        ("obj.put", {"oid": None, "value": {"v": 1}}),
                        ("obj.remove", {"oid": oids[3]}),
                        ("name.bind", {"name": "x", "oid": oids[3]}),
                        ("col.create", {"name": "c", "field": "k"}),
                    ]:
                        client.call("begin", mode="object")
                        with pytest.raises(ReadOnlyReplicaError):
                            client.call(verb, **params)
                        client.call("abort")

    def test_replica_stats_report_role_and_lag(self, tmp_path):
        with running_primary(tmp_path) as (server, _db, pdir):
            populate(server, 10)
            with TdbClient(*server.address) as client:
                stats = client.stats()
                assert stats["replication"]["role"] == "primary"
            rdir = make_replica_dir(tmp_path, pdir)
            with ReplicaApplier(rdir, *server.address, chunk_config=CHUNK) as app:
                app.sync_once()
                rserver = app.serve()
                with TdbClient(*rserver.address) as client:
                    stats = client.stats()
                    assert stats["read_only"] is True
                    repl = stats["replication"]
                    assert repl["role"] == "replica"
                    assert repl["applier"]["shipments_applied"] == 1
            with TdbClient(*server.address) as client:
                shipper = client.stats()["replication"]["shipper"]
                assert shipper["shipments"] >= 1

    def test_background_polling_follows_the_primary(self, tmp_path):
        with running_primary(tmp_path) as (server, _db, pdir):
            populate(server, 10)
            rdir = make_replica_dir(tmp_path, pdir)
            with ReplicaApplier(
                rdir, *server.address, chunk_config=CHUNK, poll_interval=0.05
            ) as app:
                app.sync_once()
                app.start()
                populate(server, 10, start=50)
                deadline = threading.Event()
                for _ in range(100):
                    if app.stats_snapshot()["shipments_applied"] >= 2:
                        break
                    deadline.wait(0.05)
                stats = app.stats_snapshot()
                assert stats["shipments_applied"] >= 2
                assert stats["last_error"] is None

    def test_writes_through_replica_store_are_refused(self, tmp_path):
        with running_primary(tmp_path) as (server, _db, pdir):
            populate(server, 5)
            rdir = make_replica_dir(tmp_path, pdir)
            with ReplicaApplier(rdir, *server.address, chunk_config=CHUNK) as app:
                app.sync_once()
            _, state = replica_master(rdir)
            rdb = open_replica_database(rdir, state.counter, CHUNK)
            rdb.register_class(RemoteRecord)
            try:
                with pytest.raises(ReadOnlyStoreError):
                    with rdb.transaction() as txn:
                        txn.insert(RemoteRecord({"illegal": True}))
            finally:
                rdb.close()


class TestSeedAndPromote:
    def test_seed_from_backup_then_adopt_primary(self, tmp_path):
        with running_primary(tmp_path) as (server, db, pdir):
            populate(server, 20)
            db.backup_store().create_full(db.chunk_store, "full-0")
            rdir = make_replica_dir(tmp_path, pdir)
            state = seed_replica(
                rdir,
                ["full-0"],
                archival=FileArchivalStore(os.path.join(pdir, "archive")),
                chunk_config=CHUNK,
            )
            assert state.seeded is True

            # The seeded image serves stale reads before first contact.
            rdb = open_replica_database(rdir, state.counter, CHUNK)
            try:
                with rdb.transaction() as txn:
                    assert txn.lookup_name("obj-0") is not None
            finally:
                rdb.close()

            # First sync adopts the primary's identity over the seed's.
            populate(server, 5, start=30)
            with ReplicaApplier(rdir, *server.address, chunk_config=CHUNK) as app:
                assert app.sync_once() is True
            master, state = replica_master(rdir)
            assert state.seeded is False
            assert master.db_uuid == db.chunk_store.master_io.load_latest().db_uuid

    def test_promote_opens_writable_and_defends_history(self, tmp_path):
        with running_primary(tmp_path) as (server, _db, pdir):
            oids = populate(server, 10)
            rdir = make_replica_dir(tmp_path, pdir)
            with ReplicaApplier(rdir, *server.address, chunk_config=CHUNK) as app:
                app.sync_once()
        # Primary is dead; promote the replica.
        db = promote_replica(rdir, CHUNK)
        db.register_class(RemoteRecord)
        try:
            assert not db.read_only
            with db.transaction() as txn:
                assert txn.open_readonly(oids[0]).value["n"] == 0
                txn.insert(RemoteRecord({"written": "post-promote"}))
        finally:
            db.close()
        # The sidecar is retired; the counter file took over.
        assert not os.path.exists(os.path.join(rdir, "replica.state"))
        assert os.path.exists(os.path.join(rdir, "counter"))
        # And the promoted node reopens like any primary.
        db = Database.open_existing(rdir, CHUNK)
        db.close()

    def test_promote_without_state_refuses(self, tmp_path):
        rdir = os.path.join(str(tmp_path), "empty")
        os.makedirs(rdir)
        FileSecretStore(os.path.join(rdir, "secret.key"), create=True)
        with pytest.raises(ReplicationError):
            promote_replica(rdir, CHUNK)

    def test_tampered_sidecar_is_fatal_not_ignored(self, tmp_path):
        with running_primary(tmp_path) as (server, _db, pdir):
            populate(server, 5)
            rdir = make_replica_dir(tmp_path, pdir)
            with ReplicaApplier(rdir, *server.address, chunk_config=CHUNK) as app:
                app.sync_once()
            path = os.path.join(rdir, "replica.state")
            with open(path, "r+b") as fh:
                fh.seek(10)
                byte = fh.read(1)
                fh.seek(10)
                fh.write(bytes([byte[0] ^ 0xFF]))
            with ReplicaApplier(rdir, *server.address, chunk_config=CHUNK) as app:
                with pytest.raises(TamperDetectedError):
                    app.sync_once()


class TestTransactionGate:
    def test_exclusive_waits_for_readers(self):
        gate = TransactionGate()
        gate.acquire_shared()
        entered = threading.Event()
        done = threading.Event()

        def swap():
            with gate.exclusive():
                entered.set()
            done.set()

        thread = threading.Thread(target=swap)
        thread.start()
        assert not entered.wait(0.1)
        gate.release_shared()
        assert done.wait(2.0)
        thread.join()

    def test_new_readers_wait_for_writer(self):
        gate = TransactionGate()
        release_writer = threading.Event()
        writer_in = threading.Event()
        reader_in = threading.Event()

        def writer():
            with gate.exclusive():
                writer_in.set()
                release_writer.wait(2.0)

        def reader():
            with gate.shared():
                reader_in.set()

        wt = threading.Thread(target=writer)
        wt.start()
        assert writer_in.wait(2.0)
        rt = threading.Thread(target=reader)
        rt.start()
        assert not reader_in.wait(0.1)
        release_writer.set()
        assert reader_in.wait(2.0)
        wt.join()
        rt.join()


class TestCounterPrimitives:
    def test_mirror_counter_refuses_increment(self):
        counter = MirrorOneWayCounter(7)
        assert counter.read() == 7
        with pytest.raises(TamperDetectedError):
            counter.increment()

    def test_file_counter_initialize_refuses_rewind(self, tmp_path):
        from repro.platform import FileOneWayCounter

        path = os.path.join(str(tmp_path), "counter")
        FileOneWayCounter.initialize(path, 10)
        counter = FileOneWayCounter(path)
        assert counter.read() == 10
        with pytest.raises(StoreError):
            FileOneWayCounter.initialize(path, 5)
        # Forward (or equal) re-initialization is fine.
        FileOneWayCounter.initialize(path, 12)
        assert FileOneWayCounter(path).read() == 12
