"""Exhaustive offline-tamper sweep over every on-disk region type.

The adversary of the paper edits the untrusted store while the database
is down.  :class:`TamperMatrix` partitions a recorded media image into
typed byte regions — master records, segment headers, commit-record
framing, chunk payloads, location-map nodes, checkpoint/link records —
and corrupts each one (bit-flips across the region, whole-region
zeroing).  Every mutation must either raise ``TamperDetectedError`` (or
its replay subclass) or recover to a known committed state; silent
acceptance of corrupted data fails the sweep.

Two baselines are swept: a *crash image* (live residual log, so the
record hash chain is in the verification path) and a *clean-close image*
(master covers everything; corruption of now-dead log framing must be
invisible, while payload and map corruption is still caught lazily
through the Merkle-backed map on read).
"""

from __future__ import annotations

from functools import lru_cache

import pytest

import repro.chunkstore.store as store_mod
from repro.testing import (
    ChunkStoreCrashScenario,
    REQUIRED_REGION_KINDS,
    TamperMatrix,
)

OFFSETS_PER_REGION = 4


@pytest.fixture(autouse=True)
def _engine(crypto_engine):
    """Sweep the tamper matrix under each crypto engine (native, reference).

    The cached baseline image is recorded under whichever engine runs
    first and re-verified under the other — engines must agree not just
    on clean images but on every tamper verdict.
    """


@lru_cache(maxsize=None)
def baseline(clean_close: bool):
    """(image, expected states, tag size) for one secure workload run."""
    scenario = ChunkStoreCrashScenario(secure=True)
    image, states = scenario.run_to_image(clean_close=clean_close)
    return image, tuple(states), scenario.tag_size


@lru_cache(maxsize=None)
def swept_report(clean_close: bool):
    image, states, tag_size = baseline(clean_close)
    matrix = TamperMatrix(image, tag_size, offsets_per_region=OFFSETS_PER_REGION)
    return matrix.sweep(_recoverer(clean_close), list(states))


def _recoverer(clean_close: bool):
    """A recovery callback whose counter matches the baseline image.

    The workload is deterministic, so re-running it leaves this
    scenario's own one-way counter at exactly the value the baseline
    image was written against.
    """
    scenario = ChunkStoreCrashScenario(secure=True)
    scenario.run_to_image(clean_close=clean_close)
    return scenario.recover_image


@pytest.mark.parametrize("clean_close", [False, True],
                         ids=["crash-image", "clean-close-image"])
def test_matrix_covers_all_required_region_kinds(clean_close):
    report = swept_report(clean_close)
    assert REQUIRED_REGION_KINDS <= report.kinds_covered(), (
        f"sweep covered only {sorted(report.kinds_covered())}"
    )


@pytest.mark.parametrize("clean_close", [False, True],
                         ids=["crash-image", "clean-close-image"])
@pytest.mark.parametrize("kind", sorted(REQUIRED_REGION_KINDS | {
    "commit-record", "checkpoint", "link",
}))
def test_no_silent_corruption_per_region_kind(clean_close, kind):
    """Every mutation of this region kind: detected, structural, or a
    recovery onto a known committed state — never silent acceptance."""
    report = swept_report(clean_close)
    mine = [o for o in report.outcomes if o.mutation.region.kind == kind]
    bad = [o for o in mine if o.outcome == "failed"]
    assert not bad, "\n".join(
        f"{o.mutation.describe()}: {o.detail}" for o in bad[:10]
    )


def test_crash_image_detects_across_the_verification_path():
    """With a live residual log the hash chain must actually fire:
    payload, commit framing, link, and master corruption all produce
    detections somewhere in the sweep (not only clean recoveries)."""
    report = swept_report(False)
    tally = report.tally()
    for kind in ("chunk-payload", "commit-record", "link", "master"):
        assert tally.get(kind, {}).get("detected", 0) > 0, (
            f"no mutation of {kind} was ever detected: {tally}"
        )


def test_clean_close_image_still_guards_payloads_and_map():
    """After a clean shutdown the log framing is dead data, but chunk
    payloads and live map nodes stay hash-guarded through the map."""
    report = swept_report(True)
    tally = report.tally()
    assert tally.get("chunk-payload", {}).get("detected", 0) > 0
    assert tally.get("map-node", {}).get("detected", 0) > 0


def test_whole_region_zeroing_never_passes_silently():
    """Sector-zeroing any live region is caught; dead regions are clean."""
    report = swept_report(False)
    zeroed = [o for o in report.outcomes if o.mutation.action == "zero"]
    assert zeroed
    assert all(o.outcome != "failed" for o in zeroed), [
        o.mutation.describe() for o in zeroed if o.outcome == "failed"
    ]


def test_mutation_guard_matrix_catches_disabled_payload_check(monkeypatch):
    """Meta-test: remove the payload hash check and the matrix must
    report silent corruption — proving the sweep has teeth."""
    image, states, tag_size = baseline(False)

    def unchecked_read_payload(self, locator):
        data = self.segments.read(locator.segment, locator.offset, locator.length)
        return self.cipher.decrypt(data)

    monkeypatch.setattr(
        store_mod.ChunkStore, "read_payload", unchecked_read_payload
    )
    matrix = TamperMatrix(image, tag_size, offsets_per_region=OFFSETS_PER_REGION)
    payload_regions = [r for r in matrix.regions if r.kind == "chunk-payload"]
    matrix.regions = payload_regions
    report = matrix.sweep(_recoverer(False), list(states))
    assert report.failures, (
        "tamper matrix accepted every payload flip with hash validation "
        "disabled — the harness failed its mutation test"
    )
