"""Differential oracle suite: native == fast == reference, always.

Three crypto engines coexist behind ``create_payload_cipher`` (native /
fast / reference), and the system's interop story — a store written
under any engine opens under any other — rests entirely on them being
*byte-identical functions* of (key, IV, plaintext).  This suite fuzzes
that equivalence directly at the primitive layer, where a divergence is
cheapest to localize:

* CBC and CTR, all AES key sizes, across empty / odd-length / padding-
  boundary payloads, with every engine decrypting every other engine's
  output;
* a deterministic multi-megabyte payload (the whole-segment shape the
  digest pool ships) for the two engines fast enough to run it;
* the hash/MAC side: the from-scratch SHA-1 vs hashlib, the from-scratch
  HMAC vs :mod:`hmac`, streamed ``digest_many`` vs one-shot digests, and
  the digest pool's batched helpers vs their serial equivalents;
* the ``NativeAes`` fallback (no ``cryptography`` importable), pinned to
  the fast kernels it borrows.

The store-level reopen guard lives in ``test_crypto_kernels.py``; this
file is the microscope, that one is the end-to-end alarm.
"""

from __future__ import annotations

import hashlib
import hmac as stdlib_hmac

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import (
    Aes,
    AesFast,
    DigestPool,
    NativeAes,
    create_hash_engine,
    create_mac,
    create_payload_cipher,
    modes,
)
from repro.crypto import native as native_mod

ALL_KEY_SIZES = (16, 24, 32)

any_key = st.sampled_from(ALL_KEY_SIZES).flatmap(
    lambda n: st.binary(min_size=n, max_size=n)
)
ivs = st.binary(min_size=16, max_size=16)
nonces = st.binary(min_size=0, max_size=12)
# Empty, odd, and every padding-boundary length, plus arbitrary fills.
payloads = st.one_of(
    st.sampled_from([0, 1, 15, 16, 17, 31, 33, 255, 257, 4096]).flatmap(
        lambda n: st.binary(min_size=n, max_size=n)
    ),
    st.binary(min_size=0, max_size=1024),
)


def _engines(key: bytes):
    return NativeAes(key), AesFast(key), Aes(key)


class TestCipherDifferential:
    @given(key=any_key, iv=ivs, data=payloads)
    @settings(max_examples=120, deadline=None)
    def test_cbc_all_engines_agree(self, key, iv, data):
        native, fast, ref = _engines(key)
        ct = modes.cbc_encrypt(native, data, iv)
        assert ct == modes.cbc_encrypt(fast, data, iv)
        assert ct == modes.cbc_encrypt(ref, data, iv)
        # Every engine decrypts the shared ciphertext.
        for engine in (native, fast, ref):
            assert modes.cbc_decrypt(engine, ct) == data

    @given(key=any_key, nonce=nonces, data=payloads)
    @settings(max_examples=120, deadline=None)
    def test_ctr_all_engines_agree(self, key, nonce, data):
        native, fast, ref = _engines(key)
        out = modes.ctr_transform(native, data, nonce)
        assert out == modes.ctr_transform(fast, data, nonce)
        assert out == modes.ctr_transform(ref, data, nonce)
        # Involution under a different engine than the one that encrypted.
        assert modes.ctr_transform(ref, out, nonce) == data

    @given(key=any_key, block=st.binary(min_size=16, max_size=16))
    @settings(max_examples=120, deadline=None)
    def test_single_block_all_engines_agree(self, key, block):
        native, fast, ref = _engines(key)
        ct = native.encrypt_block(block)
        assert ct == fast.encrypt_block(block) == ref.encrypt_block(block)
        assert (
            native.decrypt_block(ct)
            == fast.decrypt_block(ct)
            == ref.decrypt_block(ct)
            == block
        )

    @pytest.mark.parametrize("cipher_name", ["aes-128", "aes-192", "aes-256"])
    def test_payload_cipher_cross_engine(self, cipher_name):
        key = bytes(range(32))
        native = create_payload_cipher(cipher_name, key, kernel="native")
        fast = create_payload_cipher(cipher_name, key, kernel="fast")
        ref = create_payload_cipher(cipher_name, key, kernel="reference")
        for n in (0, 1, 17, 333):
            data = bytes((7 * i + n) % 256 for i in range(n))
            # encrypt() draws a random IV, so equality is asserted via
            # cross-decryption rather than ciphertext comparison.
            ct = native.encrypt(data)
            assert fast.decrypt(ct) == data
            assert ref.decrypt(ct) == data
            assert native.decrypt(fast.encrypt(data)) == data
            assert native.decrypt(ref.encrypt(data)) == data

    def test_multi_megabyte_payload(self):
        # The whole-segment shape shipped through the digest pool.  The
        # reference engine is orders of magnitude too slow for this
        # size; native vs fast still pins the batched kernels against an
        # independent implementation.
        key = b"\x5a" * 16
        iv = b"\xa5" * 16
        data = (b"\x00\x01\x02\x03" * 1024 + b"odd") * 512  # ~2 MiB, odd
        native, fast = NativeAes(key), AesFast(key)
        ct = modes.cbc_encrypt(native, data, iv)
        assert ct == modes.cbc_encrypt(fast, data, iv)
        assert modes.cbc_decrypt(fast, ct) == data
        stream = modes.ctr_transform(native, data, b"nonce-equal!")
        assert stream == modes.ctr_transform(fast, data, b"nonce-equal!")

    def test_native_fallback_borrows_fast_kernels(self, monkeypatch):
        # Without the cryptography package, NativeAes must degrade to
        # exactly the fast engine (word kernels engaged, same bytes).
        monkeypatch.setattr(native_mod, "HAVE_NATIVE_BACKEND", False)
        key, iv = b"fallback-key-16b", b"\x33" * 16
        fallback = native_mod.NativeAes(key)
        assert fallback.backend == "fallback"
        assert modes._has_word_kernel(fallback)
        assert not modes._has_native_kernel(fallback)
        data = b"degraded but correct" * 99
        assert modes.cbc_encrypt(fallback, data, iv) == modes.cbc_encrypt(
            AesFast(key), data, iv
        )
        assert modes.ctr_transform(fallback, data, b"n") == modes.ctr_transform(
            AesFast(key), data, b"n"
        )


class TestHashAndMacDifferential:
    @given(data=payloads)
    @settings(max_examples=100, deadline=None)
    def test_hash_engines_match_hashlib(self, data):
        assert (
            create_hash_engine("sha1-pure").digest(data)
            == create_hash_engine("sha1").digest(data)
            == hashlib.sha1(data).digest()
        )
        assert (
            create_hash_engine("sha256").digest(data)
            == hashlib.sha256(data).digest()
        )

    @given(parts=st.lists(st.binary(max_size=128), max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_streamed_digest_many_matches_one_shot(self, parts):
        for name in ("sha1", "sha256", "sha1-pure"):
            engine = create_hash_engine(name)
            assert engine.digest_many(*parts) == engine.digest(b"".join(parts))

    @given(
        key=st.binary(min_size=1, max_size=80),
        data=st.binary(max_size=512),
    )
    @settings(max_examples=100, deadline=None)
    def test_mac_matches_stdlib_hmac(self, key, data):
        for hash_name, mod in (("sha1", hashlib.sha1), ("sha256", hashlib.sha256)):
            ours = create_mac(key, hash_name).tag(data)
            theirs = stdlib_hmac.new(key, data, mod).digest()
            assert ours == theirs

    @given(blobs=st.lists(st.binary(max_size=2048), max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_pool_serial_helpers_match_hashlib(self, blobs):
        pool = DigestPool(max_workers=1)
        assert pool.sha256_many(blobs) == [
            hashlib.sha256(b).hexdigest() for b in blobs
        ]
        key = b"pool-mac-key"
        assert pool.hmac_sha256_many(key, blobs) == [
            stdlib_hmac.new(key, b, hashlib.sha256).digest() for b in blobs
        ]
