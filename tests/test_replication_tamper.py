"""The replication channel under attack: 100% rejection required.

Runs the full :class:`~repro.testing.shipping.ShipmentTamperMatrix`
against a live primary: corrupted, truncated, dropped, reordered, and
replayed segment/master frames, manifest lies (counter and generation
rewind), and single-byte payload corruption hidden behind a consistently
forged transport digest (the case only the deep scrub can catch).  Every
attack must end in an error — never an installed divergent image.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import shutil

import pytest

from repro.config import ChunkStoreConfig
from repro.db import Database
from repro.errors import ReplayDetectedError, TamperDetectedError
from repro.server import TdbClient, TdbServer
from repro.testing import (
    SHIPMENT_TAMPER_KINDS,
    ShipmentTamper,
    ShipmentTamperMatrix,
    TamperingReplicationClient,
)
from repro.replication import ReplicaApplier

CHUNK = ChunkStoreConfig(
    segment_size=8192, checkpoint_residual_bytes=8192, initial_segments=4
)


@contextlib.contextmanager
def attack_rig(tmp_path):
    """A populated primary plus a matrix wired to fresh replica dirs."""
    pdir = os.path.join(str(tmp_path), "primary")
    db = Database.create(pdir, CHUNK)
    server = TdbServer(db).start()
    counter = itertools.count()

    def write_batch(count=20, size=400):
        with TdbClient(*server.address) as client:
            with client.transaction() as txn:
                for _ in range(count):
                    txn.put({"n": next(counter), "pad": "x" * size})

    def make_replica_dir():
        rdir = os.path.join(str(tmp_path), f"replica-{next(counter)}")
        os.makedirs(rdir)
        shutil.copy(
            os.path.join(pdir, "secret.key"), os.path.join(rdir, "secret.key")
        )
        return rdir

    write_batch(30)
    matrix = ShipmentTamperMatrix(
        server,
        make_replica_dir,
        advance_primary=lambda: write_batch(5),
        chunk_config=CHUNK,
    )
    try:
        yield matrix, server, make_replica_dir
    finally:
        server.stop()
        db.close()


class TestShipmentTamperMatrix:
    def test_every_channel_attack_is_rejected(self, tmp_path):
        with attack_rig(tmp_path) as (matrix, _server, _mk):
            report = matrix.run()
            assert len(report.cases) == len(SHIPMENT_TAMPER_KINDS)
            assert len(report.detected) == len(report.cases), report.summary()
            report.assert_ok()

    def test_rejected_shipment_leaves_replica_serving(self, tmp_path):
        """A tampered shipment must not take down a working replica."""
        with attack_rig(tmp_path) as (matrix, server, make_replica_dir):
            rdir = make_replica_dir()
            with ReplicaApplier(rdir, *server.address, chunk_config=CHUNK) as app:
                app.sync_once()
                before = app.stats_snapshot()["applied_seqno"]
                matrix.advance_primary()
                evil = TamperingReplicationClient(
                    TdbClient(*server.address), ShipmentTamper("corrupt-master")
                )
                app._client, good = evil, app._client
                try:
                    with pytest.raises(TamperDetectedError):
                        app.sync_once()
                finally:
                    app._client = good
                    evil.close()
                stats = app.stats_snapshot()
                assert stats["tamper_rejected"] == 1
                assert stats["applied_seqno"] == before
                # The honest channel still works afterwards.
                assert app.sync_once() is True

    def test_replay_raises_replay_detected(self, tmp_path):
        with attack_rig(tmp_path) as (matrix, _server, _mk):
            result = matrix._run_replay_case()
            assert result.outcome == "detected"
            assert result.detail == ReplayDetectedError.__name__
