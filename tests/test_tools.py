"""Tests for the admin CLI (inspect / verify)."""

from __future__ import annotations

import pytest

from repro import (
    BufferReader,
    BufferWriter,
    ClassRegistry,
    Database,
    Indexer,
    Persistent,
)
from repro.tools import main as tools_main


class Track(Persistent):
    class_id = "tools.track"

    def __init__(self, name="", plays=0):
        self.name = name
        self.plays = plays

    def pickle(self) -> bytes:
        return BufferWriter().write_str(self.name).write_int(self.plays).getvalue()

    @classmethod
    def unpickle(cls, data: bytes) -> "Track":
        reader = BufferReader(data)
        return cls(reader.read_str(), reader.read_int())


def name_indexer():
    return Indexer("track-name", Track, lambda t: t.name, unique=True, kind="btree")


@pytest.fixture
def populated_db_dir(tmp_path):
    directory = str(tmp_path / "db")
    registry = ClassRegistry()
    registry.register(Track)
    db = Database.create(directory, registry=registry)
    db.register_indexer(name_indexer())
    with db.ctransaction() as ct:
        handle = ct.create_collection("tracks", name_indexer())
        for name in ("So What", "Freddie Freeloader", "Blue in Green"):
            handle.insert(Track(name, 1))
    backups = db.backup_store()
    backups.create_full(db.chunk_store, "full-1")
    backups.close()
    db.close()
    return directory


class TestInspect:
    def test_inspect_prints_summary(self, populated_db_dir, capsys):
        assert tools_main(["inspect", populated_db_dir]) == 0
        out = capsys.readouterr().out
        assert "security        : on" in out
        assert "tracks -> object" in out
        assert "collection of 3" in out
        assert "full-1: full" in out

    def test_inspect_missing_directory_fails_cleanly(self, tmp_path, capsys):
        missing = str(tmp_path / "nothing")
        # StoreError is a TDBError: main converts it to exit code 2.
        assert tools_main(["inspect", missing]) == 2
        assert "secret store file missing" in capsys.readouterr().err


class TestVerify:
    def test_verify_clean_database(self, populated_db_dir, capsys):
        assert tools_main(["verify", populated_db_dir]) == 0
        out = capsys.readouterr().out
        assert "VERIFY OK" in out
        assert "chunks:" in out

    def test_verify_detects_corruption(self, populated_db_dir, capsys):
        import os

        data_dir = os.path.join(populated_db_dir, "data")
        # Corrupt the middle of the biggest segment file.
        segments = [
            name for name in os.listdir(data_dir) if name.startswith("seg-")
        ]
        target = max(
            segments, key=lambda n: os.path.getsize(os.path.join(data_dir, n))
        )
        path = os.path.join(data_dir, target)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size // 2)
            handle.write(b"\xde\xad\xbe\xef")
        code = tools_main(["verify", populated_db_dir])
        out = capsys.readouterr().out + capsys.readouterr().err
        assert code != 0

    def test_verify_detects_corrupt_backup(self, populated_db_dir, capsys):
        import os

        backup_path = os.path.join(populated_db_dir, "archive", "full-1")
        with open(backup_path, "r+b") as handle:
            handle.seek(150)
            handle.write(b"\x00\x00\x00\x00")
        code = tools_main(["verify", populated_db_dir])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL backup full-1" in out
        assert "VERIFY FAILED" in out


def _corrupt_biggest_segment(directory):
    import os

    data_dir = os.path.join(directory, "data")
    segments = [n for n in os.listdir(data_dir) if n.startswith("seg-")]
    target = max(
        segments, key=lambda n: os.path.getsize(os.path.join(data_dir, n))
    )
    path = os.path.join(data_dir, target)
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.seek(size // 2)
        original = handle.read(1)
        handle.seek(-1, 1)
        handle.write(bytes([original[0] ^ 0xFF]))


class TestScrubCommand:
    def test_scrub_clean_database(self, populated_db_dir, capsys):
        assert tools_main(["scrub", populated_db_dir]) == 0
        assert "clean" in capsys.readouterr().out

    def test_scrub_reports_damage(self, populated_db_dir, capsys):
        _corrupt_biggest_segment(populated_db_dir)
        assert tools_main(["scrub", populated_db_dir, "--salvage"]) == 1
        out = capsys.readouterr().out
        assert "damaged" in out


class TestRepairCommand:
    def test_repair_heals_from_backup(self, populated_db_dir, capsys):
        _corrupt_biggest_segment(populated_db_dir)
        assert tools_main(["repair", populated_db_dir]) == 0
        out = capsys.readouterr().out
        assert "repair action:" in out
        assert "clean" in out
        # The healed store verifies end to end.
        assert tools_main(["verify", populated_db_dir]) == 0

    def test_repair_without_backups(self, tmp_path, capsys):
        directory = str(tmp_path / "db")
        db = Database.create(directory)
        db.close()
        assert tools_main(["repair", directory]) == 2
        assert "no usable backups" in capsys.readouterr().out


class TestSalvageExportCommand:
    def test_export_surviving_chunks(self, populated_db_dir, tmp_path, capsys):
        import os

        _corrupt_biggest_segment(populated_db_dir)
        out_dir = str(tmp_path / "rescued")
        code = tools_main(["salvage-export", populated_db_dir, out_dir])
        out = capsys.readouterr().out
        assert code in (0, 1)  # 1 when the flipped byte hit live data
        assert "exported" in out
        names = os.listdir(out_dir)
        assert "MANIFEST.tsv" in names
        chunks = [n for n in names if n.startswith("chunk-")]
        with open(os.path.join(out_dir, "MANIFEST.tsv")) as fh:
            manifest = fh.read().splitlines()
        assert len(manifest) == len(chunks)


class TestScrubSalvageDegraded:
    def test_rolled_back_image_exits_nonzero_even_with_clean_tree(
        self, tmp_path, capsys
    ):
        """A replayed (rolled-back) image Merkle-verifies perfectly — the
        damage lives in the counter skew, and the exit code must say so."""
        import os
        import shutil

        directory = str(tmp_path / "db")
        db = Database.create(directory)
        cid = db.chunk_store.allocate_chunk_id()
        db.chunk_store.commit({cid: b"epoch-one" * 8}, durable=True)
        db.close()

        data_dir = os.path.join(directory, "data")
        stale = str(tmp_path / "stale-data")
        shutil.copytree(data_dir, stale)

        db = Database.open_existing(directory)
        cid2 = db.chunk_store.allocate_chunk_id()
        db.chunk_store.commit({cid2: b"epoch-two" * 8}, durable=True)
        db.close()

        # The replay attack: put the old image back; the hardware counter
        # (outside data/) kept its advanced value.
        shutil.rmtree(data_dir)
        shutil.copytree(stale, data_dir)

        # A plain open refuses outright; salvage opens read-only but must
        # still report an unhealthy store through the exit code.
        assert tools_main(["scrub", directory]) == 2
        capsys.readouterr()
        assert tools_main(["scrub", directory, "--salvage"]) == 1
        out = capsys.readouterr().out
        assert "counter skew" in out
        assert "clean" in out  # the surviving tree itself verifies


class TestServeCommand:
    def test_serve_database_serves_the_wire_protocol(self, tmp_path):
        import threading

        from repro.server import TdbClient
        from repro.tools import serve_database

        directory = str(tmp_path / "served-db")
        Database.create(directory).close()

        ready: dict = {}
        got_ready = threading.Event()
        stop = threading.Event()

        def on_ready(host, port):
            ready["addr"] = (host, port)
            got_ready.set()

        thread = threading.Thread(
            target=serve_database,
            args=(directory, "127.0.0.1", 0),
            kwargs={"ready_callback": on_ready, "stop_event": stop},
            daemon=True,
        )
        thread.start()
        try:
            assert got_ready.wait(10), "server never reported ready"
            host, port = ready["addr"]
            with TdbClient(host, port) as client:
                with client.transaction("collection") as ct:
                    ct.create_collection("notes", "title")
                    ct.insert("notes", {"title": "remote", "body": "works"})
                with client.transaction("collection") as ct:
                    titles = [v["title"] for v in ct.iterate("notes")]
                assert titles == ["remote"]
                with client.transaction() as txn:
                    oid = txn.put({"added": "remotely"})
                with client.transaction() as txn:
                    assert txn.get(oid) == {"added": "remotely"}
        finally:
            stop.set()
            thread.join(timeout=10)
        assert not thread.is_alive()

        # What the remote clients wrote is durably on disk.
        db = Database.open_existing(directory)
        from repro.server.server import RemoteRecord

        db.register_class(RemoteRecord)
        with db.transaction() as txn:
            assert txn.open_readonly(oid, RemoteRecord).deref().value == {
                "added": "remotely"
            }
        db.close()

    def test_serve_help_lists_tuning_flags(self, capsys):
        with pytest.raises(SystemExit):
            tools_main(["serve", "--help"])
        out = capsys.readouterr().out
        assert "--max-batch" in out
        assert "--idle-timeout" in out


class TestReplicationCommands:
    @staticmethod
    def _serve_in_thread(directory):
        import threading

        from repro.tools import serve_database

        ready: dict = {}
        got_ready = threading.Event()
        stop = threading.Event()

        def on_ready(host, port):
            ready["addr"] = (host, port)
            got_ready.set()

        thread = threading.Thread(
            target=serve_database,
            args=(directory, "127.0.0.1", 0),
            kwargs={"ready_callback": on_ready, "stop_event": stop},
            daemon=True,
        )
        thread.start()
        assert got_ready.wait(10), "server never reported ready"
        return ready["addr"], stop, thread

    def test_replicate_once_then_promote(self, tmp_path, capsys):
        import os
        import shutil

        from repro.server import TdbClient

        pdir = str(tmp_path / "primary")
        Database.create(pdir).close()
        (host, port), stop, thread = self._serve_in_thread(pdir)
        rdir = str(tmp_path / "replica")
        os.makedirs(rdir)
        shutil.copy(
            os.path.join(pdir, "secret.key"), os.path.join(rdir, "secret.key")
        )
        try:
            with TdbClient(host, port) as client:
                with client.transaction() as txn:
                    oid = txn.put({"city": "Osaka"})
            primary = f"{host}:{port}"
            assert tools_main(["replicate", rdir, "--primary", primary,
                               "--once"]) == 0
            assert "installed new image" in capsys.readouterr().out
            assert tools_main(["replicate", rdir, "--primary", primary,
                               "--once"]) == 0
            assert "already up to date" in capsys.readouterr().out
        finally:
            stop.set()
            thread.join(timeout=10)

        # The primary is gone; this node takes over and accepts writes.
        assert tools_main(["promote", rdir]) == 0
        assert "promoted" in capsys.readouterr().out
        db = Database.open_existing(rdir)
        from repro.server.server import RemoteRecord

        db.register_class(RemoteRecord)
        with db.transaction() as txn:
            assert txn.open_readonly(oid, RemoteRecord).deref().value == {
                "city": "Osaka"
            }
            txn.insert(RemoteRecord({"written": "after promote"}))
        db.close()

    def test_replicate_follow_serves_read_only(self, tmp_path):
        import os
        import shutil
        import threading

        from repro.errors import ReadOnlyReplicaError
        from repro.server import TdbClient
        from repro.tools import replicate_database

        pdir = str(tmp_path / "primary")
        Database.create(pdir).close()
        (host, port), pstop, pthread = self._serve_in_thread(pdir)
        rdir = str(tmp_path / "replica")
        os.makedirs(rdir)
        shutil.copy(
            os.path.join(pdir, "secret.key"), os.path.join(rdir, "secret.key")
        )
        try:
            with TdbClient(host, port) as client:
                with client.transaction() as txn:
                    oid = txn.put({"n": 1})
                    txn.bind("the-object", oid)

            rready: dict = {}
            rgot = threading.Event()
            rstop = threading.Event()

            def on_ready(rhost, rport):
                rready["addr"] = (rhost, rport)
                rgot.set()

            rthread = threading.Thread(
                target=replicate_database,
                args=(rdir, f"{host}:{port}"),
                kwargs={
                    "serve_port": 0,
                    "poll": 0.05,
                    "ready_callback": on_ready,
                    "stop_event": rstop,
                },
                daemon=True,
            )
            rthread.start()
            try:
                assert rgot.wait(10), "replica never reported ready"
                rhost, rport = rready["addr"]
                with TdbClient(rhost, rport) as client:
                    with client.transaction() as txn:
                        assert txn.get(txn.lookup("the-object"))["n"] == 1
                        with pytest.raises(ReadOnlyReplicaError):
                            txn.put({"write": "refused"})
                    # The follower picks up new primary commits.
                    with TdbClient(host, port) as pclient:
                        with pclient.transaction() as txn:
                            txn.put({"n": 2}, oid=oid)
                    deadline = threading.Event()
                    for _ in range(100):
                        with client.transaction() as txn:
                            if txn.get(oid)["n"] == 2:
                                break
                        deadline.wait(0.05)
                    with client.transaction() as txn:
                        assert txn.get(oid)["n"] == 2
            finally:
                rstop.set()
                rthread.join(timeout=10)
        finally:
            pstop.set()
            pthread.join(timeout=10)

    def test_cli_help_lists_replication_flags(self, capsys):
        with pytest.raises(SystemExit):
            tools_main(["serve", "--help"])
        out = capsys.readouterr().out
        assert "--max-pending" in out
        assert "--no-quorum-seal" in out
        assert "--max-results" in out
        with pytest.raises(SystemExit):
            tools_main(["replicate", "--help"])
        out = capsys.readouterr().out
        assert "--primary" in out
        assert "--once" in out
        assert "--seed" in out
