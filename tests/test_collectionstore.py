"""Integration tests for the collection store (paper section 5).

Covers collection lifecycle, automatic index maintenance, insensitive
iterators with deferred updates, the Halloween-syndrome defence, deferred
uniqueness violations, and persistence across restarts.
"""

from __future__ import annotations

import pytest

from repro.chunkstore import ChunkStore
from repro.collectionstore import CollectionStore, Indexer
from repro.config import ChunkStoreConfig, CollectionStoreConfig
from repro.errors import (
    CollectionStoreError,
    DuplicateKeyError,
    IndexIntegrityError,
    IteratorStateError,
    ObjectNotFoundError,
    SchemaError,
)
from repro.objectstore import (
    BufferReader,
    BufferWriter,
    ClassRegistry,
    ObjectStore,
    Persistent,
)
from repro.platform import (
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)


class Meter(Persistent):
    class_id = "coll.meter"

    def __init__(self, meter_id=0, view_count=0, print_count=0):
        self.meter_id = meter_id
        self.view_count = view_count
        self.print_count = print_count

    def pickle(self) -> bytes:
        return (
            BufferWriter()
            .write_int(self.meter_id)
            .write_int(self.view_count)
            .write_int(self.print_count)
            .getvalue()
        )

    @classmethod
    def unpickle(cls, data: bytes) -> "Meter":
        reader = BufferReader(data)
        return cls(reader.read_int(), reader.read_int(), reader.read_int())


class PremiumMeter(Meter):
    """Schema evolution via subclassing (paper section 5)."""

    class_id = "coll.premium_meter"

    def __init__(self, meter_id=0, view_count=0, print_count=0, tier="gold"):
        super().__init__(meter_id, view_count, print_count)
        self.tier = tier

    def pickle(self) -> bytes:
        return (
            BufferWriter()
            .write_int(self.meter_id)
            .write_int(self.view_count)
            .write_int(self.print_count)
            .write_str(self.tier)
            .getvalue()
        )

    @classmethod
    def unpickle(cls, data: bytes) -> "PremiumMeter":
        reader = BufferReader(data)
        return cls(
            reader.read_int(), reader.read_int(), reader.read_int(), reader.read_str()
        )


class Account(Persistent):
    class_id = "coll.account"

    def __init__(self, number=0, balance=0):
        self.number = number
        self.balance = balance

    def pickle(self) -> bytes:
        return BufferWriter().write_int(self.number).write_int(self.balance).getvalue()

    @classmethod
    def unpickle(cls, data: bytes) -> "Account":
        reader = BufferReader(data)
        return cls(reader.read_int(), reader.read_int())


def id_indexer(kind="hash"):
    return Indexer("meter-id", Meter, lambda m: m.meter_id, unique=True, kind=kind)


def usage_indexer():
    return Indexer(
        "meter-usage",
        Meter,
        lambda m: m.view_count + m.print_count,
        unique=False,
        kind="btree",
    )


def build_environment():
    untrusted = MemoryUntrustedStore()
    secret = MemorySecretStore(b"0123456789abcdef0123456789abcdef")
    counter = MemoryOneWayCounter()
    config = ChunkStoreConfig(
        segment_size=16 * 1024,
        initial_segments=4,
        checkpoint_residual_bytes=64 * 1024,
        map_fanout=16,
    )
    chunk_store = ChunkStore.format(untrusted, secret, counter, config)
    registry = ClassRegistry()
    registry.register(Meter)
    registry.register(PremiumMeter)
    registry.register(Account)
    object_store = ObjectStore.create(chunk_store, registry=registry)
    store = CollectionStore(
        object_store, CollectionStoreConfig(btree_order=8, hash_initial_buckets=4)
    )
    return store, (untrusted, secret, counter, config, registry)


@pytest.fixture
def store():
    built, _env = build_environment()
    yield built
    built.close()


def populate(store, count=20):
    with store.transaction() as ct:
        handle = ct.create_collection("profile", id_indexer())
        handle.create_index(usage_indexer())
        for index in range(count):
            handle.insert(Meter(index, view_count=index % 5, print_count=index % 3))
    return count


def drain_ids(iterator):
    ids = []
    while not iterator.end():
        ids.append(iterator.read().meter_id)
        iterator.next()
    iterator.close()
    return ids


class TestCollectionLifecycle:
    def test_create_and_reopen_by_name(self, store):
        populate(store)
        with store.transaction() as ct:
            handle = ct.read_collection("profile")
            assert handle.count == 20
            assert set(handle.index_names()) == {"meter-id", "meter-usage"}
            ct.abort()

    def test_duplicate_collection_name_rejected(self, store):
        populate(store)
        ct = store.transaction()
        with pytest.raises(CollectionStoreError):
            ct.create_collection("profile", id_indexer())
        ct.abort()

    def test_missing_collection_rejected(self, store):
        ct = store.transaction()
        with pytest.raises(CollectionStoreError):
            ct.read_collection("ghost")
        ct.abort()

    def test_remove_collection_removes_objects(self, store):
        populate(store, count=5)
        with store.transaction() as ct:
            handle = ct.read_collection("profile")
            iterator = handle.query(id_indexer())
            oids = list(iterator._oids)
            iterator.close()
            ct.abort()
        with store.transaction() as ct:
            ct.remove_collection("profile")
        with store.transaction() as ct:
            with pytest.raises(CollectionStoreError):
                ct.read_collection("profile")
            for oid in oids:
                with pytest.raises(ObjectNotFoundError):
                    ct._txn.open_readonly(oid)
            ct.abort()

    def test_readonly_handle_rejects_mutation(self, store):
        populate(store)
        with store.transaction() as ct:
            handle = ct.read_collection("profile")
            with pytest.raises(CollectionStoreError):
                handle.insert(Meter(99))
            with pytest.raises(CollectionStoreError):
                handle.create_index(
                    Indexer("extra", Meter, lambda m: m.view_count)
                )
            ct.abort()

    def test_schema_enforced_on_insert(self, store):
        populate(store)
        with store.transaction() as ct:
            handle = ct.write_collection("profile")
            with pytest.raises(SchemaError):
                handle.insert(Account(1, 100))
            ct.abort()

    def test_subclass_instances_accepted(self, store):
        populate(store)
        with store.transaction() as ct:
            handle = ct.write_collection("profile")
            handle.insert(PremiumMeter(100, tier="platinum"))
        with store.transaction() as ct:
            handle = ct.read_collection("profile")
            iterator = handle.query_match(id_indexer(), 100)
            obj = iterator.read().deref()
            assert isinstance(obj, PremiumMeter)
            assert obj.tier == "platinum"
            iterator.close()
            ct.abort()


class TestQueries:
    def test_exact_match(self, store):
        populate(store)
        with store.transaction() as ct:
            handle = ct.read_collection("profile")
            assert drain_ids(handle.query_match(id_indexer(), 7)) == [7]
            assert drain_ids(handle.query_match(id_indexer(), 404)) == []
            ct.abort()

    def test_scan_on_btree_is_ordered_by_key(self, store):
        populate(store)
        with store.transaction() as ct:
            handle = ct.read_collection("profile")
            iterator = handle.query(usage_indexer())
            usages = []
            while not iterator.end():
                meter = iterator.read()
                usages.append(meter.view_count + meter.print_count)
                iterator.next()
            iterator.close()
            assert usages == sorted(usages)
            assert len(usages) == 20
            ct.abort()

    def test_range_query(self, store):
        populate(store)
        with store.transaction() as ct:
            handle = ct.read_collection("profile")
            iterator = handle.query_range(usage_indexer(), 5, None)
            while not iterator.end():
                meter = iterator.read()
                assert meter.view_count + meter.print_count >= 5
                iterator.next()
            iterator.close()
            ct.abort()

    def test_range_on_hash_rejected(self, store):
        populate(store)
        with store.transaction() as ct:
            handle = ct.read_collection("profile")
            with pytest.raises(CollectionStoreError):
                handle.query_range(id_indexer(), 0, 5)
            ct.abort()

    def test_query_with_foreign_indexer_rejected(self, store):
        populate(store)
        with store.transaction() as ct:
            handle = ct.read_collection("profile")
            foreign = Indexer("not-there", Meter, lambda m: m.meter_id)
            with pytest.raises(SchemaError):
                handle.query(foreign)
            ct.abort()

    def test_indexer_kind_mismatch_rejected(self, store):
        populate(store)
        with store.transaction() as ct:
            handle = ct.read_collection("profile")
            wrong_kind = Indexer(
                "meter-id", Meter, lambda m: m.meter_id, unique=True, kind="btree"
            )
            with pytest.raises(SchemaError):
                handle.query(wrong_kind)
            ct.abort()


class TestUniqueness:
    def test_immediate_duplicate_on_insert(self, store):
        populate(store)
        with store.transaction() as ct:
            handle = ct.write_collection("profile")
            with pytest.raises(DuplicateKeyError):
                handle.insert(Meter(5))
            ct.abort()

    def test_failed_insert_leaves_collection_unchanged(self, store):
        populate(store)
        ct = store.transaction()
        handle = ct.write_collection("profile")
        before = handle.count
        with pytest.raises(DuplicateKeyError):
            handle.insert(Meter(5))
        assert handle.count == before
        assert drain_ids(handle.query_match(id_indexer(), 5)) == [5]
        ct.abort()

    def test_create_unique_index_over_duplicates_rejected(self, store):
        with store.transaction() as ct:
            handle = ct.create_collection("dups", usage_indexer())
            handle.insert(Meter(1, view_count=3))
            handle.insert(Meter(2, view_count=3))
        ct = store.transaction()
        handle = ct.write_collection("dups")
        unique_usage = Indexer(
            "unique-usage", Meter, lambda m: m.view_count, unique=True, kind="btree"
        )
        with pytest.raises(DuplicateKeyError):
            handle.create_index(unique_usage)
        ct.abort()


class TestIndexManagement:
    def test_create_index_on_populated_collection(self, store):
        populate(store)
        view_ix = Indexer("views", Meter, lambda m: m.view_count, kind="btree")
        with store.transaction() as ct:
            handle = ct.write_collection("profile")
            handle.create_index(view_ix)
        with store.transaction() as ct:
            handle = ct.read_collection("profile")
            ids = drain_ids(handle.query_match(view_ix, 2))
            assert sorted(ids) == [2, 7, 12, 17]
            ct.abort()

    def test_remove_index(self, store):
        populate(store)
        with store.transaction() as ct:
            handle = ct.write_collection("profile")
            handle.remove_index(usage_indexer())
            assert handle.index_names() == ["meter-id"]

    def test_cannot_remove_last_index(self, store):
        with store.transaction() as ct:
            handle = ct.create_collection("single", id_indexer())
            with pytest.raises(CollectionStoreError):
                handle.remove_index(id_indexer())

    def test_duplicate_index_name_rejected(self, store):
        populate(store)
        ct = store.transaction()
        handle = ct.write_collection("profile")
        with pytest.raises(SchemaError):
            handle.create_index(id_indexer())
        ct.abort()

    def test_indexes_maintained_after_dynamic_creation(self, store):
        populate(store)
        view_ix = Indexer("views", Meter, lambda m: m.view_count, kind="btree")
        with store.transaction() as ct:
            handle = ct.write_collection("profile")
            handle.create_index(view_ix)
            handle.insert(Meter(50, view_count=2))
        with store.transaction() as ct:
            handle = ct.read_collection("profile")
            assert 50 in drain_ids(handle.query_match(view_ix, 2))
            ct.abort()


class TestInsensitiveIterators:
    def test_updates_invisible_until_close(self, store):
        """The defining property: an open iterator never sees its own
        updates (paper section 5.2.2)."""
        populate(store)
        with store.transaction() as ct:
            handle = ct.write_collection("profile")
            iterator = handle.query_range(usage_indexer(), 3, None)
            seen = 0
            while not iterator.end():
                meter = iterator.write()
                meter.view_count = 0
                meter.print_count = 0
                seen += 1
                iterator.next()
            iterator.close()
            # After close, the updates are in the indexes.
            check = handle.query_range(usage_indexer(), 3, None)
            assert check.end()
            check.close()
            assert seen > 0

    def test_halloween_syndrome_prevented(self, store):
        """Updating the key of the index used as the access path must not
        re-enumerate objects (the Halloween syndrome)."""
        with store.transaction() as ct:
            handle = ct.create_collection("pay", usage_indexer())
            for index in range(10):
                handle.insert(Meter(index, view_count=1))
        with store.transaction() as ct:
            handle = ct.write_collection("pay")
            iterator = handle.query(usage_indexer())
            touched = 0
            while not iterator.end():
                meter = iterator.write()
                # Push the key upward: naive index-ordered iteration would
                # revisit these objects forever.
                meter.view_count += 100
                touched += 1
                assert touched <= 10, "Halloween syndrome: object revisited"
                iterator.next()
            iterator.close()
            assert touched == 10

    def test_deleted_object_visible_until_close(self, store):
        populate(store, count=6)
        with store.transaction() as ct:
            handle = ct.write_collection("profile")
            iterator = handle.query(id_indexer())
            iterator_length = len(iterator)
            deleted = 0
            while not iterator.end():
                iterator.delete()
                deleted += 1
                iterator.next()
            iterator.close()
            assert deleted == iterator_length == 6
            assert handle.count == 0

    def test_delete_updates_all_indexes(self, store):
        populate(store, count=6)
        with store.transaction() as ct:
            handle = ct.write_collection("profile")
            iterator = handle.query_match(id_indexer(), 3)
            iterator.delete()
            iterator.next()
            iterator.close()
            assert drain_ids(handle.query_match(id_indexer(), 3)) == []
            usage_scan = handle.query(usage_indexer())
            assert 3 not in drain_ids(usage_scan)

    def test_read_after_delete_rejected(self, store):
        populate(store, count=3)
        with store.transaction() as ct:
            handle = ct.write_collection("profile")
            iterator = handle.query(id_indexer())
            iterator.delete()
            with pytest.raises(IteratorStateError):
                iterator.read()
            iterator.next()
            iterator.close()

    def test_unidirectional_and_end_protection(self, store):
        populate(store, count=2)
        with store.transaction() as ct:
            handle = ct.read_collection("profile")
            iterator = handle.query(id_indexer())
            iterator.next()
            iterator.next()
            assert iterator.end()
            with pytest.raises(IteratorStateError):
                iterator.next()
            with pytest.raises(IteratorStateError):
                iterator.read()
            iterator.close()
            ct.abort()

    def test_second_iterator_blocks_writable_deref(self, store):
        populate(store)
        with store.transaction() as ct:
            handle = ct.write_collection("profile")
            first = handle.query(id_indexer())
            second = handle.query(id_indexer())
            with pytest.raises(IteratorStateError):
                first.write()
            second.close()
            first.write()  # sole open iterator now: allowed
            first.close()

    def test_commit_with_open_iterator_rejected(self, store):
        populate(store)
        ct = store.transaction()
        handle = ct.read_collection("profile")
        iterator = handle.query(id_indexer())
        with pytest.raises(IteratorStateError):
            ct.commit()
        iterator.close()
        ct.commit()

    def test_closed_iterator_rejects_use(self, store):
        populate(store)
        with store.transaction() as ct:
            handle = ct.read_collection("profile")
            iterator = handle.query(id_indexer())
            iterator.close()
            with pytest.raises(IteratorStateError):
                iterator.read()
            iterator.close()  # idempotent
            ct.abort()

    def test_abort_abandons_iterator_updates(self, store):
        populate(store)
        ct = store.transaction()
        handle = ct.write_collection("profile")
        iterator = handle.query_match(id_indexer(), 4)
        meter = iterator.write()
        meter.view_count = 77
        ct.abort()  # iterator never closed; updates must vanish
        with store.transaction() as check:
            handle = check.read_collection("profile")
            iterator = handle.query_match(id_indexer(), 4)
            assert iterator.read().view_count == 4 % 5
            iterator.close()
            check.abort()


class TestDeferredUniqueness:
    def test_violation_removes_object_and_raises(self, store):
        with store.transaction() as ct:
            handle = ct.create_collection(
                "accounts",
                Indexer("acct-no", Account, lambda a: a.number, unique=True,
                        kind="btree"),
            )
            handle.insert(Account(1, 100))
            handle.insert(Account(2, 200))
        ct = store.transaction()
        handle = ct.write_collection("accounts")
        number_ix = Indexer(
            "acct-no", Account, lambda a: a.number, unique=True, kind="btree"
        )
        iterator = handle.query_match(number_ix, 2)
        account = iterator.write()
        account.number = 1  # collides with the resident account
        iterator.next()
        with pytest.raises(IndexIntegrityError) as excinfo:
            iterator.close()
        removed = excinfo.value.removed_object_ids
        assert len(removed) == 1
        # The violator left the collection; the resident is intact.
        assert handle.count == 1
        survivors = handle.query(number_ix)
        assert [survivors.read().number] == [1]
        survivors.next()
        survivors.close()
        # The object itself still exists so the app can re-integrate it.
        resurrected = ct._txn.open_readonly(removed[0], Account)
        assert resurrected.number == 1
        ct.abort()

    def test_key_swap_within_iterator_is_legal(self, store):
        """Two objects exchanging unique keys through one iterator must
        not trip the deferred check (both end distinct)."""
        with store.transaction() as ct:
            handle = ct.create_collection(
                "accounts",
                Indexer("acct-no", Account, lambda a: a.number, unique=True,
                        kind="btree"),
            )
            handle.insert(Account(1, 100))
            handle.insert(Account(2, 200))
        with store.transaction() as ct:
            handle = ct.write_collection("accounts")
            number_ix = Indexer(
                "acct-no", Account, lambda a: a.number, unique=True, kind="btree"
            )
            iterator = handle.query(number_ix)
            while not iterator.end():
                account = iterator.write()
                account.number = 3 - account.number  # 1 <-> 2
                iterator.next()
            iterator.close()
            assert handle.count == 2


class TestPersistence:
    def test_collections_survive_restart(self):
        store, env = build_environment()
        untrusted, secret, counter, config, registry = env
        populate(store)
        store.close()
        chunk_store = ChunkStore.open(untrusted, secret, counter, config)
        object_store = ObjectStore.attach(chunk_store, registry=registry)
        reopened = CollectionStore(object_store)
        reopened.register_indexer(id_indexer())
        reopened.register_indexer(usage_indexer())
        with reopened.transaction() as ct:
            handle = ct.read_collection("profile")
            assert handle.count == 20
            assert drain_ids(handle.query_match(id_indexer(), 11)) == [11]
            ct.abort()
        reopened.close()

    def test_unregistered_indexer_after_restart_is_caught(self):
        store, env = build_environment()
        untrusted, secret, counter, config, registry = env
        populate(store)
        store.close()
        chunk_store = ChunkStore.open(untrusted, secret, counter, config)
        object_store = ObjectStore.attach(chunk_store, registry=registry)
        reopened = CollectionStore(object_store)
        # Only one of the two indexers is re-registered.
        reopened.register_indexer(id_indexer())
        with reopened.transaction() as ct:
            handle = ct.write_collection("profile")
            with pytest.raises(SchemaError):
                handle.insert(Meter(999))  # needs the usage extractor too
            ct.abort()
        reopened.close()


class TestHandleWritability:
    def test_readonly_handle_blocks_iterator_write(self, store):
        populate(store, 3)
        with store.transaction() as ct:
            handle = ct.read_collection("profile")
            iterator = handle.query_match(id_indexer(), 1)
            with pytest.raises(CollectionStoreError):
                iterator.write()
            with pytest.raises(CollectionStoreError):
                iterator.delete()
            iterator.close()
            ct.abort()

    def test_writable_handle_allows_iterator_write(self, store):
        populate(store, 3)
        with store.transaction() as ct:
            handle = ct.write_collection("profile")
            iterator = handle.query_match(id_indexer(), 1)
            meter = iterator.write()
            meter.view_count = 42
            iterator.next()
            iterator.close()
        with store.transaction() as ct:
            handle = ct.read_collection("profile")
            iterator = handle.query_match(id_indexer(), 1)
            assert iterator.read().view_count == 42
            iterator.close()
            ct.abort()
