"""Hostile-client drills against the multi-tenant hub (satellite S3).

Every scenario must fail *closed* — a typed refusal on the attacker's
session, no credential oracle, no wedged server, and no collateral
damage to well-behaved tenants.  The storm test drives its attack
traffic through the frame-synchronous :class:`ChaosProxy` so transport
faults land mid-handshake, not just between clean requests.
"""

from __future__ import annotations

import contextlib
import threading
import time

import pytest

from repro.errors import (
    AuthFailedError,
    ProtocolError,
    QuotaExceededError,
    SessionStateError,
    TDBError,
)
from repro.server import TdbClient, TdbServer
from repro.tenancy import Identity, TenancyHub, TenantQuotas, compute_proof
from repro.testing.netfaults import ChaosProxy, NetFaultSchedule


@contextlib.contextmanager
def running_hub(root, tenants=(), **server_kwargs):
    hub = TenancyHub(str(root))
    secrets = {}
    for name, quotas in tenants:
        secrets[name] = hub.create_tenant(name, quotas)["secret"]
    server = TdbServer(None, tenancy=hub, **server_kwargs).start()
    try:
        yield server, hub, secrets
    finally:
        server.stop()
        hub.close()


def connect(server, timeout=5.0) -> TdbClient:
    host, port = server.address
    return TdbClient(host, port, timeout=timeout)


class TestChallengeReplay:
    def test_challenge_consumed_by_failed_attempt(self, tmp_path):
        """One challenge answers at most one proof — success or not."""
        with running_hub(tmp_path, [("acme", None)]) as (server, _, secrets):
            with connect(server) as c:
                challenge = c.call("auth", tenant="acme",
                                   principal="admin")["challenge"]
                good = compute_proof(secrets["acme"], challenge)
                with pytest.raises(AuthFailedError):
                    c.call("auth", tenant="acme", principal="admin",
                           proof="0" * 64)
                # The *correct* proof is now worthless: the failed
                # attempt consumed the challenge.
                with pytest.raises(AuthFailedError):
                    c.call("auth", tenant="acme", principal="admin",
                           proof=good)

    def test_observed_proof_replayed_on_fresh_connection(self, tmp_path):
        """A sniffed (challenge, proof) pair is useless elsewhere."""
        with running_hub(tmp_path, [("acme", None)]) as (server, _, secrets):
            with connect(server) as victim:
                challenge = victim.call("auth", tenant="acme",
                                        principal="admin")["challenge"]
                proof = compute_proof(secrets["acme"], challenge)
                victim.call("auth", tenant="acme", principal="admin",
                            proof=proof)  # the legitimate login
            with connect(server) as attacker:
                # Replay without a pending challenge: refused.
                with pytest.raises(AuthFailedError):
                    attacker.call("auth", tenant="acme",
                                  principal="admin", proof=proof)
                # Replay after requesting a fresh challenge: the old
                # proof answers the wrong nonce.
                attacker.call("auth", tenant="acme", principal="admin")
                with pytest.raises(AuthFailedError):
                    attacker.call("auth", tenant="acme",
                                  principal="admin", proof=proof)

    def test_phase_two_must_match_phase_one(self, tmp_path):
        """Swapping tenant or principal between phases is refused."""
        tenants = [("acme", None), ("globex", None)]
        with running_hub(tmp_path, tenants) as (server, _, secrets):
            with connect(server) as c:
                challenge = c.call("auth", tenant="acme",
                                   principal="admin")["challenge"]
                proof = compute_proof(secrets["acme"], challenge)
                with pytest.raises(AuthFailedError):
                    c.call("auth", tenant="globex", principal="admin",
                           proof=proof)


class TestWrongKey:
    def test_other_tenants_key_is_refused(self, tmp_path):
        """Tenant A's admin secret never opens tenant B — and the
        refusal is indistinguishable from any other auth failure."""
        tenants = [("acme", None), ("globex", None)]
        with running_hub(tmp_path, tenants) as (server, _, secrets):
            with connect(server) as c:
                challenge = c.call("auth", tenant="globex",
                                   principal="admin")["challenge"]
                stolen = compute_proof(secrets["acme"], challenge)
                with pytest.raises(AuthFailedError) as info:
                    c.call("auth", tenant="globex", principal="admin",
                           proof=stolen)
                assert str(info.value) == "authentication failed"

    def test_unknown_tenant_and_principal_same_error(self, tmp_path):
        """Probing for tenant / principal existence learns nothing."""
        with running_hub(tmp_path, [("acme", None)]) as (server, _, _s):
            with connect(server) as c:
                messages = set()
                for tenant, principal in (
                    ("acme", "nosuch"),      # real tenant, fake principal
                    ("nosuch", "admin"),     # fake tenant, real principal
                    ("nosuch", "nosuch"),
                ):
                    with pytest.raises(AuthFailedError) as info:
                        c.call("auth", tenant=tenant, principal=principal)
                    messages.add(str(info.value))
                assert messages == {"authentication failed"}


class TestTamperedFrames:
    def test_flipped_proof_byte(self, tmp_path):
        with running_hub(tmp_path, [("acme", None)]) as (server, _, secrets):
            with connect(server) as c:
                challenge = c.call("auth", tenant="acme",
                                   principal="admin")["challenge"]
                proof = compute_proof(secrets["acme"], challenge)
                flipped = ("0" if proof[0] != "0" else "1") + proof[1:]
                with pytest.raises(AuthFailedError):
                    c.call("auth", tenant="acme", principal="admin",
                           proof=flipped)

    def test_malformed_proof_types_fail_closed(self, tmp_path):
        """Garbage in the proof field is a typed refusal, never a
        server-side crash, and the connection stays serviceable."""
        with running_hub(tmp_path, [("acme", None)]) as (server, _, secrets):
            with connect(server) as c:
                for garbage in (12345, {"hmac": "yes"}, ["p"], True,
                                "not-hex", "", "zz" * 32):
                    c.call("auth", tenant="acme", principal="admin")
                    with pytest.raises((AuthFailedError, ProtocolError)):
                        c.call("auth", tenant="acme", principal="admin",
                               proof=garbage)
                # After seven mangled handshakes the session still
                # completes a legitimate one.
                challenge = c.call("auth", tenant="acme",
                                   principal="admin")["challenge"]
                result = c.call(
                    "auth", tenant="acme", principal="admin",
                    proof=compute_proof(secrets["acme"], challenge),
                )
                assert result["authenticated"] is True

    def test_missing_and_non_string_parameters(self, tmp_path):
        with running_hub(tmp_path, [("acme", None)]) as (server, _, _s):
            with connect(server) as c:
                with pytest.raises(ProtocolError):
                    c.call("auth", tenant="acme")  # no principal
                with pytest.raises(ProtocolError):
                    c.call("auth", principal="admin")  # no tenant
                # Non-string identities coerce to unknown names, not 500s.
                with pytest.raises((AuthFailedError, ProtocolError)):
                    c.call("auth", tenant=7, principal="admin")

    def test_reauth_refused_mid_transaction(self, tmp_path):
        with running_hub(tmp_path, [("acme", None)]) as (server, _, secrets):
            c = connect(server)
            c.authenticate("acme", "admin", secrets["acme"])
            c.call("begin", mode="object")
            with pytest.raises(SessionStateError):
                c.call("auth", tenant="acme", principal="admin")
            c.call("abort")
            c.close()


class TestQuotaStorm:
    def test_storm_through_chaos_proxy_leaves_neighbours_alive(self, tmp_path):
        """A hostile swarm hammers one tenant's auth through a faulty
        network while a neighbour keeps committing.  The swarm must be
        contained by the session quota, every refusal must be typed, and
        the hub must stay fully serviceable afterwards."""
        tenants = [
            ("target", TenantQuotas(max_sessions=2)),
            ("bystander", None),
        ]
        with running_hub(tmp_path, tenants) as (server, hub, secrets):
            host, port = server.address
            schedule = (
                NetFaultSchedule()
                .truncate(2, 2)       # cut an auth frame mid-write
                .drop_after(3, 1)     # kill a connection post-challenge
                .drop_before(5, 2)    # kill one pre-proof
                .duplicate(6, 1)      # double-send a challenge request
            )
            outcomes = {"ok": 0, "quota": 0, "auth": 0, "transport": 0}
            lock = threading.Lock()

            def attacker(index):
                try:
                    client = TdbClient(proxy.address[0], proxy.address[1],
                                       timeout=3.0)
                    try:
                        client.authenticate(
                            "target", "admin", secrets["target"]
                        )
                        with lock:
                            outcomes["ok"] += 1
                        time.sleep(0.3)  # squat on the session slot
                    finally:
                        client.close()
                except QuotaExceededError:
                    with lock:
                        outcomes["quota"] += 1
                except AuthFailedError:
                    with lock:
                        outcomes["auth"] += 1
                except TDBError:
                    with lock:
                        outcomes["transport"] += 1

            with ChaosProxy(host, port, schedule) as proxy:
                threads = [
                    threading.Thread(target=attacker, args=(i,))
                    for i in range(10)
                ]
                bystander_done = threading.Event()
                bystander_oids = []

                def bystander():
                    with connect(server) as c:
                        c.authenticate(
                            "bystander", "admin", secrets["bystander"]
                        )
                        for n in range(5):
                            c.call("begin", mode="object")
                            oid = c.call("obj.put", value={"n": n})["oid"]
                            c.call("commit")
                            bystander_oids.append(oid)
                    bystander_done.set()

                b = threading.Thread(target=bystander)
                for t in threads:
                    t.start()
                b.start()
                for t in threads:
                    t.join(timeout=30)
                b.join(timeout=30)
                assert bystander_done.is_set(), "bystander was starved"
                assert not any(t.is_alive() for t in threads)

            # Every attacker resolved to a *typed* outcome; the quota
            # never admitted more than its two slots at once.
            assert sum(outcomes.values()) == 10
            assert outcomes["quota"] + outcomes["transport"] > 0
            state = hub.registry.peek("target")
            assert state is not None and state.quota.sessions <= 2

            # The hub is not wedged: fresh logins work for both tenants
            # once the storm's slots drain.
            deadline = time.monotonic() + 10
            while True:
                try:
                    with connect(server) as c:
                        c.authenticate("target", "admin", secrets["target"])
                        c.call("begin", mode="object")
                        c.call("obj.put", value={"after": "storm"})
                        c.call("commit")
                    break
                except QuotaExceededError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.05)
            # The storm is on the record: quota refusals were audited
            # (rate-limited, so at least one) in the tenant's own trail.
            if outcomes["quota"]:
                rows = hub.read_reserved(
                    Identity("target", "admin"),
                    {"op": "col.iterate", "name": "_audit"},
                )["values"]
                events = [r["event"] for r in rows]
                assert "quota" in events
