"""Tests for index key encoding, comparison, and hashing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectionstore.keys import (
    compare_keys,
    decode_key,
    encode_key,
    hash_key,
    key_type_tag,
)
from repro.errors import SchemaError

scalar_keys = st.one_of(
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.binary(max_size=20),
    st.booleans(),
)


class TestEncoding:
    @pytest.mark.parametrize(
        "key",
        [0, -1, 2**40, 1.5, -0.0, "", "héllo", b"", b"\x00\xff", True, False,
         (1, "a"), ("x", b"y", 3.0), ()],
    )
    def test_roundtrip(self, key):
        assert decode_key(encode_key(key)) == key

    def test_bool_distinct_from_int(self):
        assert encode_key(True) != encode_key(1)
        assert decode_key(encode_key(True)) is True

    def test_nested_tuple_rejected(self):
        with pytest.raises(SchemaError):
            encode_key((1, (2, 3)))

    def test_unsupported_type_rejected(self):
        with pytest.raises(SchemaError):
            encode_key([1, 2])
        with pytest.raises(SchemaError):
            encode_key(None)

    def test_bytearray_accepted_as_bytes(self):
        assert decode_key(encode_key(bytearray(b"ab"))) == b"ab"

    @given(scalar_keys)
    @settings(max_examples=60)
    def test_property_scalar_roundtrip(self, key):
        assert decode_key(encode_key(key)) == key

    @given(st.tuples(scalar_keys, scalar_keys))
    @settings(max_examples=40)
    def test_property_tuple_roundtrip(self, key):
        assert decode_key(encode_key(key)) == key


class TestComparison:
    def test_three_way_results(self):
        assert compare_keys(1, 2) == -1
        assert compare_keys(2, 1) == 1
        assert compare_keys(2, 2) == 0

    def test_string_ordering(self):
        assert compare_keys("apple", "banana") == -1

    def test_tuple_lexicographic(self):
        assert compare_keys((1, "b"), (1, "c")) == -1
        assert compare_keys((2, "a"), (1, "z")) == 1
        assert compare_keys((1, "a"), (1, "a")) == 0

    def test_mixed_types_rejected(self):
        with pytest.raises(SchemaError):
            compare_keys(1, "one")
        with pytest.raises(SchemaError):
            compare_keys(True, 1)

    def test_tuple_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            compare_keys((1,), (1, 2))

    @given(st.integers(), st.integers())
    @settings(max_examples=50)
    def test_property_matches_python_ordering(self, a, b):
        expected = -1 if a < b else (1 if a > b else 0)
        assert compare_keys(a, b) == expected

    @given(scalar_keys, scalar_keys)
    @settings(max_examples=60)
    def test_property_antisymmetric(self, a, b):
        if key_type_tag(a) != key_type_tag(b):
            return
        assert compare_keys(a, b) == -compare_keys(b, a)


class TestHashing:
    def test_hash_is_stable(self):
        assert hash_key("stable") == hash_key("stable")
        assert hash_key((1, "a")) == hash_key((1, "a"))

    def test_hash_spreads(self):
        values = {hash_key(i) % 64 for i in range(1000)}
        assert len(values) > 40  # most buckets hit

    @given(scalar_keys)
    @settings(max_examples=40)
    def test_property_hash_matches_encoding(self, key):
        assert hash_key(key) == hash_key(decode_key(encode_key(key)))
