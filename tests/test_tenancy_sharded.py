"""Tenancy on the sharded front door, plus frontend-parity contracts.

The sharded layout shares its shard workers between tenants (names and
collections are namespaced, object values are wrapped with the owning
tenant), so the isolation tests here exercise a genuinely shared data
plane — unlike the threaded hub, where each tenant has its own database
and cross-tenant oids cannot even collide.

Also home to two satellite contracts that are about the sharded frontend
itself rather than tenancy:

* capability advertisement — per-store verbs the front door cannot serve
  are listed in ``hello.absent_verbs`` and refused with a structured
  :class:`FeatureUnavailableError`, for old and new clients alike;
* admission-control parity — ``max_sessions`` refuses excess sessions
  with the same transient ``ServerBusyError`` the threaded server uses.
"""

from __future__ import annotations

import contextlib
import time

import pytest

from repro.errors import (
    AuthRequiredError,
    FeatureUnavailableError,
    ObjectNotFoundError,
    PermissionDeniedError,
    QuotaExceededError,
    ServerBusyError,
    TDBError,
)
from repro.server import BackpressureConfig, ShardedTdbServer, TdbClient
from repro.tenancy import TenancyHub, TenantQuotas


@contextlib.contextmanager
def sharded_hub(tmp_path, tenants=(), shards=2, **kwargs):
    """A tenancy-enabled sharded server; yields ``(server, hub, secrets)``."""
    kwargs.setdefault(
        "backpressure",
        BackpressureConfig(
            idle_timeout=15.0, request_timeout=10.0, resume_grace=1.5
        ),
    )
    root = str(tmp_path / "hub")
    hub = TenancyHub(root)
    secrets = {}
    for name, quotas in tenants:
        secrets[name] = hub.create_tenant(name, quotas)["secret"]
    server = ShardedTdbServer(root, shards=shards, tenancy=hub, **kwargs)
    server.start()
    try:
        yield server, hub, secrets
    finally:
        server.stop()
        hub.close()


def connect(server, tenant=None, principal=None, secret=None) -> TdbClient:
    host, port = server.address
    client = TdbClient(host, port, timeout=10.0)
    if tenant is not None:
        client.authenticate(tenant, principal, secret)
    return client


# ---------------------------------------------------------------------------
# S1: capability advertisement (tenancy-independent)
# ---------------------------------------------------------------------------


class TestAbsentVerbs:
    def test_plain_sharded_server_advertises_and_refuses(self, tmp_path):
        server = ShardedTdbServer(str(tmp_path / "db"), shards=2)
        server.start()
        try:
            with connect(server) as client:
                # A new client reads the capability list up front and can
                # route around the gap before tripping over it.
                hello = client.hello()
                absent = hello["absent_verbs"]
                for verb in ("repl.subscribe", "repl.master", "log.head",
                             "proof.read"):
                    assert verb in absent
                assert not set(absent) & set(hello["features"])
                # An old client that never looked at hello still gets a
                # structured, typed refusal — not a protocol error or a
                # hung stream.
                with pytest.raises(FeatureUnavailableError) as info:
                    client.call("repl.subscribe")
                assert "sharded" in str(info.value)
                # The session is intact afterwards.
                with client.transaction() as txn:
                    txn.put({"still": "alive"})
        finally:
            server.stop()

    def test_tenancy_hub_advertises_same_contract(self, tmp_path):
        with sharded_hub(tmp_path, [("acme", None)]) as (server, _, secrets):
            with connect(server, "acme", "admin", secrets["acme"]) as client:
                hello = client.hello()
                assert "tenancy" in hello["features"]
                assert "repl.subscribe" in hello["absent_verbs"]
                with pytest.raises(FeatureUnavailableError):
                    client.call("log.head")


# ---------------------------------------------------------------------------
# S2: admission-control parity with the threaded server
# ---------------------------------------------------------------------------


class TestAdmissionParity:
    def test_max_sessions_refuses_with_server_busy(self, tmp_path):
        server = ShardedTdbServer(
            str(tmp_path / "db"),
            shards=2,
            backpressure=BackpressureConfig(
                max_sessions=1, idle_timeout=15.0, request_timeout=10.0
            ),
        )
        server.start()
        try:
            first = connect(server)
            first.stats()  # the one slot is taken
            second = connect(server)
            with pytest.raises(ServerBusyError):
                second.stats()
            second.close()
            first.close()
            # The slot frees once the first session drains.
            deadline = time.monotonic() + 5
            while True:
                try:
                    with connect(server) as third:
                        third.stats()
                    break
                except ServerBusyError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.02)
            assert server.admission.as_dict()["rejected_total"] >= 1
        finally:
            server.stop()


# ---------------------------------------------------------------------------
# Tenancy end-to-end on the shared data plane
# ---------------------------------------------------------------------------


THREE = [("acme", None), ("globex", None), ("initech", None)]


class TestShardedTenancy:
    def test_preauth_data_verbs_refused(self, tmp_path):
        with sharded_hub(tmp_path, [("acme", None)]) as (server, _, _s):
            with connect(server) as client:
                with pytest.raises(AuthRequiredError):
                    client.call("begin", mode="object")
                with pytest.raises(AuthRequiredError):
                    client.call("obj.get", oid=1)
                # hello and stats remain answerable pre-auth.
                assert client.hello()["sharded"] is True
                assert client.stats()["tenancy"]["open"] >= 0

    def test_three_tenant_isolation_on_shared_shards(self, tmp_path):
        with sharded_hub(tmp_path, THREE) as (server, _, secrets):
            oids = {}
            for name in ("acme", "globex", "initech"):
                with connect(server, name, "admin", secrets[name]) as c:
                    with c.transaction("collection") as ct:
                        ct.create_collection("docs", "k")
                        ct.insert("docs", {"k": 1, "owner": name})
                    with c.transaction() as txn:
                        oids[name] = txn.put({"secret": name})
                        txn.bind("root", oids[name])
            with connect(server, "acme", "admin", secrets["acme"]) as c:
                with c.transaction() as txn:
                    # Own data reads back.
                    assert txn.lookup("root") == oids["acme"]
                    assert txn.get(oids["acme"]) == {"secret": "acme"}
                    # Another tenant's oid is a real, live object on the
                    # same shards — and is absent from acme's view, with
                    # the same error an unallocated oid produces (no
                    # existence oracle).
                    for other in ("globex", "initech"):
                        with pytest.raises(ObjectNotFoundError):
                            txn.get(oids[other])
                        with pytest.raises(ObjectNotFoundError):
                            txn.remove(oids[other])
                    # Names are namespaced: the binding exists for every
                    # tenant separately, and each resolves to its own oid.
                    assert txn.lookup("root") == oids["acme"]
                with c.transaction("collection") as ct:
                    assert ct.get_match("docs", 1) == [
                        {"k": 1, "owner": "acme"}
                    ]
            # globex's view of the same names/collections is its own.
            with connect(server, "globex", "admin", secrets["globex"]) as c:
                with c.transaction() as txn:
                    assert txn.lookup("root") == oids["globex"]
                    assert txn.get(oids["globex"]) == {"secret": "globex"}

    def test_unbound_name_and_foreign_collection(self, tmp_path):
        with sharded_hub(tmp_path, THREE) as (server, _, secrets):
            with connect(server, "acme", "admin", secrets["acme"]) as c:
                with c.transaction("collection") as ct:
                    ct.create_collection("vault", "k")
                    ct.insert("vault", {"k": 7})
                with c.transaction() as txn:
                    txn.bind("only-acme", txn.put({"x": 1}))
            with connect(server, "globex", "admin", secrets["globex"]) as c:
                with c.transaction() as txn:
                    # The name simply does not exist in globex's namespace.
                    assert txn.lookup("only-acme") is None
                with pytest.raises(TDBError):
                    with c.transaction("collection") as ct:
                        ct.get_match("vault", 7)

    def test_policy_revocation_effective_next_txn(self, tmp_path):
        with sharded_hub(tmp_path, [("acme", None)]) as (server, hub, secrets):
            writer = hub.grant_offline("acme", "writer", "docs", "write")
            with connect(server, "acme", "admin", secrets["acme"]) as admin:
                with admin.transaction("collection") as ct:
                    ct.create_collection("docs", "k")
            with connect(server, "acme", "writer", writer["secret"]) as w:
                with w.transaction("collection") as ct:
                    ct.insert("docs", {"k": 1})
                with pytest.raises(PermissionDeniedError):
                    with w.transaction() as txn:
                        txn.put({"x": 1})
                with connect(server, "acme", "admin", secrets["acme"]) as a:
                    a.call("tenant.revoke", principal="writer",
                           scope="docs", right="write")
                with pytest.raises(PermissionDeniedError):
                    with w.transaction("collection") as ct:
                        ct.insert("docs", {"k": 2})

    def test_audit_readable_through_reserved_route(self, tmp_path):
        with sharded_hub(tmp_path, [("acme", None)]) as (server, _, secrets):
            with connect(server, "acme", "admin", secrets["acme"]) as c:
                # Wildcard admin does NOT cover reserved scopes; reading
                # the trail needs an explicit grant, which the admin can
                # mint (tenant.grant is gated on wildcard admin).
                c.call("begin", mode="collection")
                with pytest.raises(PermissionDeniedError):
                    c.call("col.iterate", name="_audit")
                c.call("abort")
                c.call("tenant.grant", principal="admin",
                       scope="_audit", right="read")
                with c.transaction() as txn:
                    txn.put({"metered": True})
                c.call("begin", mode="collection")
                rows = c.call("col.iterate", name="_audit")["values"]
                c.call("abort")
                events = [r["event"] for r in rows]
                assert "auth" in events
                assert "grant" in events
                # Reserved collections stay read-only over the wire.
                c.call("begin", mode="collection")
                with pytest.raises(PermissionDeniedError):
                    c.call("col.insert", name="_audit",
                           value={"event": "forged"})
                c.call("abort")
                meter = c.call("tenant.meter")
                assert meter["usage"]["commits"] >= 1
                assert meter["audit_records"] >= len(rows)

    def test_quota_saturation_leaves_other_tenants_unaffected(self, tmp_path):
        tenants = [
            ("small", TenantQuotas(max_sessions=1)),
            ("big", None),
        ]
        with sharded_hub(tmp_path, tenants) as (server, _, secrets):
            c1 = connect(server, "small", "admin", secrets["small"])
            try:
                blocked = connect(server)
                with pytest.raises(QuotaExceededError):
                    blocked.authenticate("small", "admin", secrets["small"])
                blocked.close()
                with connect(server, "big", "admin", secrets["big"]) as c2:
                    with c2.transaction() as txn:
                        oid = txn.put({"unaffected": True})
                    with c2.transaction() as txn:
                        assert txn.get(oid) == {"unaffected": True}
            finally:
                c1.close()

    def test_bytes_quota_gates_sharded_commit(self, tmp_path):
        tenants = [("tiny", TenantQuotas(max_bytes=64))]
        with sharded_hub(tmp_path, tenants) as (server, _, secrets):
            with connect(server, "tiny", "admin", secrets["tiny"]) as c:
                c.call("begin", mode="object")
                c.call("obj.put", value={"blob": "x" * 200})
                with pytest.raises(QuotaExceededError):
                    c.call("commit")
                # The front door aborted the worker transactions; the
                # session is immediately reusable.
                c.call("begin", mode="object")
                c.call("obj.put", value={"s": 1})
                c.call("commit")

    def test_audit_survives_front_door_restart(self, tmp_path):
        root = tmp_path
        with sharded_hub(root, [("acme", None)]) as (server, _, secrets):
            secret = secrets["acme"]
            with connect(server, "acme", "admin", secret) as c:
                c.call("tenant.grant", principal="admin",
                       scope="_audit", right="read")
        with sharded_hub(root) as (server, _hub, _):
            with connect(server, "acme", "admin", secret) as c:
                c.call("begin", mode="collection")
                rows = c.call("col.iterate", name="_audit")["values"]
                c.call("abort")
                events = [r["event"] for r in rows]
                assert "grant" in events and "auth" in events
                seqs = [r["seq"] for r in rows]
                assert seqs == sorted(seqs)

    def test_stats_and_hub_release_on_disconnect(self, tmp_path):
        with sharded_hub(tmp_path, [("acme", None)]) as (server, hub, secrets):
            c = connect(server, "acme", "admin", secrets["acme"])
            stats = c.stats()
            assert stats["tenancy"]["tenants"]["acme"]["sessions"] == 1
            c.close()
            # The identity's quota slot frees when the connection drains
            # (or its parked grace expires).
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                state = hub.registry.peek("acme")
                if state is not None and state.quota.sessions == 0:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("session quota slot never released")
