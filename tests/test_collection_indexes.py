"""Tests for the index implementations (B+tree, linear hashing, list).

These drive the index structures directly through an object-store
transaction, checking structure-specific behaviour (splits, overflow
chains, ordering) that the collection-level tests do not reach.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.chunkstore import ChunkStore
from repro.collectionstore.btree import BTreeIndex, BTreeNode
from repro.collectionstore.hashtable import HashDirectory, HashIndex
from repro.collectionstore.listindex import ListIndex
from repro.collectionstore.store import register_collection_classes
from repro.config import ChunkStoreConfig, ObjectStoreConfig, SecurityProfile
from repro.errors import DuplicateKeyError
from repro.objectstore import ClassRegistry, ObjectStore
from repro.platform import (
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)


@pytest.fixture
def object_store():
    untrusted = MemoryUntrustedStore()
    secret = MemorySecretStore(b"0123456789abcdef0123456789abcdef")
    counter = MemoryOneWayCounter()
    config = ChunkStoreConfig(
        segment_size=16 * 1024,
        initial_segments=4,
        checkpoint_residual_bytes=64 * 1024,
        map_fanout=16,
        security=SecurityProfile.insecure(),  # speed: structure tests
    )
    chunk_store = ChunkStore.format(untrusted, secret, counter, config)
    registry = ClassRegistry()
    register_collection_classes(registry)
    store = ObjectStore.create(
        chunk_store, ObjectStoreConfig(cache_bytes=1024 * 1024), registry
    )
    yield store
    store.close()


class TestBTree:
    ORDER = 6  # small order so splits happen quickly

    def _tree(self, txn):
        root = BTreeIndex.create(txn, self.ORDER)
        return BTreeIndex(txn, root, self.ORDER)

    def test_insert_lookup_single(self, object_store):
        with object_store.transaction() as txn:
            tree = self._tree(txn)
            tree.insert(5, 100, unique=True)
            assert tree.lookup(5) == [100]
            assert tree.lookup(6) == []

    def test_many_inserts_cause_splits_and_stay_sorted(self, object_store):
        with object_store.transaction() as txn:
            tree = self._tree(txn)
            keys = list(range(200))
            random.Random(1).shuffle(keys)
            for key in keys:
                tree.insert(key, key + 1000, unique=True)
            scanned = list(tree.scan())
            assert [key for key, _ in scanned] == list(range(200))
            assert all(oid == key + 1000 for key, oid in scanned)
            # The root must have split into a real tree.
            root = txn.open_readonly(tree.root_oid, BTreeNode)
            assert not root.is_leaf

    def test_root_oid_is_stable_across_splits(self, object_store):
        with object_store.transaction() as txn:
            tree = self._tree(txn)
            original_root = tree.root_oid
            for key in range(100):
                tree.insert(key, key, unique=True)
            assert tree.root_oid == original_root
            assert tree.lookup(99) == [99]

    def test_duplicate_in_unique_index_rejected(self, object_store):
        with object_store.transaction() as txn:
            tree = self._tree(txn)
            tree.insert(1, 10, unique=True)
            with pytest.raises(DuplicateKeyError):
                tree.insert(1, 11, unique=True)

    def test_non_unique_posting_lists(self, object_store):
        with object_store.transaction() as txn:
            tree = self._tree(txn)
            for oid in (10, 11, 12):
                tree.insert("dup", oid, unique=False)
            assert sorted(tree.lookup("dup")) == [10, 11, 12]

    def test_remove_from_posting_list(self, object_store):
        with object_store.transaction() as txn:
            tree = self._tree(txn)
            tree.insert("k", 1, unique=False)
            tree.insert("k", 2, unique=False)
            assert tree.remove("k", 1)
            assert tree.lookup("k") == [2]
            assert tree.remove("k", 2)
            assert tree.lookup("k") == []
            assert not tree.remove("k", 2)  # already gone

    def test_remove_missing_key(self, object_store):
        with object_store.transaction() as txn:
            tree = self._tree(txn)
            assert not tree.remove("ghost", 1)

    def test_range_query_inclusive(self, object_store):
        with object_store.transaction() as txn:
            tree = self._tree(txn)
            for key in range(0, 100, 2):  # evens
                tree.insert(key, key, unique=True)
            assert [k for k, _ in tree.range(10, 20)] == [10, 12, 14, 16, 18, 20]
            assert [k for k, _ in tree.range(9, 21)] == [10, 12, 14, 16, 18, 20]
            assert [k for k, _ in tree.range(None, 4)] == [0, 2, 4]
            assert [k for k, _ in tree.range(96, None)] == [96, 98]
            assert list(tree.range(51, 51)) == []

    def test_range_across_leaf_boundaries(self, object_store):
        with object_store.transaction() as txn:
            tree = self._tree(txn)
            for key in range(300):
                tree.insert(key, key, unique=True)
            assert [k for k, _ in tree.range(90, 210)] == list(range(90, 211))

    def test_string_keys_sort_correctly(self, object_store):
        with object_store.transaction() as txn:
            tree = self._tree(txn)
            words = ["pear", "apple", "fig", "banana", "kiwi", "date"]
            for index, word in enumerate(words):
                tree.insert(word, index, unique=True)
            assert [k for k, _ in tree.scan()] == sorted(words)

    def test_destroy_removes_all_nodes(self, object_store):
        with object_store.transaction() as txn:
            tree = self._tree(txn)
            for key in range(100):
                tree.insert(key, key, unique=True)
            oids = tree._all_node_oids()
            assert len(oids) > 1
            tree.destroy()
            from repro.errors import ObjectNotFoundError

            for oid in oids:
                with pytest.raises(ObjectNotFoundError):
                    txn.open_readonly(oid)

    def test_persistence_across_restart_of_transaction(self, object_store):
        with object_store.transaction() as txn:
            tree = self._tree(txn)
            root = tree.root_oid
            for key in range(50):
                tree.insert(key, key * 2, unique=True)
        with object_store.transaction() as txn:
            tree = BTreeIndex(txn, root, self.ORDER)
            assert tree.lookup(25) == [50]
            assert len(list(tree.scan())) == 50
            txn.abort()

    @given(
        operations=st.lists(
            st.tuples(st.booleans(), st.integers(0, 30)), max_size=80
        )
    )
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
    )
    def test_property_matches_sorted_dict(self, object_store, operations):
        with object_store.transaction() as txn:
            tree = self._tree(txn)
            model = {}
            for is_insert, key in operations:
                if is_insert and key not in model:
                    tree.insert(key, key + 500, unique=True)
                    model[key] = key + 500
                elif not is_insert and key in model:
                    assert tree.remove(key, model.pop(key))
            assert list(tree.scan()) == sorted(model.items())
            txn.abort()


class TestHashIndex:
    def _table(self, txn, buckets=4):
        root = HashIndex.create(txn, buckets)
        return HashIndex(
            txn, root, initial_buckets=buckets, max_load=2.0, bucket_capacity=4
        )

    def test_insert_lookup(self, object_store):
        with object_store.transaction() as txn:
            table = self._table(txn)
            table.insert("alpha", 1, unique=True)
            table.insert("beta", 2, unique=True)
            assert table.lookup("alpha") == [1]
            assert table.lookup("gamma") == []

    def test_growth_by_splitting(self, object_store):
        with object_store.transaction() as txn:
            table = self._table(txn, buckets=2)
            for key in range(200):
                table.insert(key, key, unique=True)
            directory = txn.open_readonly(table.root_oid, HashDirectory).deref()
            assert len(directory.bucket_oids) > 2  # table grew
            for key in range(200):
                assert table.lookup(key) == [key]

    def test_load_factor_bounded_after_growth(self, object_store):
        with object_store.transaction() as txn:
            table = self._table(txn, buckets=2)
            for key in range(300):
                table.insert(key, key, unique=True)
            directory = txn.open_readonly(table.root_oid, HashDirectory).deref()
            load = directory.entry_count / len(directory.bucket_oids)
            assert load <= 2.0 + 0.01

    def test_duplicate_unique_rejected(self, object_store):
        with object_store.transaction() as txn:
            table = self._table(txn)
            table.insert(7, 70, unique=True)
            with pytest.raises(DuplicateKeyError):
                table.insert(7, 71, unique=True)

    def test_non_unique_entries(self, object_store):
        with object_store.transaction() as txn:
            table = self._table(txn)
            table.insert("k", 1, unique=False)
            table.insert("k", 2, unique=False)
            assert sorted(table.lookup("k")) == [1, 2]

    def test_remove(self, object_store):
        with object_store.transaction() as txn:
            table = self._table(txn)
            table.insert("x", 9, unique=True)
            assert table.remove("x", 9)
            assert table.lookup("x") == []
            assert not table.remove("x", 9)

    def test_remove_from_overflow_chain(self, object_store):
        with object_store.transaction() as txn:
            # bucket_capacity=4 with a single bucket: forces overflow.
            root = HashIndex.create(txn, 1)
            table = HashIndex(
                txn, root, initial_buckets=1, max_load=100.0, bucket_capacity=2
            )
            for key in range(10):
                table.insert(key, key, unique=True)
            for key in range(10):
                assert table.remove(key, key), key
            assert list(table.scan()) == []

    def test_scan_yields_everything(self, object_store):
        with object_store.transaction() as txn:
            table = self._table(txn)
            for key in range(100):
                table.insert(key, key * 3, unique=True)
            scanned = sorted(table.scan())
            assert scanned == [(key, key * 3) for key in range(100)]

    def test_destroy(self, object_store):
        with object_store.transaction() as txn:
            table = self._table(txn)
            for key in range(50):
                table.insert(key, key, unique=True)
            table.destroy()
            from repro.errors import ObjectNotFoundError

            with pytest.raises(ObjectNotFoundError):
                txn.open_readonly(table.root_oid)

    def test_persistence(self, object_store):
        with object_store.transaction() as txn:
            table = self._table(txn)
            root = table.root_oid
            for key in range(60):
                table.insert(key, key, unique=True)
        with object_store.transaction() as txn:
            table = HashIndex(txn, root, initial_buckets=4, max_load=2.0)
            for key in range(60):
                assert table.lookup(key) == [key]
            txn.abort()

    @given(keys=st.lists(st.integers(0, 1000), unique=True, max_size=60))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
    )
    def test_property_set_semantics(self, object_store, keys):
        with object_store.transaction() as txn:
            table = self._table(txn, buckets=2)
            for key in keys:
                table.insert(key, key, unique=True)
            assert sorted(key for key, _ in table.scan()) == sorted(keys)
            for key in keys:
                assert table.lookup(key) == [key]
            txn.abort()


class TestListIndex:
    def _list(self, txn, capacity=4):
        root = ListIndex.create(txn)
        return ListIndex(txn, root, node_capacity=capacity)

    def test_preserves_insertion_order(self, object_store):
        with object_store.transaction() as txn:
            lst = self._list(txn)
            for key in (5, 3, 9, 1):
                lst.insert(key, key * 10, unique=False)
            assert [key for key, _ in lst.scan()] == [5, 3, 9, 1]

    def test_spills_across_nodes(self, object_store):
        with object_store.transaction() as txn:
            lst = self._list(txn, capacity=3)
            for key in range(20):
                lst.insert(key, key, unique=False)
            assert [key for key, _ in lst.scan()] == list(range(20))

    def test_lookup_by_scan(self, object_store):
        with object_store.transaction() as txn:
            lst = self._list(txn)
            lst.insert("a", 1, unique=False)
            lst.insert("b", 2, unique=False)
            lst.insert("a", 3, unique=False)
            assert sorted(lst.lookup("a")) == [1, 3]

    def test_unique_enforced(self, object_store):
        with object_store.transaction() as txn:
            lst = self._list(txn)
            lst.insert("u", 1, unique=True)
            with pytest.raises(DuplicateKeyError):
                lst.insert("u", 2, unique=True)

    def test_remove(self, object_store):
        with object_store.transaction() as txn:
            lst = self._list(txn, capacity=2)
            for key in range(6):
                lst.insert(key, key, unique=False)
            assert lst.remove(3, 3)
            assert [key for key, _ in lst.scan()] == [0, 1, 2, 4, 5]
            assert not lst.remove(3, 3)

    def test_destroy(self, object_store):
        with object_store.transaction() as txn:
            lst = self._list(txn, capacity=2)
            for key in range(10):
                lst.insert(key, key, unique=False)
            lst.destroy()
            from repro.errors import ObjectNotFoundError

            with pytest.raises(ObjectNotFoundError):
                txn.open_readonly(lst.root_oid)

    def test_empty_scan(self, object_store):
        with object_store.transaction() as txn:
            lst = self._list(txn)
            assert list(lst.scan()) == []
            assert lst.lookup("missing") == []
