"""Self-healing: Merkle scrub, damage localization, repair, salvage.

The scrub walks the embedded Merkle tree and reports *every* damaged
chunk and map node instead of stopping at the first bad byte; the
repair engine uses that report plus a full+incremental backup chain to
re-materialize exactly the damaged state (falling back to a full
restore); salvage mode opens a damaged store read-only and serves
whatever still verifies.

The big sweep here is the robustness contract: corrupt every required
on-disk region family of a backed-up image and demand that
``RepairEngine.heal`` always converges to the byte-exact committed
state — and never escapes with a non-TDB exception.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.backupstore import BackupStore
from repro.chunkstore import ChunkStore
from repro.chunkstore.segments import segment_file_name
from repro.config import ChunkStoreConfig, SecurityProfile
from repro.errors import (
    RepairError,
    SalvageReadOnlyError,
    TDBError,
)
from repro.platform import (
    MemoryArchivalStore,
    MemoryOneWayCounter,
    MemorySecretStore,
)
from repro.repair import RepairEngine
from repro.testing import (
    REQUIRED_REGION_KINDS,
    FaultyUntrustedStore,
    TamperMatrix,
)

_SECRET = b"scrub-repair-secret-0123456789ab"

CONFIG = ChunkStoreConfig(
    segment_size=4096,
    initial_segments=3,
    checkpoint_residual_bytes=8192,
    map_fanout=8,
    fsync=True,
    security=SecurityProfile(),
)


@pytest.fixture(autouse=True)
def _engine(crypto_engine):
    """Run this whole suite under each crypto engine (native, reference).

    ``CONFIG`` above keeps ``kernel="auto"``: it resolves via the
    ``REPRO_CRYPTO_ENGINE`` variable at store-construction time, so even
    this import-time constant honours the fixture's engine.  Baselines
    cached across params get *verified* under both engines — the
    identical-image invariant in action.
    """


def _payload(tag: int, seq: int, size: int) -> bytes:
    pattern = bytes((tag * 31 + seq * 7 + i) % 256 for i in range(min(size, 48)))
    return (pattern * (size // len(pattern) + 1))[:size]


class Baseline:
    """A closed, fully-backed-up store image with a known final state."""

    def __init__(self):
        self.untrusted = FaultyUntrustedStore()
        self.secret = MemorySecretStore(_SECRET)
        self.counter = MemoryOneWayCounter()
        self.archival = MemoryArchivalStore()
        store = ChunkStore.format(self.untrusted, self.secret, self.counter, CONFIG)
        backups = BackupStore(self.archival, self.secret)

        self.expected = {}
        ids = [store.allocate_chunk_id() for _ in range(10)]
        for i, cid in enumerate(ids):
            self.expected[cid] = _payload(1, i, 200 + 30 * (i % 4))
        store.commit(dict(self.expected), durable=True)
        store.checkpoint(force=True)
        backups.create_full(store, "full-1")

        # Second wave: updates, fresh chunks, one deallocation — so the
        # incremental actually carries writes *and* removes.
        for i in (1, 4, 7):
            self.expected[ids[i]] = _payload(2, i, 260)
        new_ids = [store.allocate_chunk_id() for _ in range(3)]
        for i, cid in enumerate(new_ids):
            self.expected[cid] = _payload(3, i, 180)
        gone = ids[9]
        writes = {cid: self.expected[cid]
                  for cid in [ids[1], ids[4], ids[7], *new_ids]}
        store.commit(writes, deallocs=(gone,), durable=True)
        del self.expected[gone]
        store.checkpoint(force=True)
        backups.create_incremental(store, "incr-2")
        backups.close()

        self.tag_size = store.codec.tag_size
        store.close()
        self.counter_value = self.counter.read()
        self.image = self.untrusted.save_image()
        self.names = ["full-1", "incr-2"]

    # -- helpers -----------------------------------------------------------

    def fresh_store(self, image=None):
        """Open a throwaway store over (a copy of) an image."""
        untrusted = FaultyUntrustedStore()
        untrusted.load_image(image if image is not None else self.image)
        counter = MemoryOneWayCounter(self.counter_value)
        return ChunkStore.open(untrusted, self.secret, counter, CONFIG), untrusted

    def open_salvage(self, image):
        untrusted = FaultyUntrustedStore()
        untrusted.load_image(image)
        counter = MemoryOneWayCounter(self.counter_value)
        return ChunkStore.open_salvage(untrusted, self.secret, counter, CONFIG)

    def heal(self, image):
        untrusted = FaultyUntrustedStore()
        untrusted.load_image(image)
        counter = MemoryOneWayCounter(self.counter_value)
        engine = RepairEngine(BackupStore(self.archival, self.secret), self.names)
        result = engine.heal(untrusted, self.secret, counter, CONFIG)
        state = {cid: result.store.read(cid) for cid in result.store.chunk_ids()}
        result.store.close()
        return result, state

    def flip(self, image, segment, offset, mask=0x40):
        """Copy of ``image`` with one byte XORed inside a segment file."""
        name = segment_file_name(segment)
        mutated = dict(image)
        buf = bytearray(mutated[name])
        buf[offset] ^= mask
        mutated[name] = bytes(buf)
        return mutated

    def chunk_locator(self, chunk_id):
        store, _ = self.fresh_store()
        try:
            return store.location_map.lookup(chunk_id)
        finally:
            store.close()

    def leaf_node_locators(self):
        """{leaf index: locator} read from the checkpointed map root."""
        store, _ = self.fresh_store()
        try:
            lmap = store.location_map
            root = store.node_io.load_node(lmap.root_locator, lmap.depth - 1, 0)
            return dict(root.children), lmap.root_locator, lmap.fanout
        finally:
            store.close()


@lru_cache(maxsize=None)
def baseline() -> Baseline:
    return Baseline()


# ---------------------------------------------------------------------------
# Scrub / DamageReport
# ---------------------------------------------------------------------------


class TestScrub:
    def test_pristine_store_scrubs_clean(self):
        b = baseline()
        store, _ = b.fresh_store()
        report = store.scrub()
        store.close()
        assert report.clean
        assert report.verified_chunks == len(b.expected)
        assert report.verified_nodes > 0
        assert "clean" in report.summary()

    def test_scrub_localizes_one_damaged_payload(self):
        b = baseline()
        victim = sorted(b.expected)[2]
        loc = b.chunk_locator(victim)
        image = b.flip(b.image, loc.segment, loc.offset + loc.length // 2)
        store, _ = b.fresh_store(image)
        report = store.scrub()
        store.close()
        assert not report.clean and not report.root_lost
        assert [d.chunk_id for d in report.damaged_chunks] == [victim]
        (entry,) = report.damaged_chunks
        assert (entry.segment, entry.offset) == (loc.segment, loc.offset)
        assert "TamperDetectedError" in entry.error
        assert report.damaged_segments() == [loc.segment]
        # All other chunks still verified in the same pass.
        assert report.verified_chunks == len(b.expected) - 1

    def test_scrub_reports_every_damaged_chunk_not_just_first(self):
        b = baseline()
        victims = sorted(b.expected)[:3]
        image = b.image
        for cid in victims:
            loc = b.chunk_locator(cid)
            image = b.flip(image, loc.segment, loc.offset + loc.length // 2)
        store, _ = b.fresh_store(image)
        report = store.scrub()
        store.close()
        assert sorted(d.chunk_id for d in report.damaged_chunks) == victims

    def test_scrub_localizes_damaged_map_node_with_id_range(self):
        b = baseline()
        leaves, _, fanout = b.leaf_node_locators()
        slot, loc = sorted(leaves.items())[0]
        image = b.flip(b.image, loc.segment, loc.offset + loc.length // 2)
        store, _ = b.fresh_store(image)
        report = store.scrub()
        store.close()
        assert not report.clean and not report.root_lost
        assert not report.damaged_chunks  # damage recorded at the node, once
        (node,) = report.damaged_nodes
        assert node.level == 0
        assert (node.id_lo, node.id_hi) == (slot * fanout, (slot + 1) * fanout)
        assert report.suspect_id_ranges() == [(node.id_lo, node.id_hi)]

    def test_scrub_flags_lost_root(self):
        b = baseline()
        _, root_loc, _ = b.leaf_node_locators()
        image = b.flip(b.image, root_loc.segment,
                       root_loc.offset + root_loc.length // 2)
        store, _ = b.fresh_store(image)
        report = store.scrub()
        store.close()
        assert report.root_lost and not report.clean
        assert "map root lost" in report.summary()

    def test_normal_reads_still_fail_fast(self):
        """Scrub is additive: the lazy read path keeps raising."""
        b = baseline()
        victim = sorted(b.expected)[0]
        loc = b.chunk_locator(victim)
        image = b.flip(b.image, loc.segment, loc.offset + loc.length // 2)
        store, _ = b.fresh_store(image)
        with pytest.raises(TDBError):
            store.read(victim)
        store.close()


# ---------------------------------------------------------------------------
# RepairEngine
# ---------------------------------------------------------------------------


class TestRepairEngine:
    def test_requires_a_backup_chain(self):
        b = baseline()
        with pytest.raises(RepairError):
            RepairEngine(BackupStore(b.archival, b.secret), [])

    def test_clean_store_is_left_alone(self):
        b = baseline()
        result, state = b.heal(b.image)
        assert result.action == "clean"
        assert result.healthy
        assert state == b.expected

    def test_selective_repair_of_damaged_payload(self):
        b = baseline()
        victim = sorted(b.expected)[3]
        loc = b.chunk_locator(victim)
        image = b.flip(b.image, loc.segment, loc.offset + loc.length // 2)
        result, state = b.heal(image)
        assert result.action == "selective"
        assert result.healthy
        assert result.repaired_chunks == [victim]
        assert not result.lost_chunks
        assert state == b.expected

    def test_selective_repair_prunes_damaged_map_node(self):
        b = baseline()
        leaves, _, fanout = b.leaf_node_locators()
        slot, loc = sorted(leaves.items())[0]
        image = b.flip(b.image, loc.segment, loc.offset + loc.length // 2)
        result, state = b.heal(image)
        assert result.action == "selective"
        assert result.healthy
        assert result.pruned_ranges == [(slot * fanout, (slot + 1) * fanout)]
        covered = [cid for cid in b.expected
                   if slot * fanout <= cid < (slot + 1) * fanout]
        assert result.repaired_chunks == sorted(covered)
        assert state == b.expected

    def test_lost_root_escalates_to_full_restore(self):
        b = baseline()
        _, root_loc, _ = b.leaf_node_locators()
        image = b.flip(b.image, root_loc.segment,
                       root_loc.offset + root_loc.length // 2)
        result, state = b.heal(image)
        assert result.action == "full_restore"
        assert result.healthy
        assert state == b.expected

    def test_unopenable_store_escalates_to_full_restore(self):
        b = baseline()
        image = dict(b.image)
        for name in list(image):
            if name.startswith("master"):
                image[name] = b"\x00" * len(image[name])
        result, state = b.heal(image)
        assert result.action == "full_restore"
        assert result.open_error is not None
        assert result.healthy
        assert state == b.expected

    def test_chunk_newer_than_any_backup_is_reported_lost(self):
        b = baseline()
        # Extend the baseline image with one post-backup chunk.
        store, untrusted = b.fresh_store()
        late = store.allocate_chunk_id()
        store.commit({late: _payload(9, 0, 240)}, durable=True)
        store.checkpoint(force=True)
        counter_after = store.counter.read()
        loc = store.location_map.lookup(late)
        store.close()
        image = untrusted.save_image()
        image = b.flip(image, loc.segment, loc.offset + loc.length // 2)

        untrusted2 = FaultyUntrustedStore()
        untrusted2.load_image(image)
        # The extended run advanced the counter past the baseline value.
        counter2 = MemoryOneWayCounter(counter_after)
        engine = RepairEngine(BackupStore(b.archival, b.secret), b.names)
        result = engine.heal(untrusted2, b.secret, counter2, CONFIG)
        state = {cid: result.store.read(cid) for cid in result.store.chunk_ids()}
        result.store.close()
        assert result.healthy
        assert late in result.lost_chunks
        assert late not in state
        assert state == b.expected


# ---------------------------------------------------------------------------
# The repair sweep: every required region family, byte-exact convergence
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def _sweep_results(kind: str):
    b = baseline()
    matrix = TamperMatrix(b.image, b.tag_size, offsets_per_region=2)
    matrix.regions = [r for r in matrix.regions if r.kind == kind]
    assert matrix.regions, f"baseline image has no {kind} regions"
    results = []
    for mutation in matrix.mutations():
        result, state = b.heal(mutation.apply(b.image))
        results.append((mutation, result, state))
    return results


@pytest.mark.parametrize("kind", sorted(REQUIRED_REGION_KINDS))
def test_repair_sweep_converges_for_region_kind(kind):
    """Corrupt every region of this family: heal() must return a healthy
    store whose contents are byte-identical to the committed state, and
    must never leak a non-TDB exception (that would fail the sweep loop
    itself)."""
    b = baseline()
    bad = []
    for mutation, result, state in _sweep_results(kind):
        if not result.healthy or state != b.expected:
            bad.append(f"{mutation.describe()}: action={result.action}")
    assert not bad, "\n".join(bad[:10])


def test_repair_sweep_exercises_both_repair_rungs():
    """Across the sweep both the cheap and the catastrophic rung fire:
    payload damage heals selectively, root-node damage forces full
    restores.  (Single-master damage heals *clean* — the redundant
    master slot absorbs it before repair is even needed.)"""
    actions = {
        kind: {r.action for _, r, _ in _sweep_results(kind)}
        for kind in sorted(REQUIRED_REGION_KINDS)
    }
    assert "selective" in actions["chunk-payload"], actions
    assert "full_restore" in actions["map-node"], actions
    assert actions["master"] == {"clean"}, actions


# ---------------------------------------------------------------------------
# Salvage mode
# ---------------------------------------------------------------------------


class TestSalvage:
    def test_salvage_serves_surviving_chunks_readonly(self):
        b = baseline()
        victim = sorted(b.expected)[5]
        loc = b.chunk_locator(victim)
        image = b.flip(b.image, loc.segment, loc.offset + loc.length // 2)
        store = b.open_salvage(image)
        assert store.salvage
        for cid, payload in b.expected.items():
            if cid == victim:
                with pytest.raises(TDBError):
                    store.read(cid)
            else:
                assert store.read(cid) == payload
        with pytest.raises(SalvageReadOnlyError):
            store.commit({victim: b"new"}, durable=True)
        with pytest.raises(SalvageReadOnlyError):
            store.allocate_chunk_id()
        with pytest.raises(SalvageReadOnlyError):
            store.checkpoint(force=True)
        store.close()

    def test_salvage_export_collects_exactly_the_survivors(self):
        b = baseline()
        victim = sorted(b.expected)[5]
        loc = b.chunk_locator(victim)
        image = b.flip(b.image, loc.segment, loc.offset + loc.length // 2)
        store = b.open_salvage(image)
        report, payloads = store.export_surviving()
        store.close()
        assert [d.chunk_id for d in report.damaged_chunks] == [victim]
        survivors = {cid: p for cid, p in b.expected.items() if cid != victim}
        assert payloads == survivors

    def test_salvage_never_mutates_the_media(self):
        b = baseline()
        victim = sorted(b.expected)[1]
        loc = b.chunk_locator(victim)
        image = b.flip(b.image, loc.segment, loc.offset + loc.length // 2)
        untrusted = FaultyUntrustedStore()
        untrusted.load_image(image)
        before = untrusted.save_image()
        counter = MemoryOneWayCounter(b.counter_value)
        store = ChunkStore.open_salvage(untrusted, b.secret, counter, CONFIG)
        store.scrub()
        store.close()
        assert untrusted.save_image() == before
        assert counter.read() == b.counter_value  # no counter churn either

    def test_salvage_reports_replay_skew(self):
        """Opening a rolled-back image in salvage mode does not raise —
        the skew is surfaced in salvage_info for the operator."""
        b = baseline()
        # The baseline image was written against counter_value; a counter
        # far ahead of it is exactly what a replayed (old) image looks like.
        untrusted = FaultyUntrustedStore()
        untrusted.load_image(b.image)
        counter = MemoryOneWayCounter(b.counter_value + 5)
        store = ChunkStore.open_salvage(untrusted, b.secret, counter, CONFIG)
        info = store.salvage_info
        assert info is not None
        assert info.counter_skew != 0
        assert info.replay_suspected
        assert info.degraded
        # The data itself still verifies: it is old, not corrupt.
        assert store.scrub().clean
        store.close()


# ---------------------------------------------------------------------------
# Database facade
# ---------------------------------------------------------------------------


class TestDatabaseSalvage:
    def _make_db(self, tmp_path):
        from repro import Database

        db = Database.create(str(tmp_path / "db"))
        cs = db.chunk_store
        ids = [cs.allocate_chunk_id() for _ in range(6)]
        expected = {cid: _payload(5, i, 300) for i, cid in enumerate(ids)}
        cs.commit(dict(expected), durable=True)
        cs.checkpoint(force=True)
        tag_size = cs.codec.tag_size
        locs = {cid: cs.location_map.lookup(cid) for cid in ids}
        db.close()
        return expected, locs, tag_size

    def test_open_existing_salvage_on_damaged_directory(self, tmp_path):
        from repro import Database

        expected, locs, _ = self._make_db(tmp_path)
        victim = sorted(expected)[0]
        loc = locs[victim]
        seg_path = tmp_path / "db" / "data" / segment_file_name(loc.segment)
        data = bytearray(seg_path.read_bytes())
        data[loc.offset + loc.length // 2] ^= 0x40
        seg_path.write_bytes(bytes(data))

        db = Database.open_existing(str(tmp_path / "db"), salvage=True)
        assert db.salvage
        report, payloads = db.export_surviving()
        assert [d.chunk_id for d in report.damaged_chunks] == [victim]
        # Everything but the victim survives (the image also carries the
        # object-store catalog chunk the facade created).
        survivors = {c: p for c, p in expected.items() if c != victim}
        assert survivors.items() <= payloads.items()
        assert victim not in payloads
        db.close()

    def test_salvage_then_repair_round_trip(self, tmp_path):
        """The documented operator path: diagnose read-only, then heal."""
        from repro import Database

        db = Database.create(str(tmp_path / "db"))
        cs = db.chunk_store
        ids = [cs.allocate_chunk_id() for _ in range(6)]
        expected = {cid: _payload(6, i, 280) for i, cid in enumerate(ids)}
        cs.commit(dict(expected), durable=True)
        cs.checkpoint(force=True)
        backups = db.backup_store()
        backups.create_full(cs, "full-1")
        victim = sorted(expected)[2]
        loc = cs.location_map.lookup(victim)
        db.close()

        seg_path = tmp_path / "db" / "data" / segment_file_name(loc.segment)
        data = bytearray(seg_path.read_bytes())
        data[loc.offset + loc.length // 2] ^= 0x40
        seg_path.write_bytes(bytes(data))

        # Diagnose without touching the media...
        db = Database.open_existing(str(tmp_path / "db"), salvage=True)
        report = db.scrub()
        assert [d.chunk_id for d in report.damaged_chunks] == [victim]
        db.close()

        # ...then heal in place and reopen normally.
        from repro.platform import (
            FileArchivalStore,
            FileOneWayCounter,
            FileSecretStore,
            FileUntrustedStore,
        )

        base = str(tmp_path / "db")
        untrusted = FileUntrustedStore(base + "/data")
        secret = FileSecretStore(base + "/secret.key")
        counter = FileOneWayCounter(base + "/counter")
        archival = FileArchivalStore(base + "/archive")
        engine = RepairEngine(BackupStore(archival, secret), ["full-1"])
        result = engine.heal(untrusted, secret, counter)
        assert result.action == "selective"
        assert result.repaired_chunks == [victim]
        result.store.close()

        db = Database.open_existing(str(tmp_path / "db"))
        assert not db.salvage
        for cid, payload in expected.items():
            assert db.chunk_store.read(cid) == payload
        db.close()
