"""Tests for the object store: typed objects, transactions, locking, cache."""

from __future__ import annotations

import threading

import pytest

from repro.chunkstore import ChunkStore
from repro.config import ChunkStoreConfig, ObjectStoreConfig
from repro.errors import (
    LockTimeoutError,
    ObjectNotFoundError,
    PicklingError,
    ReadOnlyViolationError,
    StaleRefError,
    TransactionInactiveError,
    TypeCheckError,
    UnknownClassError,
)
from repro.objectstore import (
    BufferReader,
    BufferWriter,
    ClassRegistry,
    ObjectStore,
    Persistent,
)
from repro.objectstore.locks import LockManager, LockMode
from repro.platform import (
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)

SECRET = b"0123456789abcdef0123456789abcdef"


class Meter(Persistent):
    """Sample persistent class used throughout (mirrors the paper's Meter)."""

    class_id = "test.meter"

    def __init__(self, meter_id=0, view_count=0, print_count=0):
        self.meter_id = meter_id
        self.view_count = view_count
        self.print_count = print_count

    def pickle(self) -> bytes:
        return (
            BufferWriter()
            .write_int(self.meter_id)
            .write_int(self.view_count)
            .write_int(self.print_count)
            .getvalue()
        )

    @classmethod
    def unpickle(cls, data: bytes) -> "Meter":
        reader = BufferReader(data)
        obj = cls(reader.read_int(), reader.read_int(), reader.read_int())
        reader.expect_end()
        return obj


class Profile(Persistent):
    """Holds object-id references to Meter objects."""

    class_id = "test.profile"

    def __init__(self, meter_oids=None):
        self.meter_oids = list(meter_oids or [])

    def pickle(self) -> bytes:
        return BufferWriter().write_uint_list(self.meter_oids).getvalue()

    @classmethod
    def unpickle(cls, data: bytes) -> "Profile":
        reader = BufferReader(data)
        obj = cls(reader.read_uint_list())
        reader.expect_end()
        return obj


class Unregistered(Persistent):
    class_id = "test.unregistered"

    def pickle(self) -> bytes:
        return b""


def build_store(locking=True, lock_timeout=0.15):
    untrusted = MemoryUntrustedStore()
    secret = MemorySecretStore(SECRET)
    counter = MemoryOneWayCounter()
    config = ChunkStoreConfig(
        segment_size=8 * 1024,
        initial_segments=4,
        checkpoint_residual_bytes=16 * 1024,
        map_fanout=8,
    )
    chunk_store = ChunkStore.format(untrusted, secret, counter, config)
    registry = ClassRegistry()
    registry.register(Meter)
    registry.register(Profile)
    store = ObjectStore.create(
        chunk_store,
        ObjectStoreConfig(
            cache_bytes=256 * 1024, locking=locking, lock_timeout=lock_timeout
        ),
        registry,
    )
    return store, untrusted, secret, counter, config, registry


def reattach(untrusted, secret, counter, config, registry):
    chunk_store = ChunkStore.open(untrusted, secret, counter, config)
    return ObjectStore.attach(chunk_store, registry=registry)


class TestEncoding:
    def test_all_primitives_roundtrip(self):
        writer = (
            BufferWriter()
            .write_int(-5)
            .write_uint(2**63)
            .write_bool(True)
            .write_float(3.25)
            .write_bytes(b"\x00\xff")
            .write_str("héllo")
            .write_optional_uint(None)
            .write_optional_uint(7)
            .write_uint_list([1, 2, 3])
        )
        reader = BufferReader(writer.getvalue())
        assert reader.read_int() == -5
        assert reader.read_uint() == 2**63
        assert reader.read_bool() is True
        assert reader.read_float() == 3.25
        assert reader.read_bytes() == b"\x00\xff"
        assert reader.read_str() == "héllo"
        assert reader.read_optional_uint() is None
        assert reader.read_optional_uint() == 7
        assert reader.read_uint_list() == [1, 2, 3]
        reader.expect_end()

    def test_truncated_read_raises(self):
        with pytest.raises(PicklingError):
            BufferReader(b"\x00\x00").read_int()

    def test_expect_end_catches_drift(self):
        data = BufferWriter().write_int(1).write_int(2).getvalue()
        reader = BufferReader(data)
        reader.read_int()
        with pytest.raises(PicklingError):
            reader.expect_end()

    def test_out_of_range_int_rejected(self):
        with pytest.raises(PicklingError):
            BufferWriter().write_int(2**63)

    def test_invalid_bool_byte_rejected(self):
        with pytest.raises(PicklingError):
            BufferReader(b"\x02").read_bool()


class TestRegistry:
    def test_duplicate_class_id_rejected(self):
        registry = ClassRegistry()
        registry.register(Meter)

        class Impostor(Persistent):
            class_id = "test.meter"

        with pytest.raises(PicklingError):
            registry.register(Impostor)

    def test_reregistering_same_class_is_idempotent(self):
        registry = ClassRegistry()
        registry.register(Meter)
        registry.register(Meter)

    def test_empty_class_id_rejected(self):
        registry = ClassRegistry()

        class Nameless(Persistent):
            class_id = ""

        with pytest.raises(PicklingError):
            registry.register(Nameless)

    def test_unknown_class_id_on_unpickle(self):
        registry = ClassRegistry()
        registry.register(Meter)
        payload = registry.pickle_object(Meter(1))
        with pytest.raises(UnknownClassError):
            ClassRegistry().unpickle_object(payload)

    def test_pickle_unregistered_rejected(self):
        registry = ClassRegistry()
        with pytest.raises(PicklingError):
            registry.pickle_object(Unregistered())

    def test_object_roundtrip_via_registry(self):
        registry = ClassRegistry()
        registry.register(Meter)
        original = Meter(3, 10, 20)
        clone = registry.unpickle_object(registry.pickle_object(original))
        assert (clone.meter_id, clone.view_count, clone.print_count) == (3, 10, 20)


class TestTransactionBasics:
    def test_insert_and_read_across_transactions(self):
        store, *_ = build_store()
        with store.transaction() as txn:
            oid = txn.insert(Meter(7, view_count=2))
        with store.transaction() as txn:
            ref = txn.open_readonly(oid)
            assert ref.meter_id == 7
            assert ref.view_count == 2
            txn.abort()

    def test_write_through_writable_ref(self):
        store, *_ = build_store()
        with store.transaction() as txn:
            oid = txn.insert(Meter())
        with store.transaction() as txn:
            ref = txn.open_writable(oid)
            ref.view_count += 1
            ref.view_count += 1
        with store.transaction() as txn:
            assert txn.open_readonly(oid).view_count == 2
            txn.abort()

    def test_object_ids_can_reference_objects(self):
        store, *_ = build_store()
        with store.transaction() as txn:
            meter_oid = txn.insert(Meter(1))
            profile_oid = txn.insert(Profile([meter_oid]))
            txn.set_root(profile_oid)
        with store.transaction() as txn:
            profile = txn.open_readonly(txn.get_root(), Profile)
            meter = txn.open_readonly(profile.meter_oids[0], Meter)
            assert meter.meter_id == 1
            txn.abort()

    def test_remove_frees_object(self):
        store, *_ = build_store()
        with store.transaction() as txn:
            oid = txn.insert(Meter())
        with store.transaction() as txn:
            txn.remove(oid)
        with store.transaction() as txn:
            with pytest.raises(ObjectNotFoundError):
                txn.open_readonly(oid)
            txn.abort()

    def test_remove_then_open_same_transaction(self):
        store, *_ = build_store()
        with store.transaction() as txn:
            oid = txn.insert(Meter())
        txn = store.transaction()
        txn.remove(oid)
        with pytest.raises(ObjectNotFoundError):
            txn.open_readonly(oid)
        txn.abort()

    def test_insert_and_remove_same_transaction_cancels(self):
        store, *_ = build_store()
        txn = store.transaction()
        oid = txn.insert(Meter())
        txn.remove(oid)
        txn.commit()
        with store.transaction() as check:
            with pytest.raises(ObjectNotFoundError):
                check.open_readonly(oid)
            check.abort()

    def test_open_missing_object(self):
        store, *_ = build_store()
        with store.transaction() as txn:
            with pytest.raises(ObjectNotFoundError):
                txn.open_readonly(987654)
            txn.abort()

    def test_insert_non_persistent_rejected(self):
        store, *_ = build_store()
        txn = store.transaction()
        with pytest.raises(TypeCheckError):
            txn.insert("not an object")
        txn.abort()

    def test_insert_unregistered_class_rejected(self):
        store, *_ = build_store()
        txn = store.transaction()
        with pytest.raises(UnknownClassError):
            txn.insert(Unregistered())
        txn.abort()

    def test_transaction_sees_its_own_insert(self):
        store, *_ = build_store()
        with store.transaction() as txn:
            oid = txn.insert(Meter(5))
            ref = txn.open_readonly(oid)
            assert ref.meter_id == 5


class TestAbortAndDurability:
    def test_abort_rolls_back_writes(self):
        store, *_ = build_store()
        with store.transaction() as txn:
            oid = txn.insert(Meter(view_count=1))
        txn = store.transaction()
        ref = txn.open_writable(oid)
        ref.view_count = 99
        txn.abort()
        with store.transaction() as check:
            assert check.open_readonly(oid).view_count == 1
            check.abort()

    def test_abort_rolls_back_inserts(self):
        store, *_ = build_store()
        txn = store.transaction()
        oid = txn.insert(Meter())
        txn.abort()
        with store.transaction() as check:
            with pytest.raises(ObjectNotFoundError):
                check.open_readonly(oid)
            check.abort()

    def test_abort_rolls_back_removes(self):
        store, *_ = build_store()
        with store.transaction() as txn:
            oid = txn.insert(Meter(8))
        txn = store.transaction()
        txn.remove(oid)
        txn.abort()
        with store.transaction() as check:
            assert check.open_readonly(oid).meter_id == 8
            check.abort()

    def test_exception_in_context_manager_aborts(self):
        store, *_ = build_store()
        with store.transaction() as txn:
            oid = txn.insert(Meter(view_count=5))
        with pytest.raises(RuntimeError):
            with store.transaction() as txn:
                ref = txn.open_writable(oid)
                ref.view_count = 0
                raise RuntimeError("application bug")
        with store.transaction() as check:
            assert check.open_readonly(oid).view_count == 5
            check.abort()

    def test_commit_twice_rejected(self):
        store, *_ = build_store()
        txn = store.transaction()
        txn.insert(Meter())
        txn.commit()
        with pytest.raises(TransactionInactiveError):
            txn.commit()

    def test_operations_after_commit_rejected(self):
        store, *_ = build_store()
        txn = store.transaction()
        oid = txn.insert(Meter())
        txn.commit()
        with pytest.raises(TransactionInactiveError):
            txn.open_readonly(oid)

    def test_durable_state_survives_crash(self):
        store, untrusted, secret, counter, config, registry = build_store()
        with store.transaction() as txn:
            oid = txn.insert(Meter(view_count=3))
            txn.set_root(oid)
        # Crash: reopen from the untrusted store without closing.
        recovered = reattach(untrusted, secret, counter, config, registry)
        with recovered.transaction() as txn:
            assert txn.open_readonly(txn.get_root()).view_count == 3
            txn.abort()

    def test_nondurable_commit_lost_on_crash(self):
        store, untrusted, secret, counter, config, registry = build_store()
        with store.transaction() as txn:
            oid = txn.insert(Meter(view_count=1))
            txn.set_root(oid)
        txn = store.transaction()
        ref = txn.open_writable(oid)
        ref.view_count = 50
        txn.commit(durable=False)
        recovered = reattach(untrusted, secret, counter, config, registry)
        with recovered.transaction() as txn:
            assert txn.open_readonly(txn.get_root()).view_count == 1
            txn.abort()


class TestRefs:
    def test_stale_ref_rejected(self):
        store, *_ = build_store()
        with store.transaction() as txn:
            oid = txn.insert(Meter(2))
            ref = txn.open_readonly(oid)
        with pytest.raises(StaleRefError):
            _ = ref.meter_id

    def test_stale_ref_after_abort(self):
        store, *_ = build_store()
        with store.transaction() as txn:
            oid = txn.insert(Meter())
        txn = store.transaction()
        ref = txn.open_readonly(oid)
        txn.abort()
        with pytest.raises(StaleRefError):
            ref.deref()

    def test_readonly_ref_blocks_mutation(self):
        store, *_ = build_store()
        with store.transaction() as txn:
            oid = txn.insert(Meter())
        with store.transaction() as txn:
            ref = txn.open_readonly(oid)
            with pytest.raises(ReadOnlyViolationError):
                ref.view_count = 7
            with pytest.raises(ReadOnlyViolationError):
                del ref.view_count
            txn.abort()

    def test_type_check_on_open(self):
        store, *_ = build_store()
        with store.transaction() as txn:
            oid = txn.insert(Meter())
        with store.transaction() as txn:
            with pytest.raises(TypeCheckError):
                txn.open_readonly(oid, Profile)
            ref = txn.open_readonly(oid, Meter)  # exact type passes
            ref2 = txn.open_readonly(oid, Persistent)  # supertype passes
            assert ref.oid == ref2.oid
            txn.abort()

    def test_ref_oid_accessible_after_close(self):
        store, *_ = build_store()
        with store.transaction() as txn:
            oid = txn.insert(Meter())
            ref = txn.open_readonly(oid)
        assert ref.oid == oid  # metadata stays; data access raises
        assert not ref.valid

    def test_ref_equality_within_transaction(self):
        store, *_ = build_store()
        with store.transaction() as txn:
            oid = txn.insert(Meter())
            a = txn.open_readonly(oid)
            b = txn.open_readonly(oid)
            assert a == b
            assert hash(a) == hash(b)


class TestCatalog:
    def test_root_registration(self):
        store, *_ = build_store()
        with store.transaction() as txn:
            assert txn.get_root() is None
            oid = txn.insert(Meter())
            txn.set_root(oid)
        with store.transaction() as txn:
            assert txn.get_root() == oid
            txn.abort()

    def test_name_bindings(self):
        store, *_ = build_store()
        with store.transaction() as txn:
            oid = txn.insert(Meter())
            txn.bind_name("meters", oid)
        with store.transaction() as txn:
            assert txn.lookup_name("meters") == oid
            assert txn.lookup_name("absent") is None
            txn.unbind_name("meters")
        with store.transaction() as txn:
            assert txn.lookup_name("meters") is None
            txn.abort()

    def test_unbind_missing_raises(self):
        store, *_ = build_store()
        txn = store.transaction()
        with pytest.raises(KeyError):
            txn.unbind_name("ghost")
        txn.abort()

    def test_catalog_survives_restart(self):
        store, untrusted, secret, counter, config, registry = build_store()
        with store.transaction() as txn:
            oid = txn.insert(Meter())
            txn.set_root(oid)
            txn.bind_name("primary", oid)
        store.close()
        recovered = reattach(untrusted, secret, counter, config, registry)
        with recovered.transaction() as txn:
            assert txn.get_root() == oid
            assert txn.lookup_name("primary") == oid
            txn.abort()


class TestLockManager:
    def test_shared_locks_coexist(self):
        locks = LockManager(timeout=0.1)
        locks.acquire(1, 10, LockMode.SHARED)
        locks.acquire(2, 10, LockMode.SHARED)
        assert locks.holds(1, 10, LockMode.SHARED)
        assert locks.holds(2, 10, LockMode.SHARED)

    def test_exclusive_blocks_shared(self):
        locks = LockManager(timeout=0.1)
        locks.acquire(1, 10, LockMode.EXCLUSIVE)
        with pytest.raises(LockTimeoutError):
            locks.acquire(2, 10, LockMode.SHARED)

    def test_shared_blocks_exclusive(self):
        locks = LockManager(timeout=0.1)
        locks.acquire(1, 10, LockMode.SHARED)
        with pytest.raises(LockTimeoutError):
            locks.acquire(2, 10, LockMode.EXCLUSIVE)

    def test_upgrade_when_sole_sharer(self):
        locks = LockManager(timeout=0.1)
        locks.acquire(1, 10, LockMode.SHARED)
        locks.acquire(1, 10, LockMode.EXCLUSIVE)
        assert locks.holds(1, 10, LockMode.EXCLUSIVE)

    def test_release_all_wakes_waiters(self):
        locks = LockManager(timeout=2.0)
        locks.acquire(1, 10, LockMode.EXCLUSIVE)
        acquired = threading.Event()

        def contender():
            locks.acquire(2, 10, LockMode.EXCLUSIVE)
            acquired.set()

        thread = threading.Thread(target=contender)
        thread.start()
        locks.release_all(1)
        thread.join(timeout=2)
        assert acquired.is_set()

    def test_reacquire_same_mode_idempotent(self):
        locks = LockManager(timeout=0.1)
        locks.acquire(1, 10, LockMode.SHARED)
        locks.acquire(1, 10, LockMode.SHARED)
        locks.release_all(1)
        locks.acquire(2, 10, LockMode.EXCLUSIVE)

    def test_disabled_manager_grants_everything(self):
        locks = LockManager(enabled=False, timeout=0.1)
        locks.acquire(1, 10, LockMode.EXCLUSIVE)
        locks.acquire(2, 10, LockMode.EXCLUSIVE)


class TestConcurrency:
    def test_writer_blocks_reader_until_commit(self):
        store, *_ = build_store(lock_timeout=2.0)
        with store.transaction() as txn:
            oid = txn.insert(Meter(view_count=0))
        writer = store.transaction()
        ref = writer.open_writable(oid)
        ref.view_count = 10
        observed = []

        def reader():
            with store.transaction() as txn:
                observed.append(txn.open_readonly(oid).view_count)
                txn.abort()

        thread = threading.Thread(target=reader)
        thread.start()
        writer.commit()
        thread.join(timeout=3)
        assert observed == [10]  # reader waited and saw committed state

    def test_deadlock_broken_by_timeout(self):
        store, *_ = build_store(lock_timeout=0.15)
        with store.transaction() as txn:
            a = txn.insert(Meter(1))
            b = txn.insert(Meter(2))
        txn1 = store.transaction()
        txn2 = store.transaction()
        txn1.open_writable(a)
        txn2.open_writable(b)
        errors = []

        def cross(txn, oid):
            try:
                txn.open_writable(oid)
            except LockTimeoutError as exc:
                errors.append(exc)

        t1 = threading.Thread(target=cross, args=(txn1, b))
        t2 = threading.Thread(target=cross, args=(txn2, a))
        t1.start()
        t2.start()
        t1.join(timeout=3)
        t2.join(timeout=3)
        assert errors  # at least one side timed out, breaking the deadlock
        txn1.abort()
        txn2.abort()

    def test_concurrent_increments_are_serialized(self):
        store, *_ = build_store(lock_timeout=5.0)
        with store.transaction() as txn:
            oid = txn.insert(Meter(view_count=0))

        def bump():
            for _ in range(10):
                with store.transaction() as txn:
                    ref = txn.open_writable(oid)
                    ref.view_count += 1

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=20)
        with store.transaction() as txn:
            assert txn.open_readonly(oid).view_count == 40
            txn.abort()

    def test_locking_disabled_mode(self):
        store, *_ = build_store(locking=False)
        with store.transaction() as txn:
            oid = txn.insert(Meter())
        txn1 = store.transaction()
        txn2 = store.transaction()
        txn1.open_writable(oid)
        txn2.open_writable(oid)  # no locks, no blocking
        txn1.abort()
        txn2.abort()


class TestCacheIntegration:
    def test_cache_hit_returns_same_instance(self):
        store, *_ = build_store()
        with store.transaction() as txn:
            oid = txn.insert(Meter(4))
        with store.transaction() as txn:
            first = txn.open_readonly(oid).deref()
            txn.abort()
        with store.transaction() as txn:
            second = txn.open_readonly(oid).deref()
            txn.abort()
        assert first is second

    def test_eviction_forces_reload(self):
        store, *_ = build_store()
        with store.transaction() as txn:
            oid = txn.insert(Meter(11))
        store.cache.remove("obj", oid)
        with store.transaction() as txn:
            assert txn.open_readonly(oid).meter_id == 11
            txn.abort()

    def test_dirty_objects_pinned_no_steal(self):
        store, *_ = build_store()
        txn = store.transaction()
        oid = txn.insert(Meter())
        assert store.cache.pin_count("obj", oid) == 1
        txn.commit()
        assert store.cache.pin_count("obj", oid) == 0

    def test_many_objects_under_small_cache(self):
        # Force evictions: objects must reload transparently.
        store, *_ = build_store()
        store.cache.budget_bytes = 4096
        oids = []
        for index in range(100):
            with store.transaction() as txn:
                oids.append(txn.insert(Meter(index)))
        for index, oid in enumerate(oids):
            with store.transaction() as txn:
                assert txn.open_readonly(oid).meter_id == index
                txn.abort()
