"""Stateful property-based testing (hypothesis RuleBasedStateMachine).

Two machines drive long random operation sequences against a reference
model:

* :class:`ChunkStoreMachine` — writes/overwrites/deallocates chunks with
  mixed durability, interleaved with checkpoints, explicit cleaner
  passes, snapshots, and full crash-recovery cycles, asserting the store
  always equals the model dictionary,
* :class:`CollectionMachine` — inserts/updates/deletes objects through
  iterators against a dict model, asserting every index agrees after
  each step.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.chunkstore import ChunkStore
from repro.collectionstore import CollectionStore, Indexer
from repro.config import (
    ChunkStoreConfig,
    CollectionStoreConfig,
    ObjectStoreConfig,
    SecurityProfile,
)
from repro.objectstore import (
    BufferReader,
    BufferWriter,
    ClassRegistry,
    ObjectStore,
    Persistent,
)
from repro.platform import (
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)

SECRET = b"stateful-testing-secret-01234567"


class ChunkStoreMachine(RuleBasedStateMachine):
    """The chunk store must always behave like a dict of bytes."""

    chunk_handles = Bundle("chunk_handles")

    @initialize()
    def setup(self):
        self.untrusted = MemoryUntrustedStore()
        self.counter = MemoryOneWayCounter()
        self.secret = MemorySecretStore(SECRET)
        self.config = ChunkStoreConfig(
            segment_size=4 * 1024,
            initial_segments=3,
            checkpoint_residual_bytes=8 * 1024,
            map_fanout=8,
            security=SecurityProfile(),
        )
        self.store = ChunkStore.format(
            self.untrusted, self.secret, self.counter, self.config
        )
        self.model = {}
        self.pending_nondurable = {}

    def _commit(self, writes, deallocs, durable):
        stats_before = self.store.stats()
        self.store.commit(writes, deallocs, durable=durable)
        stats_after = self.store.stats()
        staged = dict(writes)
        for chunk_id in deallocs:
            staged[chunk_id] = None
        # A nondurable commit becomes durable the moment any durable event
        # lands after it in the log: an auto-checkpoint or a (durable)
        # cleaner relocation commit triggered by the space policy.
        barrier = durable or (
            stats_after.checkpoints_total > stats_before.checkpoints_total
            or stats_after.durable_commits_total > stats_before.durable_commits_total
        )
        if barrier:
            self._apply(self.pending_nondurable)
            self.pending_nondurable = {}
            self._apply(staged)
        else:
            self.pending_nondurable.update(staged)

    def _barrier(self):
        """A checkpoint just happened: staged nondurables are durable now."""
        self._apply(self.pending_nondurable)
        self.pending_nondurable = {}

    def _apply(self, staged):
        for chunk_id, value in staged.items():
            if value is None:
                self.model.pop(chunk_id, None)
            else:
                self.model[chunk_id] = value

    @rule(target=chunk_handles, data=st.binary(max_size=120), durable=st.booleans())
    def write_new(self, data, durable):
        chunk_id = self.store.allocate_chunk_id()
        self._commit({chunk_id: data}, [], durable)
        return chunk_id

    @rule(chunk_id=chunk_handles, data=st.binary(max_size=200), durable=st.booleans())
    def overwrite(self, chunk_id, data, durable):
        if self._live(chunk_id):
            self._commit({chunk_id: data}, [], durable)

    @rule(chunk_id=chunk_handles, durable=st.booleans())
    def deallocate(self, chunk_id, durable):
        if self._live(chunk_id):
            self._commit({}, [chunk_id], durable)

    def _live(self, chunk_id):
        if chunk_id in self.pending_nondurable:
            return self.pending_nondurable[chunk_id] is not None
        return chunk_id in self.model

    @rule()
    def checkpoint(self):
        self.store.checkpoint()
        self._barrier()

    @rule()
    def clean(self):
        before = self.store.stats()
        self.store.clean()
        after = self.store.stats()
        if (
            after.durable_commits_total > before.durable_commits_total
            or after.checkpoints_total > before.checkpoints_total
        ):
            self._barrier()

    @rule()
    def snapshot_roundtrip(self):
        with self.store.snapshot() as snap:
            self._barrier()  # snapshot() checkpoints first
            current = self._visible()
            assert set(snap.chunk_ids()) == set(current)
            for chunk_id, value in current.items():
                assert snap.read(chunk_id) == value

    @rule()
    def crash_and_recover(self):
        # Reopen from the raw files: nondurable staging is legally lost.
        self.pending_nondurable = {}
        self.store = ChunkStore.open(
            self.untrusted, self.secret, self.counter, self.config
        )

    def _visible(self):
        merged = dict(self.model)
        for chunk_id, value in self.pending_nondurable.items():
            if value is None:
                merged.pop(chunk_id, None)
            else:
                merged[chunk_id] = value
        return merged

    @invariant()
    def store_matches_model(self):
        if not hasattr(self, "store"):
            return
        visible = self._visible()
        assert set(self.store.chunk_ids()) == set(visible)
        for chunk_id, value in visible.items():
            assert self.store.read(chunk_id) == value

    @invariant()
    def accounting_is_sane(self):
        if not hasattr(self, "store"):
            return
        stats = self.store.stats()
        assert stats.live_bytes >= 0
        assert stats.capacity_bytes >= stats.live_bytes
        assert 0.0 <= stats.utilization <= 1.01

    def teardown(self):
        if hasattr(self, "store"):
            self.store.close()


class Item(Persistent):
    class_id = "stateful.item"

    def __init__(self, key=0, rank=0):
        self.key = key
        self.rank = rank

    def pickle(self) -> bytes:
        return BufferWriter().write_int(self.key).write_int(self.rank).getvalue()

    @classmethod
    def unpickle(cls, data: bytes) -> "Item":
        reader = BufferReader(data)
        return cls(reader.read_int(), reader.read_int())


def key_indexer():
    return Indexer("by-key", Item, lambda i: i.key, unique=True, kind="hash")


def rank_indexer():
    return Indexer("by-rank", Item, lambda i: i.rank, unique=False, kind="btree")


class CollectionMachine(RuleBasedStateMachine):
    """A collection with two indexes must agree with a dict model."""

    @initialize()
    def setup(self):
        registry = ClassRegistry()
        registry.register(Item)
        chunk_store = ChunkStore.format(
            MemoryUntrustedStore(),
            MemorySecretStore(SECRET),
            MemoryOneWayCounter(),
            ChunkStoreConfig(
                segment_size=16 * 1024,
                initial_segments=4,
                checkpoint_residual_bytes=64 * 1024,
                map_fanout=16,
                security=SecurityProfile.insecure(),
            ),
        )
        object_store = ObjectStore.create(
            chunk_store, ObjectStoreConfig(locking=False), registry
        )
        self.store = CollectionStore(
            object_store, CollectionStoreConfig(btree_order=4, list_node_capacity=4)
        )
        ct = self.store.transaction()
        handle = ct.create_collection("items", key_indexer())
        handle.create_index(rank_indexer())
        ct.commit()
        self.model = {}  # key -> rank

    @rule(key=st.integers(0, 25), rank=st.integers(0, 5))
    def insert(self, key, rank):
        ct = self.store.transaction()
        handle = ct.write_collection("items")
        if key in self.model:
            from repro.errors import DuplicateKeyError

            try:
                handle.insert(Item(key, rank))
                raise AssertionError("duplicate insert must raise")
            except DuplicateKeyError:
                ct.abort()
            return
        handle.insert(Item(key, rank))
        ct.commit()
        self.model[key] = rank

    @rule(key=st.integers(0, 25), rank=st.integers(0, 5))
    def update_rank(self, key, rank):
        if key not in self.model:
            return
        ct = self.store.transaction()
        handle = ct.write_collection("items")
        iterator = handle.query_match(key_indexer(), key)
        item = iterator.write()
        item.rank = rank
        iterator.next()
        iterator.close()
        ct.commit()
        self.model[key] = rank

    @rule(key=st.integers(0, 25))
    def delete(self, key):
        if key not in self.model:
            return
        ct = self.store.transaction()
        handle = ct.write_collection("items")
        iterator = handle.query_match(key_indexer(), key)
        iterator.delete()
        iterator.next()
        iterator.close()
        ct.commit()
        del self.model[key]

    @invariant()
    def indexes_agree_with_model(self):
        if not hasattr(self, "store"):
            return
        ct = self.store.transaction()
        handle = ct.read_collection("items")
        assert handle.count == len(self.model)
        # Unique hash index resolves every key.
        for key, rank in self.model.items():
            iterator = handle.query_match(key_indexer(), key)
            assert not iterator.end()
            assert iterator.read().rank == rank
            iterator.close()
        # B+tree scan enumerates exactly the model, rank-ordered.
        iterator = handle.query(rank_indexer())
        seen = []
        while not iterator.end():
            item = iterator.read()
            seen.append((item.key, item.rank))
            iterator.next()
        iterator.close()
        assert sorted(seen) == sorted(self.model.items())
        assert [rank for _k, rank in seen] == sorted(r for r in dict(seen).values()) \
            or [rank for _k, rank in seen] == sorted(rank for _k, rank in seen)
        ct.abort()

    def teardown(self):
        if hasattr(self, "store"):
            self.store.close()


TestChunkStoreStateful = ChunkStoreMachine.TestCase
TestChunkStoreStateful.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None
)

TestCollectionStateful = CollectionMachine.TestCase
TestCollectionStateful.settings = settings(
    max_examples=8, stateful_step_count=20, deadline=None
)
