"""The transient-fault-tolerant store stack.

Three layers under test:

* :class:`RetryPolicy` — the deterministic exponential-backoff schedule
  (replayed sweeps must observe byte-identical delay sequences),
* :func:`classify_os_error` / :class:`FileUntrustedStore` — raw
  ``OSError`` never escapes the platform layer: transient errnos become
  :class:`TransientStoreError`, everything else :class:`StoreError`,
* :class:`ResilientUntrustedStore` — bounded retries around any inner
  store, exercised against the fault harness's injected transient
  faults (flaky-then-recover and never-recovers schedules).
"""

from __future__ import annotations

import errno

import pytest

from repro.errors import StoreError, TDBError, TransientStoreError
from repro.platform import (
    MemoryUntrustedStore,
    ResilientUntrustedStore,
    RetryPolicy,
    TRANSIENT_ERRNOS,
    classify_os_error,
)
from repro.platform.untrusted import FileUntrustedStore
from repro.testing import FaultSchedule, FaultyUntrustedStore


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_delays_are_deterministic(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        assert a.schedule(op_id=3) == b.schedule(op_id=3)

    def test_jitter_varies_with_op_and_attempt_but_not_run(self):
        policy = RetryPolicy()
        assert policy.delay(1, op_id=1) != policy.delay(1, op_id=2)
        assert policy.delay(1, op_id=1) == policy.delay(1, op_id=1)

    def test_exponential_growth_within_bounds(self):
        policy = RetryPolicy(
            base_delay=0.01, multiplier=2.0, max_delay=0.05, jitter=0.25
        )
        for attempt in range(1, 8):
            raw = min(0.05, 0.01 * 2.0 ** (attempt - 1))
            d = policy.delay(attempt, op_id=5)
            assert raw <= d <= raw * 1.25

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(base_delay=0.5, multiplier=3.0, jitter=0.0,
                             max_delay=100.0)
        assert policy.schedule() == [0.5, 1.5, 4.5]

    def test_schedule_length_is_retries_not_attempts(self):
        assert len(RetryPolicy(max_attempts=6).schedule()) == 5
        assert RetryPolicy(max_attempts=1).schedule() == []

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"max_delay": -0.1},
            {"multiplier": 0.5},
            {"jitter": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_attempts_are_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


# ---------------------------------------------------------------------------
# OSError classification
# ---------------------------------------------------------------------------


class TestClassification:
    @pytest.mark.parametrize("code", sorted(TRANSIENT_ERRNOS))
    def test_transient_errnos(self, code):
        exc = classify_os_error(OSError(code, "busy"), "read")
        assert isinstance(exc, TransientStoreError)
        assert isinstance(exc, StoreError)  # still inside the TDB taxonomy

    @pytest.mark.parametrize("code", [errno.ENOENT, errno.EACCES, errno.ENOSPC])
    def test_permanent_errnos(self, code):
        exc = classify_os_error(OSError(code, "gone"), "write")
        assert isinstance(exc, StoreError)
        assert not isinstance(exc, TransientStoreError)

    def test_errno_less_oserror_is_permanent(self):
        exc = classify_os_error(OSError("weird"), "sync")
        assert isinstance(exc, StoreError)
        assert not isinstance(exc, TransientStoreError)

    def test_file_store_wraps_missing_file(self, tmp_path):
        store = FileUntrustedStore(str(tmp_path / "data"))
        with pytest.raises(StoreError):
            store.read("no-such-file")
        with pytest.raises(StoreError):
            store.size("no-such-file")
        with pytest.raises(StoreError):
            store.delete("no-such-file")

    def test_file_store_never_leaks_oserror(self, tmp_path, monkeypatch):
        store = FileUntrustedStore(str(tmp_path / "data"))
        store.write("f", 0, b"payload")

        import repro.platform.untrusted as untrusted_mod

        def busted(*args, **kwargs):
            raise OSError(errno.EIO, "injected I/O error")

        monkeypatch.setattr(untrusted_mod.os, "fsync", busted)
        with pytest.raises(TransientStoreError):
            store.sync("f")


# ---------------------------------------------------------------------------
# ResilientUntrustedStore x fault injection
# ---------------------------------------------------------------------------


def _resilient(schedule=None, **policy_kwargs):
    faulty = FaultyUntrustedStore(schedule=schedule or FaultSchedule())
    sleeps = []
    store = ResilientUntrustedStore(
        faulty, RetryPolicy(**policy_kwargs), sleep=sleeps.append
    )
    return store, faulty, sleeps


class TestResilientStore:
    def test_passthrough_without_faults(self):
        store, faulty, sleeps = _resilient()
        store.write("f", 0, b"hello")
        assert store.read("f") == b"hello"
        assert store.exists("f") and not store.exists("g")
        assert store.size("f") == 5
        assert store.list_files() == ["f"]
        store.sync("f")
        store.truncate("f", 2)
        store.delete("f")
        assert sleeps == []
        assert store.stats.transient_retries == 0
        assert store.stats.transient_giveups == 0

    def test_flaky_write_recovers(self):
        sched = FaultSchedule().transient_on_write(1, times=2)
        store, faulty, sleeps = _resilient(sched, max_attempts=4)
        store.write("f", 0, b"data")
        assert faulty.read("f") == b"data"
        assert faulty.total_writes == 1  # failed attempts consumed no ordinal
        assert store.stats.transient_retries == 2
        assert store.stats.transient_giveups == 0
        assert sleeps == [RetryPolicy().delay(1, 1), RetryPolicy().delay(2, 1)]

    def test_flaky_read_and_sync_recover(self):
        sched = (
            FaultSchedule()
            .transient_on_read(1, times=1)
            .transient_on_sync(1, times=3)
        )
        store, faulty, _ = _resilient(sched, max_attempts=4)
        store.write("f", 0, b"x")
        assert store.read("f") == b"x"
        store.sync("f")
        assert store.stats.transient_retries == 4
        assert faulty.total_reads == 1
        assert faulty.total_syncs == 1

    def test_giveup_reraises_transient_error(self):
        sched = FaultSchedule().transient_on_write(1, times=99)
        store, faulty, sleeps = _resilient(sched, max_attempts=3)
        with pytest.raises(TransientStoreError):
            store.write("f", 0, b"x")
        assert store.stats.transient_retries == 2   # attempts 1 and 2 slept
        assert store.stats.transient_giveups == 1
        assert len(sleeps) == 2
        assert faulty.total_writes == 0  # nothing ever landed
        assert not faulty.exists("f")

    def test_exhausted_fault_lets_later_attempt_land(self):
        """times < max_attempts: the harness recovers before the budget."""
        sched = FaultSchedule().transient_on_write(2, times=1)
        store, faulty, _ = _resilient(sched)
        store.write("f", 0, b"one")   # write#1, untouched
        store.write("f", 3, b"two")   # write#2: fails once, then lands
        assert faulty.read("f") == b"onetwo"
        assert faulty.total_writes == 2

    def test_permanent_oserror_is_not_retried(self):
        class Broken(MemoryUntrustedStore):
            def read(self, name, offset=0, length=None):
                raise OSError(errno.EACCES, "permission denied")

        attempts = []
        store = ResilientUntrustedStore(Broken(), RetryPolicy(),
                                        sleep=attempts.append)
        with pytest.raises(StoreError) as excinfo:
            store.read("f")
        assert not isinstance(excinfo.value, TransientStoreError)
        assert attempts == []  # no retry, no sleep

    def test_leaked_transient_oserror_is_retried(self):
        class Flaky(MemoryUntrustedStore):
            def __init__(self):
                super().__init__()
                self.failures = 2

            def read(self, name, offset=0, length=None):
                if self.failures:
                    self.failures -= 1
                    raise OSError(errno.EAGAIN, "try again")
                return super().read(name, offset, length)

        inner = Flaky()
        inner.write("f", 0, b"ok")
        store = ResilientUntrustedStore(inner, RetryPolicy(),
                                        sleep=lambda d: None)
        assert store.read("f") == b"ok"
        assert store.stats.transient_retries == 2

    def test_unwrapped_transient_fault_is_a_tdberror(self):
        """Without the resilient wrapper the injected fault still lands
        inside the TDB error taxonomy — callers can catch it."""
        sched = FaultSchedule().transient_on_write(1, times=1)
        faulty = FaultyUntrustedStore(schedule=sched)
        with pytest.raises(TDBError):
            faulty.write("f", 0, b"x")
        faulty.write("f", 0, b"x")  # retry by hand: same ordinal, now clean
        assert faulty.read("f") == b"x"

    def test_stats_are_shared_with_inner(self):
        store, faulty, _ = _resilient()
        assert store.stats is faulty.stats
