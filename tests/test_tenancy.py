"""The multi-tenant DRM hub: registry lifecycle, auth, policy, quotas,
metered audit, and the three-tenant end-to-end contract on the threaded
server (the sharded frontend is covered in ``test_tenancy_sharded.py``).
"""

from __future__ import annotations

import contextlib
import time

import pytest

from repro.errors import (
    AuthFailedError,
    AuthRequiredError,
    ConfigError,
    FeatureUnavailableError,
    PermissionDeniedError,
    QuotaExceededError,
    ServerBusyError,
    TDBError,
    TenancyError,
)
from repro.server import TdbClient, TdbServer
from repro.tenancy import (
    Identity,
    QuotaState,
    TenancyHub,
    TenantQuotas,
    TenantRegistry,
    compute_proof,
    value_bytes,
)
from repro.tenancy import policy as tenancy_policy


@contextlib.contextmanager
def running_hub(root, tenants=(), **server_kwargs):
    """A threaded hub server over ``root``; yields ``(server, hub, secrets)``.

    ``tenants`` is a list of ``(name, quotas)`` pairs created up front;
    ``secrets`` maps tenant name to its bootstrap admin secret.
    """
    hub = TenancyHub(str(root))
    secrets = {}
    for name, quotas in tenants:
        secrets[name] = hub.create_tenant(name, quotas)["secret"]
    server = TdbServer(None, tenancy=hub, **server_kwargs).start()
    try:
        yield server, hub, secrets
    finally:
        server.stop()
        hub.close()


def connect(server, tenant=None, principal=None, secret=None) -> TdbClient:
    host, port = server.address
    client = TdbClient(host, port)
    if tenant is not None:
        client.authenticate(tenant, principal, secret)
    return client


# ---------------------------------------------------------------------------
# Unit: quotas
# ---------------------------------------------------------------------------


class TestQuotas:
    def test_validation(self):
        with pytest.raises(ConfigError):
            TenantQuotas(max_sessions=-1)
        with pytest.raises(ConfigError):
            TenantQuotas(txn_rate=-0.5)
        TenantQuotas()  # defaults are valid

    def test_session_quota(self):
        state = QuotaState(TenantQuotas(max_sessions=2))
        state.admit_session()
        state.admit_session()
        with pytest.raises(QuotaExceededError) as info:
            state.admit_session()
        assert info.value.kind == "sessions"
        state.release_session()
        state.admit_session()  # slot freed

    def test_token_bucket_refills(self):
        clock = [0.0]
        state = QuotaState(
            TenantQuotas(txn_rate=2.0, burst=1), clock=lambda: clock[0]
        )
        state.take_txn_token()
        with pytest.raises(QuotaExceededError) as info:
            state.take_txn_token()
        assert info.value.kind == "txn_rate"
        clock[0] += 0.5  # 2 tokens/s -> one token back
        state.take_txn_token()

    def test_bytes_and_pending_quotas(self):
        state = QuotaState(
            TenantQuotas(max_pending_commits=1, max_bytes=100)
        )
        state.begin_commit(60)
        with pytest.raises(QuotaExceededError) as info:
            state.begin_commit(10)  # pending slot exhausted
        assert info.value.kind == "pending"
        state.end_commit(60, committed=True)
        with pytest.raises(QuotaExceededError) as info:
            state.begin_commit(50)  # 60 committed + 50 > 100
        assert info.value.kind == "bytes"
        # An aborted commit releases its reservation.
        state.begin_commit(40)
        state.end_commit(40, committed=False)
        assert state.usage()["bytes_committed"] == 60

    def test_quota_exceeded_is_transient_busy(self):
        assert issubclass(QuotaExceededError, ServerBusyError)

    def test_value_bytes_currency(self):
        assert value_bytes({"op": "col.insert", "value": {"k": 1}}) > 0
        assert value_bytes({"op": "obj.remove", "oid": 3}) == 16


# ---------------------------------------------------------------------------
# Unit: policy
# ---------------------------------------------------------------------------


class TestPolicy:
    def test_rights_imply(self):
        assert tenancy_policy.grants_allow([("docs", "admin")], "docs", "read")
        assert not tenancy_policy.grants_allow([("docs", "read")], "docs", "write")

    def test_wildcard_never_covers_reserved(self):
        assert tenancy_policy.grants_allow([("*", "admin")], "docs", "admin")
        assert not tenancy_policy.grants_allow([("*", "admin")], "_audit", "read")
        assert tenancy_policy.grants_allow([("_audit", "read")], "_audit", "read")

    def test_reserved_mutation_refused_outright(self):
        with pytest.raises(PermissionDeniedError):
            tenancy_policy.required_access(
                "col.insert", {"name": "_audit", "value": {}}
            )
        with pytest.raises(PermissionDeniedError):
            tenancy_policy.required_access("name.bind", {"name": "_tenant"})
        # Reads of reserved collections classify fine.
        scope, right = tenancy_policy.required_access(
            "col.iterate", {"name": "_audit"}
        )
        assert (scope, right) == ("_audit", "read")

    def test_verb_classification(self):
        assert tenancy_policy.required_access("obj.put", {}) == ("objects", "write")
        assert tenancy_policy.required_access(
            "col.create", {"name": "docs"}
        ) == ("docs", "admin")


# ---------------------------------------------------------------------------
# Registry lifecycle
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_create_list_and_name_validation(self, tmp_path):
        registry = TenantRegistry(str(tmp_path))
        registry.create("acme")
        registry.create("globex-2")
        assert registry.list() == ["acme", "globex-2"]
        with pytest.raises(TenancyError):
            registry.create("acme")  # duplicate
        for bad in ("", "UPPER", "has space", "a" * 65, "-leading", "a:b"):
            with pytest.raises(TenancyError):
                registry.create(bad)
        registry.close()

    def test_lru_eviction_and_reopen(self, tmp_path):
        registry = TenantRegistry(str(tmp_path), max_open=1)
        registry.create("a")
        registry.create("b")
        state_a = registry.acquire("a")
        db_a = state_a.db
        registry.acquire("b")  # evicts a (no leases held)
        stats = registry.stats()
        assert stats["evicted_total"] >= 1
        assert "a" not in stats["tenants"]
        # The evicted database was closed; re-acquiring opens a fresh one.
        state_a2 = registry.acquire("a")
        assert state_a2.db is not db_a
        registry.close()

    def test_leased_tenant_survives_eviction_pressure(self, tmp_path):
        registry = TenantRegistry(str(tmp_path), max_open=1)
        registry.create("a")
        registry.create("b")
        with registry.using("a") as state_a:
            registry.acquire("b")  # over budget, but "a" is leased
            assert registry.peek("a") is state_a
        registry.close()

    def test_meter_persists_across_close(self, tmp_path):
        registry = TenantRegistry(str(tmp_path))
        registry.create("acme")
        with registry.using("acme") as state:
            state.record_commit("p", 123)
            state.flush_meter()
        registry.close()
        registry2 = TenantRegistry(str(tmp_path))
        with registry2.using("acme") as state:
            assert state.meter_commits == 1
            assert state.meter_bytes == 123
        registry2.close()


# ---------------------------------------------------------------------------
# Hub auth (direct, no wire)
# ---------------------------------------------------------------------------


class TestHubAuth:
    def test_challenge_response_roundtrip(self, tmp_path):
        with TenancyHub(str(tmp_path)) as hub:
            secret = hub.create_tenant("acme")["secret"]
            pending = hub.begin_auth("acme", "admin")
            proof = compute_proof(secret, pending["challenge"])
            identity = hub.finish_auth(pending, proof)
            assert identity == Identity("acme", "admin")
            hub.release(identity)

    def test_unknown_tenant_and_principal_uniform_failure(self, tmp_path):
        with TenancyHub(str(tmp_path)) as hub:
            hub.create_tenant("acme")
            with pytest.raises(AuthFailedError):
                hub.begin_auth("nosuch", "admin")
            with pytest.raises(AuthFailedError):
                hub.begin_auth("acme", "nosuch")

    def test_wrong_proof_fails_and_audits(self, tmp_path):
        with TenancyHub(str(tmp_path)) as hub:
            hub.create_tenant("acme")
            pending = hub.begin_auth("acme", "admin")
            with pytest.raises(AuthFailedError):
                hub.finish_auth(pending, "00" * 32)
            meter = hub.meter("acme")
            assert meter["audit_records"] >= 2  # bootstrap grant + auth.fail


# ---------------------------------------------------------------------------
# Threaded server end-to-end
# ---------------------------------------------------------------------------


class TestThreadedHub:
    def test_hello_advertises_tenancy_and_absent_verbs(self, tmp_path):
        with running_hub(tmp_path) as (server, _hub, _):
            with connect(server) as client:
                hello = client.hello()
                assert "tenancy" in hello["features"]
                assert "repl.subscribe" in hello["absent_verbs"]

    def test_preauth_verbs_refused(self, tmp_path):
        with running_hub(tmp_path, [("acme", None)]) as (server, _hub, _):
            with connect(server) as client:
                with pytest.raises(AuthRequiredError):
                    client.call("begin", mode="object")
                with pytest.raises(AuthRequiredError):
                    client.call("obj.get", oid=1)

    def test_per_store_verbs_unavailable(self, tmp_path):
        with running_hub(tmp_path, [("acme", None)]) as (server, _, secrets):
            with connect(server, "acme", "admin", secrets["acme"]) as client:
                with pytest.raises(FeatureUnavailableError):
                    client.call("repl.master")
                with pytest.raises(FeatureUnavailableError):
                    client.call("log.head")

    def test_three_tenant_isolation(self, tmp_path):
        tenants = [("acme", None), ("globex", None), ("initech", None)]
        with running_hub(tmp_path, tenants) as (server, _, secrets):
            # Each tenant writes its own collection and object graph.
            oids = {}
            for name in ("acme", "globex", "initech"):
                with connect(server, name, "admin", secrets[name]) as c:
                    with c.transaction("collection") as ct:
                        ct.create_collection("docs", "k")
                        ct.insert("docs", {"k": 1, "owner": name})
                    with c.transaction() as txn:
                        oids[name] = txn.put({"secret": name})
                        txn.bind("root", oids[name])
            # No tenant can read or write another tenant's data through
            # any verb family: collections, objects, or names.
            with connect(server, "acme", "admin", secrets["acme"]) as c:
                with c.transaction() as txn:
                    assert txn.lookup("root") == oids["acme"]
                    assert txn.get(oids["acme"]) == {"secret": "acme"}
                    if oids["globex"] != oids["acme"]:
                        with pytest.raises(TDBError):
                            txn.get(oids["globex"])
                with c.transaction("collection") as ct:
                    rows = ct.get_match("docs", 1)
                    assert rows == [{"k": 1, "owner": "acme"}]

    def test_policy_gates_and_revocation_next_txn(self, tmp_path):
        with running_hub(tmp_path, [("acme", None)]) as (server, hub, secrets):
            writer_secret = hub.grant_offline(
                "acme", "writer", "docs", "write"
            )["secret"]
            with connect(server, "acme", "admin", secrets["acme"]) as admin:
                with admin.transaction("collection") as ct:
                    ct.create_collection("docs", "k")
            with connect(server, "acme", "writer", writer_secret) as w:
                with w.transaction("collection") as ct:
                    ct.insert("docs", {"k": 1})
                # No grant on the objects scope: obj verbs refused.
                with pytest.raises(PermissionDeniedError):
                    with w.transaction() as txn:
                        txn.put({"x": 1})
                # col.create needs admin on the collection.
                with pytest.raises(PermissionDeniedError):
                    with w.transaction("collection") as ct:
                        ct.create_collection("other", "k")
                # Revoke lands mid-session: the next transaction fails.
                with connect(server, "acme", "admin", secrets["acme"]) as a:
                    a.call("tenant.revoke", principal="writer",
                           scope="docs", right="write")
                with pytest.raises(PermissionDeniedError):
                    with w.transaction("collection") as ct:
                        ct.insert("docs", {"k": 2})

    def test_admin_gate_on_tenant_verbs(self, tmp_path):
        with running_hub(tmp_path, [("acme", None)]) as (server, hub, secrets):
            reader_secret = hub.grant_offline(
                "acme", "reader", "docs", "read"
            )["secret"]
            with connect(server, "acme", "reader", reader_secret) as c:
                with pytest.raises(PermissionDeniedError):
                    c.call("tenant.grant", principal="reader",
                           scope="*", right="admin")

    def test_session_quota_isolated_per_tenant(self, tmp_path):
        tenants = [
            ("small", TenantQuotas(max_sessions=1)),
            ("big", None),
        ]
        with running_hub(tmp_path, tenants) as (server, _, secrets):
            c1 = connect(server, "small", "admin", secrets["small"])
            try:
                c2 = connect(server)
                with pytest.raises(QuotaExceededError):
                    c2.authenticate("small", "admin", secrets["small"])
                c2.close()
                # The other tenant is unaffected by small's saturation.
                with connect(server, "big", "admin", secrets["big"]) as c3:
                    with c3.transaction() as txn:
                        txn.put({"ok": True})
            finally:
                c1.close()
            # Closing the session frees the slot.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                c4 = connect(server)
                try:
                    c4.authenticate("small", "admin", secrets["small"])
                    c4.close()
                    break
                except QuotaExceededError:
                    c4.close()
                    time.sleep(0.05)
            else:
                pytest.fail("session slot never freed")

    def test_txn_rate_quota_trips_transient(self, tmp_path):
        tenants = [("noisy", TenantQuotas(txn_rate=1.0, burst=1))]
        with running_hub(tmp_path, tenants) as (server, _, secrets):
            with connect(server, "noisy", "admin", secrets["noisy"]) as c:
                c.call("begin", mode="object")
                c.call("abort")
                with pytest.raises(QuotaExceededError):
                    c.call("begin", mode="object")
                # The refusal is marshalled transient over the wire.
                meter = c.call("tenant.meter")
                assert meter["usage"]["trips"]["txn_rate"] >= 1

    def test_bytes_quota_refuses_commit(self, tmp_path):
        tenants = [("tiny", TenantQuotas(max_bytes=64))]
        with running_hub(tmp_path, tenants) as (server, _, secrets):
            with connect(server, "tiny", "admin", secrets["tiny"]) as c:
                c.call("begin", mode="object")
                c.call("obj.put", value={"blob": "x" * 200})
                with pytest.raises(QuotaExceededError):
                    c.call("commit")
                # The transaction was aborted server-side; the session
                # is reusable and small writes still fit.
                c.call("begin", mode="object")
                c.call("obj.put", value={"s": 1})
                c.call("commit")

    def test_audit_trail_survives_server_restart(self, tmp_path):
        root = tmp_path / "hub"
        quotas = TenantQuotas(max_bytes=128)
        with running_hub(root, [("acme", quotas)]) as (server, _, secrets):
            secret = secrets["acme"]
            with connect(server, "acme", "admin", secret) as c:
                c.call("tenant.grant", principal="admin",
                       scope="_audit", right="read")
                with c.transaction("collection") as ct:
                    ct.create_collection("docs", "k")
                # Trip the stored-bytes quota so the restart check covers
                # all three audited families: auth, grant, and quota.
                c.call("begin", mode="object")
                c.call("obj.put", value={"blob": "x" * 400})
                with pytest.raises(QuotaExceededError):
                    c.call("commit")
        # Fresh hub + server over the same root: the audit collection is
        # ordinary durable tenant data.
        with running_hub(root) as (server, _hub, _):
            with connect(server, "acme", "admin", secret) as c:
                c.call("begin", mode="collection")
                rows = c.call("col.iterate", name="_audit")["values"]
                c.call("abort")
                events = [r["event"] for r in rows]
                assert "auth" in events
                assert "grant" in events
                assert "quota" in events
                # Sequence numbers keep ascending after restart.
                seqs = [r["seq"] for r in rows]
                assert seqs == sorted(seqs)
                meter = c.call("tenant.meter")
                assert meter["audit_records"] >= len(rows)

    def test_stats_payload_has_tenancy_section(self, tmp_path):
        with running_hub(tmp_path, [("acme", None)]) as (server, _, secrets):
            with connect(server, "acme", "admin", secrets["acme"]) as c:
                stats = c.stats()
                assert stats["tenancy"]["open"] >= 1
                assert "acme" in stats["tenancy"]["tenants"]

    def test_config_conflicts(self, tmp_path):
        from repro.db import Database

        hub = TenancyHub(str(tmp_path))
        db = Database.in_memory()
        try:
            with pytest.raises(ConfigError):
                TdbServer(db, tenancy=hub)
            with pytest.raises(ConfigError):
                TdbServer(None, tenancy=hub, read_only=True)
            with pytest.raises(ConfigError):
                TdbServer(None)
        finally:
            db.close()
            hub.close()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestTenantCli:
    def test_create_grant_revoke_meter_list(self, tmp_path, capsys):
        from repro.tools import main

        root = str(tmp_path)
        assert main(["tenant", "create", root, "acme",
                     "--max-sessions", "4"]) == 0
        out = capsys.readouterr().out
        assert "tenant acme created" in out
        assert "admin secret" in out
        assert main(["tenant", "list", root]) == 0
        assert "acme" in capsys.readouterr().out
        assert main(["tenant", "grant", root, "acme",
                     "writer", "docs", "write"]) == 0
        assert "new principal secret" in capsys.readouterr().out
        assert main(["tenant", "revoke", root, "acme",
                     "writer", "docs", "write"]) == 0
        assert "revoked 1 grant(s)" in capsys.readouterr().out
        assert main(["tenant", "meter", root, "acme"]) == 0
        out = capsys.readouterr().out
        assert '"max_sessions": 4' in out
        assert '"audit_records"' in out

    def test_duplicate_create_fails_cleanly(self, tmp_path, capsys):
        from repro.tools import main

        root = str(tmp_path)
        assert main(["tenant", "create", root, "acme"]) == 0
        capsys.readouterr()
        assert main(["tenant", "create", root, "acme"]) == 2
        assert "TenancyError" in capsys.readouterr().err

    def test_serve_tenants_flag(self, tmp_path):
        import threading

        from repro.tools import main, serve_database

        root = str(tmp_path)
        assert main(["tenant", "create", root, "acme"]) == 0
        bound = {}
        stop = threading.Event()

        def ready(host, port):
            bound["addr"] = (host, port)
            stop.set()

        rc = serve_database(root, "127.0.0.1", 0, tenants=True,
                            ready_callback=ready, stop_event=stop)
        assert rc == 0
        assert bound["addr"][1] > 0
