"""Server throughput: threaded group-commit scaling vs the sharded service.

Runs :func:`repro.bench.serverload.run_server_load` in both server
modes and writes ``BENCH_server.json`` next to the repository root —
the non-gating CI artifact tracking transactions per second, commit
batch size, and the amortized sync / counter cost per transaction.

Statistical validity: every point warms up first and then loops for a
minimum measured duration (~2 s in the full run), so the numbers are
not quantized by a fixed transaction count finishing in a few clock
ticks.

Two shapes matter:

* **threaded** — batch size ~1 with a single client (no batching tax),
  growing well past 2 at 32 clients while syncs-per-transaction falls
  toward ``1 / batch``;
* **sharded** — on a multi-core runner, 32 clients over 4 shard worker
  processes must beat the threaded 32-client baseline by >= 2x
  (``speedup`` in the artifact, with a per-shard breakdown).  On
  smaller runners the ratio is recorded but not judged: the workers
  just time-slice one core, so the gate would measure the scheduler,
  not the architecture.  ``cpu_count`` in the artifact says which
  regime produced the numbers.

Run directly (``python benchmarks/bench_server_throughput.py``) or via
pytest (``pytest benchmarks/bench_server_throughput.py -q``).
"""

from __future__ import annotations

import json
import os
import sys

from repro.bench.serverload import run_server_load

CLIENT_POINTS = (1, 8, 32)
SHARDS = 4
GATE_CLIENTS = 32
GATE_MIN_SPEEDUP = 2.0
GATE_MIN_CPUS = 4
OUTPUT = os.path.join(os.path.dirname(os.path.dirname(__file__)), "BENCH_server.json")


def run_points(duration_s: float = 2.0, warmup_txns: int = 5):
    """Both modes at every client point, plus the speedup verdict."""
    threaded = {}
    for clients in CLIENT_POINTS:
        threaded[str(clients)] = run_server_load(
            clients=clients,
            mode="threaded",
            warmup_txns=warmup_txns,
            duration_s=duration_s,
            max_delay=0.01,
        ).as_dict()
    sharded = {}
    for clients in CLIENT_POINTS:
        sharded[str(clients)] = run_server_load(
            clients=clients,
            mode="sharded",
            shards=SHARDS,
            warmup_txns=warmup_txns,
            duration_s=duration_s,
            max_delay=0.01,
        ).as_dict()

    base = threaded[str(GATE_CLIENTS)]["txns_per_s"]
    parallel = sharded[str(GATE_CLIENTS)]["txns_per_s"]
    cpu_count = os.cpu_count() or 1
    gate = {
        "clients": GATE_CLIENTS,
        "shards": SHARDS,
        "threaded_txns_per_s": base,
        "sharded_txns_per_s": parallel,
        "speedup": round(parallel / base, 3) if base else None,
        "cpu_count": cpu_count,
        "min_speedup": GATE_MIN_SPEEDUP,
        # The >=2x architecture gate only means something with real
        # parallel hardware under the worker processes.
        "judged": cpu_count >= GATE_MIN_CPUS,
        "passed": (
            cpu_count >= GATE_MIN_CPUS
            and base > 0
            and parallel / base >= GATE_MIN_SPEEDUP
        ) if cpu_count >= GATE_MIN_CPUS else None,
    }
    return {"threaded": threaded, "sharded": sharded, "gate": gate}


def write_report(results, path: str = OUTPUT) -> None:
    with open(path, "w") as handle:
        json.dump({"server_throughput": results}, handle, indent=2)
        handle.write("\n")


def test_server_throughput_smoke():
    """Smoke gate: both modes complete cleanly; concurrency batches;
    the sharded speedup gate holds whenever the runner has the cores."""
    results = run_points(duration_s=0.8, warmup_txns=3)
    for mode in ("threaded", "sharded"):
        for clients, point in results[mode].items():
            assert point["errors"] == 0, point
            assert point["transactions"] > 0, point
    # 32 concurrent clients must share commits; a lone client must not wait.
    assert results["threaded"]["32"]["mean_batch_size"] > 1.0
    assert results["sharded"]["32"]["per_shard"], "per-shard breakdown missing"
    gate = results["gate"]
    if gate["judged"]:
        assert gate["passed"], (
            f"sharded/{SHARDS} at {GATE_CLIENTS} clients is only "
            f"{gate['speedup']}x the threaded baseline on a "
            f"{gate['cpu_count']}-core runner (need {GATE_MIN_SPEEDUP}x)"
        )
    write_report(results)


if __name__ == "__main__":
    report = run_points()
    write_report(report)
    json.dump({"server_throughput": report}, sys.stdout, indent=2)
    print()
