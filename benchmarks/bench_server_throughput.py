"""Server throughput smoke run: group-commit scaling at 1/8/32 clients.

Runs :func:`repro.bench.serverload.run_server_load` at three
concurrency levels and writes ``BENCH_server.json`` next to the
repository root — the non-gating CI artifact tracking transactions per
second, mean commit batch size, and the amortized sync / counter cost
per transaction.  The interesting shape: batch size ~1 with a single
client (no batching tax), growing well past 2 at 32 clients while
syncs-per-transaction falls toward ``1 / batch``.

Run directly (``python benchmarks/bench_server_throughput.py``) or via
pytest (``pytest benchmarks/bench_server_throughput.py -q``).
"""

from __future__ import annotations

import json
import os
import sys

from repro.bench.serverload import run_server_load

CLIENT_POINTS = (1, 8, 32)
TXNS_PER_CLIENT = 10
OUTPUT = os.path.join(os.path.dirname(os.path.dirname(__file__)), "BENCH_server.json")


def run_points(txns_per_client: int = TXNS_PER_CLIENT):
    results = {}
    for clients in CLIENT_POINTS:
        result = run_server_load(
            clients=clients,
            txns_per_client=txns_per_client,
            max_delay=0.01,
        )
        results[str(clients)] = result.as_dict()
    return results


def write_report(results, path: str = OUTPUT) -> None:
    with open(path, "w") as handle:
        json.dump({"server_throughput": results}, handle, indent=2)
        handle.write("\n")


def test_server_throughput_smoke():
    """Smoke gate: every point completes; concurrency actually batches."""
    results = run_points(txns_per_client=5)
    for clients, point in results.items():
        assert point["errors"] == 0, point
        assert point["transactions"] == int(clients) * 5
    # 32 concurrent clients must share commits; a lone client must not wait.
    assert results["32"]["mean_batch_size"] > 1.0
    write_report(results)


if __name__ == "__main__":
    report = run_points()
    write_report(report)
    json.dump({"server_throughput": report}, sys.stdout, indent=2)
    print()
