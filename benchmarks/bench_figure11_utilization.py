"""Figure 11 benchmark: TPC-B latency and database size vs utilization.

Paper shape (left chart): response time dips slightly up to ~70% maximum
utilization and climbs substantially beyond; (right chart): database size
falls as the maximum utilization rises, and Berkeley DB's footprint is
far larger because it never checkpoints its log.  Full harness:
``python -m repro.bench.figure11``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_CACHE_BYTES, BENCH_SCALE
from repro.bench.tpcb import TdbTpcbDriver
from repro.config import ChunkStoreConfig, SecurityProfile

WARMUP_TXNS = 150
MEASURED_TXNS = 200


def _config(max_utilization: float) -> ChunkStoreConfig:
    return ChunkStoreConfig(
        segment_size=16 * 1024,
        initial_segments=4,
        checkpoint_residual_bytes=32 * 1024,
        map_fanout=64,
        max_utilization=max_utilization,
        fsync=True,
        security=SecurityProfile.insecure(),
    )


@pytest.mark.benchmark(group="figure11")
@pytest.mark.parametrize("max_utilization", [0.5, 0.6, 0.7, 0.8, 0.9])
def test_tpcb_utilization_sweep(benchmark, max_utilization):
    driver = TdbTpcbDriver(
        BENCH_SCALE,
        secure=False,
        chunk_config=_config(max_utilization),
        cache_bytes=BENCH_CACHE_BYTES,
    )
    driver.load()
    driver.run(WARMUP_TXNS)
    benchmark.pedantic(driver.txn_once, rounds=MEASURED_TXNS, iterations=1)
    stats = driver.chunk_store.stats()
    benchmark.extra_info["max_utilization"] = max_utilization
    benchmark.extra_info["db_size_kb"] = round(stats.capacity_bytes / 1024, 1)
    benchmark.extra_info["achieved_utilization"] = round(stats.utilization, 3)
    benchmark.extra_info["cleaner_copied_kb"] = round(
        stats.cleaner.bytes_copied / 1024, 1
    )
    driver.close()
