"""Figure 10 benchmark: TPC-B transaction latency per system.

Paper values: BerkeleyDB 6.8 ms, TDB 3.8 ms (56%), TDB-S 5.8 ms (85%).
The pytest-benchmark numbers here are wall-clock latencies of the Python
implementations; the per-run ``extra_info`` captures the I/O profile
(bytes per transaction, syncs per transaction, modeled disk time) that
carries the paper's actual comparison.  Full harness:
``python -m repro.bench.figure10``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_CACHE_BYTES, BENCH_SCALE
from repro.bench.metrics import DiskModel
from repro.bench.tpcb import BaselineTpcbDriver, TdbTpcbDriver

WARMUP_TXNS = 100
MEASURED_TXNS = 200


def _run(benchmark, driver):
    driver.load()
    driver.run(WARMUP_TXNS)
    io_before = driver.untrusted.stats.snapshot()
    counter_before = driver.counter.read() if hasattr(driver, "counter") else 0

    benchmark.pedantic(driver.txn_once, rounds=MEASURED_TXNS, iterations=1)

    io_delta = driver.untrusted.stats.delta_since(io_before)
    counter_bumps = (
        driver.counter.read() - counter_before if hasattr(driver, "counter") else 0
    )
    model = DiskModel()
    benchmark.extra_info["bytes_per_txn"] = round(
        io_delta.bytes_written / MEASURED_TXNS, 1
    )
    benchmark.extra_info["syncs_per_txn"] = round(
        io_delta.sync_calls / MEASURED_TXNS, 2
    )
    benchmark.extra_info["modeled_disk_ms_per_txn"] = round(
        model.cost_ms(io_delta, counter_bumps) / MEASURED_TXNS, 3
    )
    benchmark.extra_info["db_size_kb"] = round(driver.db_size_bytes() / 1024, 1)
    driver.close()


@pytest.mark.benchmark(group="figure10")
def test_tpcb_tdb(benchmark):
    """TDB without security (paper: 3.8 ms)."""
    _run(benchmark, TdbTpcbDriver(BENCH_SCALE, secure=False, cache_bytes=BENCH_CACHE_BYTES))


@pytest.mark.benchmark(group="figure10")
def test_tpcb_tdb_secure(benchmark):
    """TDB-S: SHA-1 hashing + AES encryption + counter bumps (paper: 5.8 ms)."""
    _run(benchmark, TdbTpcbDriver(BENCH_SCALE, secure=True, cache_bytes=BENCH_CACHE_BYTES))


@pytest.mark.benchmark(group="figure10")
def test_tpcb_berkeleydb_baseline(benchmark):
    """The Berkeley-DB-style baseline engine (paper: 6.8 ms)."""
    _run(benchmark, BaselineTpcbDriver(BENCH_SCALE, cache_bytes=BENCH_CACHE_BYTES))
