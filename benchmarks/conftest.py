"""Shared helpers for the pytest-benchmark reproduction targets.

These benchmarks run scaled-down versions of the paper's experiments so
``pytest benchmarks/ --benchmark-only`` finishes in minutes.  The full
harnesses (bigger scale, complete tables against the paper's numbers)
are the ``python -m repro.bench.figureNN`` entry points; see DESIGN.md
and EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.bench.tpcb import TpcbScale

BENCH_SCALE = TpcbScale(accounts=500, tellers=50, branches=5)
BENCH_CACHE_BYTES = 48 * 1024  # keeps the DB larger than the cache


@pytest.fixture(scope="session")
def bench_scale() -> TpcbScale:
    return BENCH_SCALE
