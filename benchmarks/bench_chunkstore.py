"""Chunk-store hot-path bench: kernel profiles and the digest memo.

Two measurements, written to ``BENCH_chunkstore.json`` (non-gating CI
artifact):

* write/read/deep-scrub wall time under the ``fast`` vs ``reference``
  kernel profile — the end-to-end effect of the table-driven AES and
  the batched CBC kernels on real store traffic;
* deep vs incremental scrub on an unchanged store, with the
  ``payload_digests`` counter proving the incremental pass re-hashed
  nothing and the memo hit-rate showing why.

Run directly (``python benchmarks/bench_chunkstore.py``) or via pytest
(``pytest benchmarks/bench_chunkstore.py -q``).
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.chunkstore import ChunkStore
from repro.config import ChunkStoreConfig, SecurityProfile
from repro.platform import (
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)

CHUNKS = 160
CHUNK_BYTES = 2048
OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "BENCH_chunkstore.json"
)


def _config(kernel: str) -> ChunkStoreConfig:
    return ChunkStoreConfig(
        segment_size=64 * 1024,
        initial_segments=4,
        map_fanout=16,
        security=SecurityProfile(kernel=kernel),
    )


def _payloads():
    return {
        i: bytes((i * 31 + j) % 256 for j in range(CHUNK_BYTES))
        for i in range(CHUNKS)
    }


def bench_kernel_profile(kernel: str):
    untrusted = MemoryUntrustedStore()
    store = ChunkStore.format(
        untrusted,
        MemorySecretStore(b"bench-chunkstore-secret-0123456x"),
        MemoryOneWayCounter(),
        _config(kernel),
    )
    payloads = _payloads()
    ids = {i: store.allocate_chunk_id() for i in payloads}

    started = time.perf_counter()
    store.commit({ids[i]: data for i, data in payloads.items()}, durable=True)
    store.checkpoint(force=True)
    write_s = time.perf_counter() - started

    started = time.perf_counter()
    for i in payloads:
        store.read(ids[i])
    read_s = time.perf_counter() - started

    started = time.perf_counter()
    report = store.scrub()  # deep
    scrub_s = time.perf_counter() - started
    assert report.clean

    kernels = store.perf.as_dict()["kernels"]
    store.close()
    return {
        "kernel": kernel,
        "chunks": CHUNKS,
        "chunk_bytes": CHUNK_BYTES,
        "write_ms": round(write_s * 1e3, 2),
        "read_ms": round(read_s * 1e3, 2),
        "deep_scrub_ms": round(scrub_s * 1e3, 2),
        "cipher_mb_per_s": {
            name: counter["mb_per_s"]
            for name, counter in kernels.items()
            if name.startswith("cipher.")
        },
    }


def bench_digest_memo():
    untrusted = MemoryUntrustedStore()
    store = ChunkStore.format(
        untrusted,
        MemorySecretStore(b"bench-chunkstore-secret-0123456x"),
        MemoryOneWayCounter(),
        _config("fast"),
    )
    payloads = _payloads()
    ids = {i: store.allocate_chunk_id() for i in payloads}
    store.commit({ids[i]: data for i, data in payloads.items()}, durable=True)
    store.checkpoint(force=True)

    started = time.perf_counter()
    deep = store.scrub(deep=True)
    deep_s = time.perf_counter() - started
    assert deep.clean

    digests_before = store.perf.counter("payload_digests")
    started = time.perf_counter()
    incremental = store.scrub(deep=False)
    incremental_s = time.perf_counter() - started
    rehashes = store.perf.counter("payload_digests") - digests_before
    assert incremental.clean

    memo = store.perf.as_dict()["digest_memo"]
    store.close()
    return {
        "chunks": CHUNKS,
        "deep_scrub_ms": round(deep_s * 1e3, 2),
        "incremental_scrub_ms": round(incremental_s * 1e3, 2),
        "incremental_rehashes": rehashes,
        "memo_skipped_chunks": incremental.memo_skipped_chunks,
        "memo_skipped_nodes": incremental.memo_skipped_nodes,
        "memo_hit_rate": memo["hit_rate"],
        "speedup": round(deep_s / incremental_s, 2) if incremental_s else None,
    }


def run_all():
    return {
        "kernel_profiles": [
            bench_kernel_profile("fast"),
            bench_kernel_profile("reference"),
        ],
        "digest_memo": bench_digest_memo(),
    }


def write_report(results, path: str = OUTPUT) -> None:
    with open(path, "w") as handle:
        json.dump({"chunkstore": results}, handle, indent=2)
        handle.write("\n")


def test_chunkstore_bench_smoke():
    """Smoke gate: fast profile wins end-to-end; incremental re-hashes 0."""
    results = run_all()
    fast, reference = results["kernel_profiles"]
    total_fast = fast["write_ms"] + fast["read_ms"] + fast["deep_scrub_ms"]
    total_ref = (
        reference["write_ms"] + reference["read_ms"] + reference["deep_scrub_ms"]
    )
    assert total_fast < total_ref, (total_fast, total_ref)
    memo = results["digest_memo"]
    assert memo["incremental_rehashes"] == 0, memo
    assert memo["memo_skipped_chunks"] == CHUNKS
    write_report(results)


if __name__ == "__main__":
    report = run_all()
    write_report(report)
    json.dump({"chunkstore": report}, sys.stdout, indent=2)
