"""Multi-tenant hub behavior under churn and skew.

Two workloads against a threaded hub (``TdbServer`` + ``TenancyHub``),
writing ``BENCH_tenancy.json`` next to the repository root as a
non-gating CI artifact:

* **tenant churn** — many more tenants than the registry's ``max_open``
  budget, visited round-robin (authenticate, one committed transaction,
  disconnect).  Every visit beyond the resident set forces an LRU
  eviction and a cold re-open, so the artifact tracks visits/s together
  with the registry's ``opened_total`` / ``evicted_total`` — the price
  of a cold tenant in the steady state.

* **hot-tenant skew** — a handful of resident tenants, one of them
  taking ~90% of the traffic from concurrent long-lived sessions.  The
  artifact records per-tenant committed-transaction throughput and the
  hot/cold latency split; the judged invariant is that the cold tenants
  keep making progress while the hot tenant soaks the hub (per-tenant
  quota state must not become a global convoy).

Run directly (``python benchmarks/bench_tenancy.py``) or via pytest
(``pytest benchmarks/bench_tenancy.py -q``).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import threading
import time

from repro.server import TdbClient, TdbServer
from repro.tenancy import TenancyHub

OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "BENCH_tenancy.json"
)

CHURN_TENANTS = 12
CHURN_MAX_OPEN = 4
SKEW_TENANTS = 4
SKEW_HOT_SHARE = 0.9
SKEW_WORKERS = 8


def _percentile(samples, fraction):
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(len(ordered) * fraction))
    return round(ordered[index] * 1000.0, 3)  # ms


def run_tenant_churn(duration_s: float = 2.0):
    """Round-robin visits across far more tenants than stay resident."""
    with tempfile.TemporaryDirectory(prefix="tdb-churn-") as root:
        hub = TenancyHub(root, max_open=CHURN_MAX_OPEN)
        secrets = {}
        for i in range(CHURN_TENANTS):
            name = f"tenant-{i:02d}"
            secrets[name] = hub.create_tenant(name)["secret"]
        server = TdbServer(None, tenancy=hub).start()
        try:
            host, port = server.address
            names = sorted(secrets)
            visits = 0
            latencies = []
            started = time.perf_counter()
            while time.perf_counter() - started < duration_s:
                name = names[visits % len(names)]
                t0 = time.perf_counter()
                client = TdbClient(host, port)
                try:
                    client.authenticate(name, "admin", secrets[name])
                    client.call("begin", mode="object")
                    client.call("obj.put", value={"visit": visits})
                    client.call("commit")
                finally:
                    client.close()
                latencies.append(time.perf_counter() - t0)
                visits += 1
            elapsed = time.perf_counter() - started
            stats = hub.stats()
            return {
                "tenants": CHURN_TENANTS,
                "max_open": CHURN_MAX_OPEN,
                "visits": visits,
                "visits_per_s": round(visits / elapsed, 1),
                "opened_total": stats["opened_total"],
                "evicted_total": stats["evicted_total"],
                "visit_ms_p50": _percentile(latencies, 0.50),
                "visit_ms_p95": _percentile(latencies, 0.95),
            }
        finally:
            server.stop()
            hub.close()


def run_hot_tenant_skew(duration_s: float = 2.0):
    """Concurrent sessions with ~90% of traffic on one hot tenant."""
    with tempfile.TemporaryDirectory(prefix="tdb-skew-") as root:
        hub = TenancyHub(root, max_open=SKEW_TENANTS + 1)
        secrets = {}
        for i in range(SKEW_TENANTS):
            name = f"tenant-{i:02d}"
            secrets[name] = hub.create_tenant(name)["secret"]
        names = sorted(secrets)
        hot = names[0]
        server = TdbServer(None, tenancy=hub).start()
        try:
            host, port = server.address
            hot_workers = max(1, round(SKEW_WORKERS * SKEW_HOT_SHARE))
            counts = {name: 0 for name in names}
            latencies = {name: [] for name in names}
            errors = [0]
            lock = threading.Lock()
            stop = threading.Event()

            def worker(index):
                # Hot workers hammer the one hot tenant; each cold
                # worker rotates across every cold tenant so all of
                # them see traffic regardless of the worker split.
                if index < hot_workers:
                    rotation = [hot]
                else:
                    rotation = names[1:]
                clients = {}
                try:
                    for name in rotation:
                        clients[name] = TdbClient(host, port)
                        clients[name].authenticate(
                            name, "admin", secrets[name]
                        )
                    n = 0
                    while not stop.is_set():
                        name = rotation[n % len(rotation)]
                        client = clients[name]
                        t0 = time.perf_counter()
                        client.call("begin", mode="object")
                        client.call("obj.put", value={"n": n, "t": name})
                        client.call("commit")
                        dt = time.perf_counter() - t0
                        n += 1
                        with lock:
                            counts[name] += 1
                            latencies[name].append(dt)
                except Exception:
                    with lock:
                        errors[0] += 1
                finally:
                    for client in clients.values():
                        client.close()

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(SKEW_WORKERS)
            ]
            started = time.perf_counter()
            for t in threads:
                t.start()
            time.sleep(duration_s)
            stop.set()
            for t in threads:
                t.join(timeout=30)
            elapsed = time.perf_counter() - started
            hot_lat = latencies[hot]
            cold_lat = [
                sample
                for name in names[1:]
                for sample in latencies[name]
            ]
            return {
                "tenants": SKEW_TENANTS,
                "workers": SKEW_WORKERS,
                "hot_tenant": hot,
                "hot_share_target": SKEW_HOT_SHARE,
                "errors": errors[0],
                "total_txns": sum(counts.values()),
                "txns_per_s": round(sum(counts.values()) / elapsed, 1),
                "per_tenant_txns": counts,
                "hot_ms_p50": _percentile(hot_lat, 0.50),
                "hot_ms_p95": _percentile(hot_lat, 0.95),
                "cold_ms_p50": _percentile(cold_lat, 0.50),
                "cold_ms_p95": _percentile(cold_lat, 0.95),
                "cold_txns_min": min(counts[name] for name in names[1:]),
            }
        finally:
            server.stop()
            hub.close()


def run_points(duration_s: float = 2.0):
    return {
        "tenant_churn": run_tenant_churn(duration_s),
        "hot_tenant_skew": run_hot_tenant_skew(duration_s),
    }


def write_report(results, path: str = OUTPUT) -> None:
    with open(path, "w") as handle:
        json.dump({"tenancy": results}, handle, indent=2)
        handle.write("\n")


def test_tenancy_bench_smoke():
    """Smoke gate: churn actually evicts; skew starves nobody."""
    results = run_points(duration_s=0.8)
    churn = results["tenant_churn"]
    assert churn["visits"] >= CHURN_TENANTS, churn
    # More tenants than the budget, visited round-robin: the registry
    # must have cycled (every lap past the first forces evictions).
    assert churn["evicted_total"] > 0, churn
    assert churn["opened_total"] > CHURN_MAX_OPEN, churn
    skew = results["hot_tenant_skew"]
    assert skew["errors"] == 0, skew
    assert skew["per_tenant_txns"][skew["hot_tenant"]] > 0, skew
    # Every cold tenant kept committing under the hot tenant's load.
    assert skew["cold_txns_min"] > 0, skew
    write_report(results)


if __name__ == "__main__":
    report = run_points()
    write_report(report)
    json.dump({"tenancy": report}, sys.stdout, indent=2)
    print()
