"""Replication read-scaling run: 0, 1, and 2 verified read replicas.

Runs :func:`repro.bench.replload.run_replication_scaling` — a primary
under continuous durable write load, a fixed reader population spread
round-robin across the primary plus N streaming replicas — and writes
``BENCH_replication.json`` at the repository root (the non-gating CI
artifact).  The interesting shape: the fsync-bound primary alone is a
poor read server, so adding replicas multiplies system read throughput,
while the sampled commit-seqno lag stays small and drains to zero once
the writer stops (``catch_up_s``).

Every server, reader, and writer is a separate OS process, so the
scaling measured here is real parallelism, not thread interleaving —
but absolute speedup still depends on the machine's core count
(recorded as ``cpu_count`` in the report).

Run directly (``python benchmarks/bench_replication.py``) or via pytest
(``pytest benchmarks/bench_replication.py -q``).
"""

from __future__ import annotations

import json
import os
import sys

from repro.bench.replload import run_replication_scaling

REPLICA_POINTS = (0, 1, 2)
OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "BENCH_replication.json"
)


def run_points(seconds: float = 6.0, readers: int = 6):
    return run_replication_scaling(
        replica_counts=REPLICA_POINTS, readers=readers, seconds=seconds
    )


def write_report(report, path: str = OUTPUT) -> None:
    with open(path, "w") as handle:
        json.dump({"replication_read_scaling": report}, handle, indent=2)
        handle.write("\n")


def test_replication_scaling_smoke():
    """Smoke gate: all points complete, replicas serve, lag drains.

    The 1.5x read-scaling acceptance ratio is asserted only on
    multi-core machines: on a single core the replica processes share
    one CPU with the primary, so extra processes cannot add throughput
    no matter how good the replication protocol is.
    """
    report = run_points(seconds=3.0, readers=4)
    points = report["configurations"]
    assert set(points) == {str(n) for n in REPLICA_POINTS}
    for point in points.values():
        assert point["reads"] > 0, point
        assert point["writer_commits"] > 0, point
    assert report["catch_up_s"] < 60.0
    if (os.cpu_count() or 1) >= 4:
        assert report["speedup_max_vs_single"] >= 1.5, report
    write_report(report)


if __name__ == "__main__":
    report = run_points()
    write_report(report)
    json.dump({"replication_read_scaling": report}, sys.stdout, indent=2)
    print()
