"""Crypto kernel microbench: fast table-driven path vs reference path.

Measures whole-payload CBC encrypt+decrypt and CTR throughput for the
table-driven :class:`~repro.crypto.aesfast.AesFast` kernels against the
per-block reference path, plus hash-engine throughput, and writes
``BENCH_crypto.json`` next to the repository root (the non-gating CI
artifact).  The headline number is the 4 KiB CBC encrypt+decrypt
speedup — the chunk store's hot path — which the smoke gate requires
to stay at or above 5x.

Run directly (``python benchmarks/bench_crypto.py``) or via pytest
(``pytest benchmarks/bench_crypto.py -q``).
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.crypto import Aes, AesFast, create_hash_engine, modes

KEY = bytes(range(16))
IV = bytes(range(16, 32))
NONCE = b"bench-nonce!"
PAYLOAD_SIZES = (256, 4096, 65536)
HASH_SIZE = 4096
OUTPUT = os.path.join(os.path.dirname(os.path.dirname(__file__)), "BENCH_crypto.json")


def _payload(size: int) -> bytes:
    return bytes(i % 251 for i in range(size))


def _time_loop(fn, min_seconds: float = 0.2, min_iters: int = 3):
    """Run ``fn`` until the clock budget is spent; return seconds/iter."""
    iters = 0
    started = time.perf_counter()
    while True:
        fn()
        iters += 1
        elapsed = time.perf_counter() - started
        if elapsed >= min_seconds and iters >= min_iters:
            return elapsed / iters


def _mb_per_s(nbytes: int, seconds: float) -> float:
    return (nbytes / (1024 * 1024)) / seconds


def bench_cbc(size: int):
    data = _payload(size)
    fast, ref = AesFast(KEY), Aes(KEY)
    ct = modes.cbc_encrypt(fast, data, IV)

    fast_s = _time_loop(
        lambda: modes.cbc_decrypt(fast, modes.cbc_encrypt(fast, data, IV))
    )
    ref_s = _time_loop(
        lambda: modes.cbc_decrypt(ref, modes.cbc_encrypt(ref, data, IV))
    )
    assert modes.cbc_encrypt(ref, data, IV) == ct  # same bytes, same disk image
    return {
        "payload_bytes": size,
        "fast_ms": round(fast_s * 1e3, 3),
        "reference_ms": round(ref_s * 1e3, 3),
        "fast_mb_per_s": round(_mb_per_s(2 * size, fast_s), 2),
        "reference_mb_per_s": round(_mb_per_s(2 * size, ref_s), 2),
        "speedup": round(ref_s / fast_s, 2),
    }


def bench_ctr(size: int):
    data = _payload(size)
    fast, ref = AesFast(KEY), Aes(KEY)
    fast_s = _time_loop(lambda: modes.ctr_transform(fast, data, NONCE))
    ref_s = _time_loop(lambda: modes.ctr_transform(ref, data, NONCE))
    return {
        "payload_bytes": size,
        "fast_ms": round(fast_s * 1e3, 3),
        "reference_ms": round(ref_s * 1e3, 3),
        "fast_mb_per_s": round(_mb_per_s(size, fast_s), 2),
        "reference_mb_per_s": round(_mb_per_s(size, ref_s), 2),
        "speedup": round(ref_s / fast_s, 2),
    }


def bench_hashes(size: int = HASH_SIZE):
    data = _payload(size)
    out = {}
    for name in ("sha1", "sha256", "sha1-pure"):
        engine = create_hash_engine(name)
        seconds = _time_loop(lambda: engine.digest(data))
        out[name] = {
            "payload_bytes": size,
            "us_per_digest": round(seconds * 1e6, 2),
            "mb_per_s": round(_mb_per_s(size, seconds), 2),
        }
    return out


def run_all():
    return {
        "cbc_encrypt_decrypt": [bench_cbc(size) for size in PAYLOAD_SIZES],
        "ctr_transform": [bench_ctr(size) for size in PAYLOAD_SIZES],
        "hash_engines": bench_hashes(),
    }


def write_report(results, path: str = OUTPUT) -> None:
    with open(path, "w") as handle:
        json.dump({"crypto": results}, handle, indent=2)
        handle.write("\n")


def test_crypto_kernel_speedup():
    """Smoke gate: the fast path holds its 5x on the 4 KiB hot path."""
    results = run_all()
    by_size = {entry["payload_bytes"]: entry for entry in results["cbc_encrypt_decrypt"]}
    assert by_size[4096]["speedup"] >= 5.0, by_size[4096]
    for entry in results["ctr_transform"]:
        assert entry["speedup"] > 1.0, entry
    write_report(results)


if __name__ == "__main__":
    report = run_all()
    write_report(report)
    json.dump({"crypto": report}, sys.stdout, indent=2)
