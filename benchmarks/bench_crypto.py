"""Crypto engine microbench: native vs fast vs reference.

Measures whole-payload CBC encrypt+decrypt and CTR throughput for all
three AES engines (``native`` — platform crypto via the cryptography
package, ``fast`` — table-driven pure python, ``reference`` — per-block
oracle), whole-segment verification throughput (the scrub/shipment
shape: content digest + trial decryption of a 64 KiB payload), digest-
pool scaling across worker counts, and hash-engine throughput.  Results
land in ``BENCH_crypto.json`` next to the repository root (the
non-gating CI artifact).

Two headline gates guard the engine ladder on the 4 KiB chunk-store hot
path and the 64 KiB segment-verification path:

* ``fast``   >=  5x ``reference`` on 4 KiB CBC (the PR-4 gate, kept);
* ``native`` >= 50x ``reference`` on 4 KiB CBC;
* ``native`` >= 10x ``fast`` on whole-segment verification.

Run directly (``python benchmarks/bench_crypto.py``) or via pytest
(``pytest benchmarks/bench_crypto.py -q``).
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.crypto import (
    Aes,
    AesFast,
    DigestPool,
    HAVE_NATIVE_BACKEND,
    NativeAes,
    create_hash_engine,
    create_payload_cipher,
    modes,
)

KEY = bytes(range(16))
IV = bytes(range(16, 32))
NONCE = b"bench-nonce!"
PAYLOAD_SIZES = (256, 4096, 65536)
SEGMENT_SIZE = 65536
HASH_SIZE = 4096
OUTPUT = os.path.join(os.path.dirname(os.path.dirname(__file__)), "BENCH_crypto.json")

ENGINES = {"native": NativeAes, "fast": AesFast, "reference": Aes}


def _payload(size: int) -> bytes:
    return bytes(i % 251 for i in range(size))


def _time_loop(fn, min_seconds: float = 0.2, min_iters: int = 3):
    """Run ``fn`` until the clock budget is spent; return seconds/iter."""
    iters = 0
    started = time.perf_counter()
    while True:
        fn()
        iters += 1
        elapsed = time.perf_counter() - started
        if elapsed >= min_seconds and iters >= min_iters:
            return elapsed / iters


def _mb_per_s(nbytes: int, seconds: float) -> float:
    return (nbytes / (1024 * 1024)) / seconds


def bench_cbc(size: int):
    data = _payload(size)
    ciphers = {name: cls(KEY) for name, cls in ENGINES.items()}
    baseline_ct = modes.cbc_encrypt(ciphers["reference"], data, IV)
    entry = {"payload_bytes": size}
    seconds = {}
    for name, cipher in ciphers.items():
        # Same key+IV must mean the same bytes under every engine.
        assert modes.cbc_encrypt(cipher, data, IV) == baseline_ct
        seconds[name] = _time_loop(
            lambda c=cipher: modes.cbc_decrypt(c, modes.cbc_encrypt(c, data, IV))
        )
        entry[f"{name}_ms"] = round(seconds[name] * 1e3, 3)
        entry[f"{name}_mb_per_s"] = round(_mb_per_s(2 * size, seconds[name]), 2)
    entry["speedup"] = round(seconds["reference"] / seconds["fast"], 2)
    entry["native_vs_reference"] = round(
        seconds["reference"] / seconds["native"], 2
    )
    entry["native_vs_fast"] = round(seconds["fast"] / seconds["native"], 2)
    return entry


def bench_ctr(size: int):
    data = _payload(size)
    entry = {"payload_bytes": size}
    seconds = {}
    for name, cls in ENGINES.items():
        cipher = cls(KEY)
        seconds[name] = _time_loop(
            lambda c=cipher: modes.ctr_transform(c, data, NONCE)
        )
        entry[f"{name}_ms"] = round(seconds[name] * 1e3, 3)
        entry[f"{name}_mb_per_s"] = round(_mb_per_s(size, seconds[name]), 2)
    entry["speedup"] = round(seconds["reference"] / seconds["fast"], 2)
    entry["native_vs_fast"] = round(seconds["fast"] / seconds["native"], 2)
    return entry


def bench_segment_verify(size: int = SEGMENT_SIZE):
    """Whole-segment verification: digest + trial decrypt, per engine.

    This is the scrub / shipment unit of work the digest pool
    dispatches.  The reference engine is benched on a 16x smaller
    payload (then scaled) to keep the bench affordable.
    """
    hasher = create_hash_engine("sha1")
    out = {}
    for name in ENGINES:
        cipher = create_payload_cipher("aes-128", KEY, kernel=name)
        bench_size = size if name != "reference" else size // 16
        data = _payload(bench_size - 32)
        ct = cipher.encrypt(data)

        def verify(c=cipher, ct=ct):
            hasher.digest(ct)
            c.decrypt(ct)

        seconds = _time_loop(verify) * (size / bench_size)
        out[name] = {
            "segment_bytes": size,
            "ms_per_segment": round(seconds * 1e3, 3),
            "mb_per_s": round(_mb_per_s(size, seconds), 2),
        }
    out["native_vs_fast"] = round(
        out["fast"]["ms_per_segment"] / out["native"]["ms_per_segment"], 2
    )
    return out


def bench_pool_scaling(
    segments: int = 16, size: int = SEGMENT_SIZE, engine: str = "fast"
):
    """Digest-pool scaling: verify ``segments`` payloads across workers.

    The ``fast`` engine is the interesting case — pure-python decryption
    is CPU-bound, so extra processes translate directly into throughput.
    Under ``native`` the per-segment work is so cheap that pickling can
    eat the win; the table shows both truths.  Interpret
    ``speedup_vs_serial`` against the recorded ``cpu_count``: on a
    single-core box extra workers cannot beat serial, and the table
    documents exactly that.
    """
    spec = ("aes-128", KEY, engine, "sha1")
    cipher = create_payload_cipher("aes-128", KEY, kernel=engine)
    hasher = create_hash_engine("sha1")
    jobs = []
    for i in range(segments):
        data = bytes((i + j) % 251 for j in range(size - 32))
        ct = cipher.encrypt(data)
        jobs.append((ct, hasher.digest(ct)))
    total = sum(len(ct) for ct, _ in jobs)
    out = {"engine": engine, "segments": segments, "segment_bytes": size}
    serial_s = None
    for workers in (1, 2, 4):
        pool = DigestPool(max_workers=workers, batch_size=2)
        try:
            assert all(v is None for v in pool.verify_payloads(spec, jobs))
            seconds = _time_loop(
                lambda: pool.verify_payloads(spec, jobs),
                min_seconds=0.2,
                min_iters=2,
            )
        finally:
            pool.close()
        if workers == 1:
            serial_s = seconds
        out[f"workers_{workers}"] = {
            "ms": round(seconds * 1e3, 1),
            "mb_per_s": round(_mb_per_s(total, seconds), 2),
            "speedup_vs_serial": round(serial_s / seconds, 2),
        }
    return out


def bench_hashes(size: int = HASH_SIZE):
    data = _payload(size)
    out = {}
    for name in ("sha1", "sha256", "sha1-pure"):
        engine = create_hash_engine(name)
        seconds = _time_loop(lambda: engine.digest(data))
        out[name] = {
            "payload_bytes": size,
            "us_per_digest": round(seconds * 1e6, 2),
            "mb_per_s": round(_mb_per_s(size, seconds), 2),
        }
    return out


def run_all():
    return {
        "native_backend": "openssl" if HAVE_NATIVE_BACKEND else "fallback",
        "cpu_count": os.cpu_count(),
        "cbc_encrypt_decrypt": [bench_cbc(size) for size in PAYLOAD_SIZES],
        "ctr_transform": [bench_ctr(size) for size in PAYLOAD_SIZES],
        "segment_verify": bench_segment_verify(),
        "pool_scaling": [
            bench_pool_scaling(engine="fast"),
            bench_pool_scaling(engine="native"),
        ],
        "hash_engines": bench_hashes(),
    }


def write_report(results, path: str = OUTPUT) -> None:
    with open(path, "w") as handle:
        json.dump({"crypto": results}, handle, indent=2)
        handle.write("\n")


def test_crypto_kernel_speedup():
    """Smoke gates: the engine ladder holds on the hot paths."""
    results = run_all()
    by_size = {entry["payload_bytes"]: entry for entry in results["cbc_encrypt_decrypt"]}
    assert by_size[4096]["speedup"] >= 5.0, by_size[4096]
    for entry in results["ctr_transform"]:
        assert entry["speedup"] > 1.0, entry
    if HAVE_NATIVE_BACKEND:
        assert by_size[4096]["native_vs_reference"] >= 50.0, by_size[4096]
        assert results["segment_verify"]["native_vs_fast"] >= 10.0, (
            results["segment_verify"]
        )
    else:  # fallback = fast kernels; only parity is guaranteed
        assert by_size[4096]["native_vs_fast"] >= 0.5, by_size[4096]
    write_report(results)


if __name__ == "__main__":
    report = run_all()
    write_report(report)
    json.dump({"crypto": report}, sys.stdout, indent=2)
