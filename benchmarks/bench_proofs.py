"""Proof-path benchmark: proofs per second and proof size vs store size.

For several in-memory store sizes this measures, over the embedded
proof path (:class:`repro.proofs.service.ProofService` +
:func:`repro.proofs.merkle.verify_proof`):

* ``prove_per_s``   — inclusion proofs generated per second,
* ``verify_per_s``  — client-side verifications per second,
* ``absent_per_s``  — non-membership proofs per second,
* ``proof_bytes``   — mean serialized proof size (nodes + payload),
* ``proof_nodes``   — mean Merkle path length,

and writes ``BENCH_proofs.json`` next to the repository root — the
non-gating CI artifact.  The interesting shape: proof size grows with
the map depth (logarithmically in store size), not with the store.

Run directly (``python benchmarks/bench_proofs.py``) or via pytest
(``pytest benchmarks/bench_proofs.py -q``).
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.chunkstore import ChunkStore
from repro.config import ChunkStoreConfig
from repro.crypto import create_hash_engine, create_payload_cipher
from repro.platform import (
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)
from repro.proofs import ProofService, verify_proof

STORE_SIZES = (64, 512, 4096)
PROOFS_PER_POINT = 300
PAYLOAD_BYTES = 256
SECRET = b"bench-proofs-secret-0123456789ab"
OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "BENCH_proofs.json"
)


def _build_store(chunks: int):
    untrusted = MemoryUntrustedStore()
    secret = MemorySecretStore(SECRET)
    counter = MemoryOneWayCounter()
    store = ChunkStore.format(untrusted, secret, counter)
    payload = b"p" * PAYLOAD_BYTES
    ids = []
    for _ in range(chunks):
        cid = store.allocate_chunk_id()
        store.write(cid, payload, durable=False)
        ids.append(cid)
    store.checkpoint(force=True)
    return store, secret, ids


def _proof_bytes(proof) -> int:
    size = sum(len(node) for node in proof.nodes)
    if proof.payload is not None:
        size += len(proof.payload)
    return size


def bench_point(chunks: int, proofs: int = PROOFS_PER_POINT) -> dict:
    store, secret, ids = _build_store(chunks)
    config = ChunkStoreConfig()
    profile = config.security
    engine = create_hash_engine(profile.hash_name)
    cipher = create_payload_cipher(
        profile.cipher_name,
        secret.derive_key("tdb-chunk-encryption", 32),
        kernel=profile.resolved_kernel,
    )
    service = ProofService(store)
    targets = [ids[i * len(ids) // proofs] for i in range(proofs)]

    start = time.perf_counter()
    proved = [service.prove(cid) for cid in targets]
    prove_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    for head, proof in proved:
        verify_proof(
            proof,
            head,
            fanout=config.map_fanout,
            hash_size=engine.digest_size,
            digest=engine.digest,
            decrypt=cipher.decrypt,
        )
    verify_elapsed = time.perf_counter() - start

    absent_ids = [max(ids) + 1 + i for i in range(proofs)]
    start = time.perf_counter()
    for cid in absent_ids:
        service.prove(cid)
    absent_elapsed = time.perf_counter() - start

    sizes = [_proof_bytes(proof) for _, proof in proved]
    depths = [len(proof.nodes) for _, proof in proved]
    point = {
        "chunks": chunks,
        "proofs": proofs,
        "prove_per_s": round(proofs / max(prove_elapsed, 1e-9), 1),
        "verify_per_s": round(proofs / max(verify_elapsed, 1e-9), 1),
        "absent_per_s": round(proofs / max(absent_elapsed, 1e-9), 1),
        "proof_bytes": round(sum(sizes) / len(sizes), 1),
        "proof_nodes": round(sum(depths) / len(depths), 2),
        "head_bytes": len(proved[0][0].raw),
    }
    service.close()
    store.close()
    return point


def run_points(proofs: int = PROOFS_PER_POINT):
    return {str(size): bench_point(size, proofs) for size in STORE_SIZES}


def write_report(results, path: str = OUTPUT) -> None:
    with open(path, "w") as handle:
        json.dump({"proofs": results}, handle, indent=2)
        handle.write("\n")


def test_proof_bench_smoke():
    """Smoke gate: every point completes and proof size stays modest."""
    results = run_points(proofs=40)
    for size, point in results.items():
        assert point["prove_per_s"] > 0
        assert point["verify_per_s"] > 0
        # Proofs must scale with depth, not store size.
        assert point["proof_bytes"] < 64 * 1024, point
    assert (
        results[str(STORE_SIZES[-1])]["proof_nodes"]
        >= results[str(STORE_SIZES[0])]["proof_nodes"]
    )
    write_report(results)


if __name__ == "__main__":
    report = run_points()
    write_report(report)
    json.dump({"proofs": report}, sys.stdout, indent=2)
