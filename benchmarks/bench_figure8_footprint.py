"""Figure 8 benchmark: code footprint measurement.

The measurement itself is static (source lines, bytecode bytes per module
group); benchmarking it keeps the target inside the same
``pytest benchmarks/ --benchmark-only`` flow as the other figures and
asserts the paper's structural claims:

* the chunk store is the largest TDB module,
* the minimal configuration (chunk store + support utilities) is roughly
  half the full system (paper: 142 KB of 250 KB).
"""

from __future__ import annotations

import pytest

from repro.bench.footprint import measure_footprint


@pytest.mark.benchmark(group="figure8")
def test_code_footprint(benchmark):
    results = benchmark(measure_footprint)
    module_rows = {
        name: footprint
        for name, footprint in results.items()
        if name
        in ("collection store", "object store", "backup store", "chunk store",
            "support utilities")
    }
    largest = max(module_rows.values(), key=lambda f: f.bytecode_bytes)
    assert largest.name == "chunk store"  # as in the paper's breakdown
    full = results["TDB - all modules"]
    minimal = results["TDB minimal configuration"]
    ratio = minimal.bytecode_bytes / full.bytecode_bytes
    assert 0.4 < ratio < 0.8  # paper: 142/250 = 0.57
    for name, footprint in results.items():
        benchmark.extra_info[name.replace(" ", "_")] = footprint.bytecode_bytes
