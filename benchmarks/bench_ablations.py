"""Ablation benchmarks for the design choices DESIGN.md calls out.

Quick pytest-benchmark versions of ``python -m repro.bench.ablation``:
crypto profile cost, single- vs multi-object chunks, cache-size effect,
and index-kind lookup cost.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.tpcb import AccountRec
from repro.cache import SharedLruCache
from repro.chunkstore import ChunkStore
from repro.collectionstore import CollectionStore, Indexer
from repro.config import (
    ChunkStoreConfig,
    CollectionStoreConfig,
    ObjectStoreConfig,
    SecurityProfile,
)
from repro.objectstore import ClassRegistry, ObjectStore
from repro.platform import (
    MemoryOneWayCounter,
    MemorySecretStore,
    MemoryUntrustedStore,
)

SECRET = b"benchmark-ablation-secret-012345"


def make_chunk_store(profile: SecurityProfile) -> ChunkStore:
    return ChunkStore.format(
        MemoryUntrustedStore(),
        MemorySecretStore(SECRET),
        MemoryOneWayCounter(),
        ChunkStoreConfig(
            segment_size=64 * 1024,
            initial_segments=4,
            checkpoint_residual_bytes=512 * 1024,
            map_fanout=64,
            security=profile,
        ),
    )


@pytest.mark.benchmark(group="ablation-crypto")
@pytest.mark.parametrize(
    "profile_name,profile",
    [
        ("insecure", SecurityProfile.insecure()),
        ("sha1-null", SecurityProfile(True, "sha1", "null")),
        ("sha1-aes128", SecurityProfile(True, "sha1", "aes-128")),
        ("sha1pure-aes128", SecurityProfile(True, "sha1-pure", "aes-128")),
    ],
)
def test_crypto_profile_write_read(benchmark, profile_name, profile):
    """Chunk write+read round trip per security profile (paper: crypto
    CPU < 10% with optimized C; pure Python shifts the balance)."""
    store = make_chunk_store(profile)
    cid = store.allocate_chunk_id()
    payload = bytes(range(200))[:200]
    store.write(cid, payload)

    def round_trip():
        store.write(cid, payload)
        store.read(cid)

    benchmark(round_trip)
    store.close()


@pytest.mark.benchmark(group="ablation-chunking")
@pytest.mark.parametrize("objects_per_chunk", [1, 16])
def test_single_vs_multi_object_chunks(benchmark, objects_per_chunk):
    """Updating one object rewrites its whole container chunk (paper
    section 4.2.1's trade-off)."""
    store = make_chunk_store(SecurityProfile.insecure())
    object_size = 100
    cids = [store.allocate_chunk_id() for _ in range(64 // objects_per_chunk)]
    blob = bytes(object_size * objects_per_chunk)
    for cid in cids:
        store.write(cid, blob)
    rng = random.Random(2)

    def update_one():
        store.write(rng.choice(cids), blob)

    benchmark(update_one)
    benchmark.extra_info["bytes_per_update"] = len(blob)
    store.close()


@pytest.mark.benchmark(group="ablation-index")
@pytest.mark.parametrize("kind", ["btree", "hash", "list"])
def test_index_kind_exact_match(benchmark, kind):
    """Exact-match query cost per index implementation (section 5.2.4)."""
    registry = ClassRegistry()
    registry.register(AccountRec)
    chunk_store = make_chunk_store(SecurityProfile.insecure())
    object_store = ObjectStore.create(
        chunk_store, ObjectStoreConfig(locking=False), registry
    )
    collections = CollectionStore(object_store, CollectionStoreConfig())
    indexer = Indexer("by-id", AccountRec, lambda r: r.rec_id, kind=kind)
    ct = collections.transaction()
    handle = ct.create_collection("records", indexer)
    members = 500
    for index in range(members):
        handle.insert(AccountRec(index))
    ct.commit()
    rng = random.Random(4)
    ct = collections.transaction()
    handle = ct.read_collection("records")

    def lookup():
        iterator = handle.query_match(indexer, rng.randrange(members))
        assert not iterator.end()
        iterator.close()

    benchmark(lookup)
    ct.abort()
    collections.close()


@pytest.mark.benchmark(group="ablation-cache")
@pytest.mark.parametrize("cache_kb", [16, 256])
def test_object_cache_size(benchmark, cache_kb):
    """Random object reads under different shared-cache budgets."""
    registry = ClassRegistry()
    registry.register(AccountRec)
    cache = SharedLruCache(cache_kb * 1024)
    chunk_store = ChunkStore.format(
        MemoryUntrustedStore(),
        MemorySecretStore(SECRET),
        MemoryOneWayCounter(),
        ChunkStoreConfig(
            segment_size=64 * 1024,
            initial_segments=4,
            checkpoint_residual_bytes=512 * 1024,
            map_fanout=64,
            security=SecurityProfile.insecure(),
        ),
        cache=cache,
    )
    store = ObjectStore.create(chunk_store, ObjectStoreConfig(locking=False), registry)
    oids = []
    with store.transaction() as txn:
        for index in range(1000):
            oids.append(txn.insert(AccountRec(index)))
    rng = random.Random(6)

    def read_one():
        with store.transaction() as txn:
            txn.open_readonly(rng.choice(oids))
            txn.abort()

    benchmark(read_one)
    hits, misses = cache.stats.hits, cache.stats.misses
    benchmark.extra_info["hit_rate"] = round(hits / max(1, hits + misses), 3)
    store.close()
